//! Association discovery (§4.1).
//!
//! "In the current system we add to the source graph edges representing
//! joins based on (1) common attribute names and data types, (2) known
//! links or foreign keys … If sets of sources have multiple attributes in
//! common, we restrict the queries to match on all the attributes (i.e.,
//! we take the conjunction of all possible join predicates)."
//!
//! Additionally, relation columns whose semantic types align with a
//! service's input signature produce *bind* edges (the dependent joins of
//! Figure 4), and same-semantic-type text columns with *different* names
//! produce record-link edges.

use crate::source_graph::{EdgeKind, NodeId, NodeKind, SourceGraph};
use copycat_query::Schema;

/// Discovery options (A1 ablates `conjunction_of_all`).
#[derive(Debug, Clone)]
pub struct AssocOptions {
    /// Use the conjunction of all shared attributes per source pair
    /// (paper default). When false, one edge per shared attribute.
    pub conjunction_of_all: bool,
    /// Also add record-link edges on same-typed differently-named text
    /// columns.
    pub link_edges: bool,
    /// Cost for discovered join edges.
    pub join_cost: f64,
    /// Cost for bind edges (service invocation).
    pub bind_cost: f64,
    /// Cost for link edges (record linking is less certain than an
    /// equi-join, so it starts costlier).
    pub link_cost: f64,
}

impl Default for AssocOptions {
    fn default() -> Self {
        Self {
            conjunction_of_all: true,
            link_edges: true,
            join_cost: 1.0,
            // Services with a functional input→output relationship are
            // the most promising completions (Figure 2 leads with the
            // zip resolver), so bind edges start slightly cheaper than
            // generic attribute joins.
            bind_cost: 0.9,
            link_cost: 1.5,
        }
    }
}

/// Whether two columns are join-compatible: equal names (case-insensitive)
/// *and*, when both carry semantic types, equal types.
fn name_compatible(a: &copycat_query::Field, b: &copycat_query::Field) -> bool {
    if !a.name.eq_ignore_ascii_case(&b.name) {
        return false;
    }
    match (&a.sem_type, &b.sem_type) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// Whether two columns are link-compatible: same semantic type, different
/// names (same names are handled by join edges).
fn link_compatible(a: &copycat_query::Field, b: &copycat_query::Field) -> bool {
    !a.name.eq_ignore_ascii_case(&b.name)
        && matches!((&a.sem_type, &b.sem_type), (Some(x), Some(y)) if x == y)
}

/// Run discovery over all node pairs, adding edges for pairs that have
/// none yet. Returns the number of edges added.
pub fn discover_associations(g: &mut SourceGraph, opts: &AssocOptions) -> usize {
    let n = g.node_count();
    let mut added = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (NodeId(i as u32), NodeId(j as u32));
            if g.incident(a).iter().any(|&e| g.other_end(e, a) == b) {
                continue; // already associated (e.g. a declared foreign key)
            }
            added += discover_pair(g, a, b, opts);
        }
    }
    added
}

fn discover_pair(g: &mut SourceGraph, a: NodeId, b: NodeId, opts: &AssocOptions) -> usize {
    let (na, nb) = (g.node(a).clone(), g.node(b).clone());
    let mut added = 0;
    match (&na.kind, &nb.kind) {
        (NodeKind::Relation, NodeKind::Relation) => {
            // Join edges on compatible shared columns.
            let mut pairs: Vec<(String, String)> = Vec::new();
            for fa in na.schema.fields() {
                for fb in nb.schema.fields() {
                    if name_compatible(fa, fb) {
                        pairs.push((fa.name.clone(), fb.name.clone()));
                    }
                }
            }
            if !pairs.is_empty() {
                if opts.conjunction_of_all {
                    g.add_edge_with_cost(a, b, EdgeKind::Join { pairs }, opts.join_cost);
                    added += 1;
                } else {
                    for p in pairs {
                        g.add_edge_with_cost(
                            a,
                            b,
                            EdgeKind::Join { pairs: vec![p] },
                            opts.join_cost,
                        );
                        added += 1;
                    }
                }
            }
            // Link edges on same-typed, differently-named columns.
            if opts.link_edges {
                for fa in na.schema.fields() {
                    for fb in nb.schema.fields() {
                        if link_compatible(fa, fb) {
                            g.add_edge_with_cost(
                                a,
                                b,
                                EdgeKind::Link {
                                    pairs: vec![(fa.name.clone(), fb.name.clone())],
                                },
                                opts.link_cost,
                            );
                            added += 1;
                        }
                    }
                }
            }
        }
        (NodeKind::Relation, NodeKind::Service) | (NodeKind::Service, NodeKind::Relation) => {
            let (rel, rel_id, svc, svc_id) = if na.kind == NodeKind::Relation {
                (&na, a, &nb, b)
            } else {
                (&nb, b, &na, a)
            };
            // Bind: every service input must be satisfiable from one
            // relation column, matched by semantic type first, then by
            // case-insensitive name.
            let inputs: Vec<&copycat_query::Field> =
                svc.schema.fields()[..svc.input_arity].iter().collect();
            let mut bindings = Vec::with_capacity(inputs.len());
            for inp in &inputs {
                let by_type = inp.sem_type.as_ref().and_then(|t| {
                    rel.schema
                        .fields()
                        .iter()
                        .find(|f| f.sem_type.as_deref() == Some(t.as_str()))
                });
                let by_name = rel
                    .schema
                    .fields()
                    .iter()
                    .find(|f| f.name.eq_ignore_ascii_case(&inp.name));
                match by_type.or(by_name) {
                    Some(col) => bindings.push(col.name.clone()),
                    None => return added, // an input cannot be bound
                }
            }
            if !bindings.is_empty() {
                g.add_edge_with_cost(
                    rel_id,
                    svc_id,
                    EdgeKind::Bind { bindings },
                    opts.bind_cost * svc.cost_hint,
                );
                added += 1;
            }
        }
        (NodeKind::Service, NodeKind::Service) => {
            // Service-service composition edges: one service's outputs can
            // bind another's inputs (by semantic type). Cost slightly
            // above bind (two invocations).
            let (sa, sb) = (&na, &nb);
            for (x, xid, y, yid) in [(sa, a, sb, b), (sb, b, sa, a)] {
                let outputs = &x.schema.fields()[x.input_arity..];
                let inputs = &y.schema.fields()[..y.input_arity];
                if inputs.is_empty() {
                    continue;
                }
                let all_bound = inputs.iter().all(|inp| {
                    outputs.iter().any(|o| {
                        o.sem_type.is_some() && o.sem_type == inp.sem_type
                    })
                });
                if all_bound {
                    let bindings = inputs
                        .iter()
                        .map(|inp| {
                            outputs
                                .iter()
                                .find(|o| o.sem_type == inp.sem_type)
                                .expect("checked")
                                .name
                                .clone()
                        })
                        .collect();
                    g.add_edge_with_cost(
                        xid,
                        yid,
                        EdgeKind::Bind { bindings },
                        opts.bind_cost * 1.2 * y.cost_hint,
                    );
                    added += 1;
                }
            }
        }
    }
    added
}

/// Build the Figure-4 style source graph for a catalog: one node per
/// relation (with the given schemas) and per service, then run discovery.
pub fn graph_for(
    relations: &[(&str, Schema)],
    services: &[(&str, Schema, usize)],
    opts: &AssocOptions,
) -> SourceGraph {
    let mut g = SourceGraph::new();
    for (name, schema) in relations {
        g.add_relation(*name, schema.clone());
    }
    for (name, schema, input_arity) in services {
        g.add_service(*name, schema.clone(), *input_arity);
    }
    discover_associations(&mut g, opts);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_graph::EdgeKind;
    use copycat_query::Field;

    fn shelters() -> Schema {
        Schema::new(vec![
            Field::new("Name"),
            Field::typed("Street", "PR-Street"),
            Field::typed("City", "PR-City"),
        ])
    }

    fn contacts() -> Schema {
        Schema::new(vec![
            Field::typed("Person", "PR-Person"),
            Field::typed("Phone", "PR-Phone"),
            Field::new("Venue"),
            Field::typed("City", "PR-City"),
        ])
    }

    fn zip_service() -> Schema {
        Schema::new(vec![
            Field::typed("street", "PR-Street"),
            Field::typed("city", "PR-City"),
            Field::typed("Zip", "PR-Zip"),
        ])
    }

    #[test]
    fn join_edge_uses_conjunction_by_default() {
        let g = graph_for(
            &[
                ("a", Schema::of(&["X", "Y", "Z"])),
                ("b", Schema::of(&["X", "Y", "W"])),
            ],
            &[],
            &AssocOptions::default(),
        );
        assert_eq!(g.edge_count(), 1);
        match &g.edge(crate::source_graph::EdgeId(0)).kind {
            EdgeKind::Join { pairs } => assert_eq!(pairs.len(), 2),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn per_attribute_edges_when_ablated() {
        let opts = AssocOptions { conjunction_of_all: false, ..Default::default() };
        let g = graph_for(
            &[
                ("a", Schema::of(&["X", "Y"])),
                ("b", Schema::of(&["X", "Y"])),
            ],
            &[],
            &opts,
        );
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn bind_edge_by_semantic_type() {
        let g = graph_for(
            &[("shelters", shelters())],
            &[("zip_resolver", zip_service(), 2)],
            &AssocOptions::default(),
        );
        assert_eq!(g.edge_count(), 1);
        match &g.edge(crate::source_graph::EdgeId(0)).kind {
            EdgeKind::Bind { bindings } => {
                assert_eq!(bindings, &vec!["Street".to_string(), "City".to_string()]);
            }
            other => panic!("expected bind, got {other:?}"),
        }
    }

    #[test]
    fn no_bind_when_inputs_unsatisfiable() {
        let g = graph_for(
            &[("contacts_only", Schema::of(&["Person", "Phone"]))],
            &[("zip_resolver", zip_service(), 2)],
            &AssocOptions::default(),
        );
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn type_mismatch_blocks_name_join() {
        let a = Schema::new(vec![Field::typed("Code", "PR-Zip")]);
        let b = Schema::new(vec![Field::typed("Code", "PR-Phone")]);
        let g = graph_for(&[("a", a), ("b", b)], &[], &AssocOptions::default());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn link_edges_on_same_type_different_name() {
        let a = Schema::new(vec![Field::typed("HomeCity", "PR-City")]);
        let b = Schema::new(vec![Field::typed("Town", "PR-City")]);
        let g = graph_for(&[("a", a), ("b", b)], &[], &AssocOptions::default());
        assert_eq!(g.edge_count(), 1);
        assert!(matches!(
            &g.edge(crate::source_graph::EdgeId(0)).kind,
            EdgeKind::Link { .. }
        ));
    }

    #[test]
    fn figure4_shape() {
        // The running example: Shelters + Contacts + ZipCodes service.
        let g = graph_for(
            &[("Shelters", shelters()), ("Contacts", contacts())],
            &[("ZipCodes", zip_service(), 2)],
            &AssocOptions::default(),
        );
        // Shelters–Contacts join on City; Shelters–ZipCodes bind;
        // Contacts–ZipCodes bind is impossible (no street), and a
        // Shelters.City–Contacts.City join subsumes link edges on City.
        let shelters_id = g.node_by_name("Shelters").unwrap();
        let zip_id = g.node_by_name("ZipCodes").unwrap();
        let contacts_id = g.node_by_name("Contacts").unwrap();
        assert!(g
            .incident(shelters_id)
            .iter()
            .any(|&e| g.other_end(e, shelters_id) == zip_id));
        assert!(g
            .incident(shelters_id)
            .iter()
            .any(|&e| g.other_end(e, shelters_id) == contacts_id));
        assert!(g.incident(contacts_id).iter().all(|&e| g.other_end(e, contacts_id) != zip_id));
    }

    #[test]
    fn discovery_skips_already_linked_pairs() {
        let mut g = SourceGraph::new();
        let a = g.add_relation("a", Schema::of(&["X"]));
        let b = g.add_relation("b", Schema::of(&["X"]));
        g.add_edge(a, b, EdgeKind::Join { pairs: vec![("X".into(), "X".into())] });
        let added = discover_associations(&mut g, &AssocOptions::default());
        assert_eq!(added, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn service_composition_edges() {
        // address resolver: name -> street/city; zip resolver: street/city -> zip.
        let addr = Schema::new(vec![
            Field::new("name"),
            Field::typed("Street", "PR-Street"),
            Field::typed("City", "PR-City"),
        ]);
        let g = graph_for(
            &[],
            &[("address_resolver", addr, 1), ("zip_resolver", zip_service(), 2)],
            &AssocOptions::default(),
        );
        assert_eq!(g.edge_count(), 1, "{g}");
    }
}
