//! Steiner-tree query search (§4.2).
//!
//! "The learner finds the most likely explanations for the tuples
//! (queries) by discovering Steiner trees connecting the data sources in
//! the source graph. For small source graphs, we can compute the most
//! promising queries using an exact top-k Steiner tree algorithm … For
//! larger graphs we use the SPCSH Steiner tree approximation algorithm,
//! which prunes 'non-promising' edges from the source graph for better
//! scaling."
//!
//! The paper's exact algorithm is an ILP; we use the Dreyfus–Wagner
//! dynamic program, which computes the same optima without an external
//! solver, plus edge-exclusion branching for top-k. The approximation is
//! a shortest-path component heuristic with optional cost-quantile edge
//! pruning (the SPCSH knob ablated in experiment A3).
//!
//! The DP is laid out for speed: flat `mask*n` tables in a reusable
//! [`SteinerScratch`], a branchless vectorizable min-plus merge (merge
//! derivations are re-found at traceback instead of stored), a queued
//! Bellman–Ford grow step over a banned-edge-filtered CSR adjacency
//! built once per solve, and a greedy feasible upper bound that skips
//! hopeless merge pairs and caps label propagation. Top-k branching
//! solves its independent child subproblems on scoped worker threads
//! when the host has cores to spare and the subproblem is large enough
//! to pay for them.

use crate::source_graph::{EdgeId, NodeId, SourceGraph};
use copycat_util::hash::{FxHashSet, FxHasher};
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A Steiner tree: the chosen edges, the spanned nodes, and total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Tree edges, sorted.
    pub edges: Vec<EdgeId>,
    /// Spanned nodes (terminals plus any intermediates), sorted.
    pub nodes: Vec<NodeId>,
    /// Sum of edge costs.
    pub cost: f64,
}

impl SteinerTree {
    fn from_edges(g: &SourceGraph, mut edges: Vec<EdgeId>, terminals: &[NodeId]) -> SteinerTree {
        edges.sort_unstable();
        edges.dedup();
        let mut nodes: Vec<NodeId> = terminals.to_vec();
        for &e in &edges {
            nodes.push(g.edge(e).a);
            nodes.push(g.edge(e).b);
        }
        nodes.sort_unstable();
        nodes.dedup();
        let cost = g.tree_cost(&edges);
        SteinerTree { edges, nodes, cost }
    }
}

/// Maximum supported terminal count for the exact algorithm (the DP is
/// exponential in it). The flat-table DP keeps 16 terminals tractable
/// (≈2 s at 60 nodes); interactive workloads stay well below that.
pub const MAX_EXACT_TERMINALS: usize = 16;

const INF: f64 = f64::INFINITY;

/// DP table size (`2^k * n` cells) past which computing the greedy
/// upper bound pays for itself. Below this the solve is microseconds
/// anyway and the extra Dijkstras would dominate.
const UB_PRUNE_MIN_CELLS: usize = 1 << 12;

/// Sentinel for "no backpointer" in the packed reconstruction tables.
const NONE32: u32 = u32::MAX;

/// Reusable scratch buffers for exact Steiner searches. Allocate one per
/// search session (or per worker thread) and pass it to
/// [`steiner_exact_in`]; repeated solves then reuse the DP tables, the
/// relaxation worklist, and the filtered adjacency instead of
/// reallocating.
#[derive(Debug, Default)]
pub struct SteinerScratch {
    /// `dp[mask * n + v]`: cheapest tree spanning terminal set `mask`
    /// rooted at node `v`.
    dp: Vec<f64>,
    /// Backpointers, packed into two flat `u32` planes (see
    /// [`SteinerScratch::reconstruct`] for the encoding).
    back_a: Vec<u32>,
    back_b: Vec<u32>,
    /// Min of `dp[mask]` over nodes, used to skip all-infinite merges.
    mask_min: Vec<f64>,
    /// Binary min-heap storage (upper-bound pass only).
    heap: Vec<(f64, u32)>,
    /// Grow-step worklist: FIFO of nodes with pending relaxations plus
    /// membership flags, reused across masks.
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    /// Banned-filtered CSR adjacency: node `v`'s neighbors live at
    /// `adj_*[adj_off[v]..adj_off[v + 1]]`.
    adj_off: Vec<u32>,
    adj_node: Vec<u32>,
    adj_edge: Vec<u32>,
    adj_cost: Vec<f64>,
    /// Per-edge banned flags, rebuilt per solve (O(banned), not O(m)).
    banned_flag: Vec<bool>,
    /// Upper-bound pass state: per-node distance, predecessor, and
    /// tree-membership (0 = outside, 1 = in tree, 2 = unreached terminal).
    ub_dist: Vec<f64>,
    ub_pred: Vec<u32>,
    ub_state: Vec<u8>,
}

impl SteinerScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild the CSR adjacency for `g` with `banned` edges removed.
    /// After this, the inner relaxation loop touches only flat arrays.
    fn build_adjacency(&mut self, g: &SourceGraph, banned: &[EdgeId]) {
        let n = g.node_count();
        self.banned_flag.clear();
        self.banned_flag.resize(g.edge_count(), false);
        for &e in banned {
            self.banned_flag[e.0 as usize] = true;
        }
        self.adj_off.clear();
        self.adj_node.clear();
        self.adj_edge.clear();
        self.adj_cost.clear();
        self.adj_off.push(0);
        for v in 0..n {
            let vid = NodeId(v as u32);
            for &e in g.incident(vid) {
                if self.banned_flag[e.0 as usize] {
                    continue;
                }
                self.adj_node.push(g.other_end(e, vid).0);
                self.adj_edge.push(e.0);
                self.adj_cost.push(g.cost(e));
            }
            self.adj_off.push(self.adj_node.len() as u32);
        }
    }

    /// Walk the derivation from `(full, best_v)` and collect tree edges.
    /// Grow steps are recorded as backpointers (`back_b` = edge,
    /// `back_a` = predecessor node); merge steps store nothing — the
    /// merge loop is branchless — and are re-derived here by finding a
    /// submask pair whose stored sums reproduce the cell's value
    /// bit-exactly (the winning write computed exactly that sum from the
    /// same, by-then-final rows).
    fn reconstruct(&self, n: usize, full: usize, best_v: usize) -> Vec<EdgeId> {
        let mut edges = Vec::new();
        let mut stack = vec![(full, best_v)];
        while let Some((mask, v)) = stack.pop() {
            let idx = mask * n + v;
            let b = self.back_b[idx];
            if b != NONE32 {
                edges.push(EdgeId(b));
                stack.push((mask, self.back_a[idx] as usize));
                continue;
            }
            if mask & (mask - 1) == 0 {
                continue; // singleton terminal
            }
            let val = self.dp[idx];
            let mut sub = (mask - 1) & mask;
            let mut found = false;
            while sub > 0 {
                let other = mask ^ sub;
                if sub < other && self.dp[sub * n + v] + self.dp[other * n + v] == val {
                    stack.push((sub, v));
                    stack.push((other, v));
                    found = true;
                    break;
                }
                sub = (sub - 1) & mask;
            }
            assert!(found, "no merge derivation for a finite DP cell");
        }
        edges
    }

    /// Feasible-cost upper bound over the filtered CSR adjacency: greedy
    /// nearest-terminal attachment (the SPCSH core without pruning), so
    /// the bound respects banned edges. Returns `INF` when the terminals
    /// are disconnected. Any DP label above this bound can never sit on
    /// an optimal derivation (labels only grow along one), so the solver
    /// uses it to cut merges, heap pushes, and whole masks.
    fn upper_bound(&mut self, n: usize, terminals: &[NodeId]) -> f64 {
        self.ub_state.clear();
        self.ub_state.resize(n, 0);
        let mut left = 0usize;
        for &t in &terminals[1..] {
            if self.ub_state[t.0 as usize] == 0 {
                self.ub_state[t.0 as usize] = 2;
                left += 1;
            }
        }
        if self.ub_state[terminals[0].0 as usize] == 2 {
            left -= 1;
        }
        self.ub_state[terminals[0].0 as usize] = 1;
        let mut total = 0.0;
        while left > 0 {
            self.ub_dist.clear();
            self.ub_dist.resize(n, INF);
            self.ub_pred.clear();
            self.ub_pred.resize(n, NONE32);
            self.heap.clear();
            for v in 0..n {
                if self.ub_state[v] == 1 {
                    self.ub_dist[v] = 0.0;
                    heap_push(&mut self.heap, (0.0, v as u32));
                }
            }
            let mut reached = NONE32;
            while let Some((c, v)) = heap_pop(&mut self.heap) {
                let vu = v as usize;
                if c > self.ub_dist[vu] {
                    continue;
                }
                if self.ub_state[vu] == 2 {
                    reached = v;
                    break;
                }
                for i in self.adj_off[vu] as usize..self.adj_off[vu + 1] as usize {
                    let u = self.adj_node[i] as usize;
                    let nc = c + self.adj_cost[i];
                    if nc < self.ub_dist[u] {
                        self.ub_dist[u] = nc;
                        self.ub_pred[u] = v;
                        heap_push(&mut self.heap, (nc, u as u32));
                    }
                }
            }
            if reached == NONE32 {
                return INF;
            }
            total += self.ub_dist[reached as usize];
            let mut v = reached as usize;
            while self.ub_state[v] != 1 {
                if self.ub_state[v] == 2 {
                    left -= 1;
                }
                self.ub_state[v] = 1;
                let p = self.ub_pred[v];
                if p == NONE32 {
                    break;
                }
                v = p as usize;
            }
        }
        total
    }
}

/// Push onto the in-place binary min-heap.
fn heap_push(h: &mut Vec<(f64, u32)>, item: (f64, u32)) {
    h.push(item);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if h[parent].0 <= h[i].0 {
            break;
        }
        h.swap(parent, i);
        i = parent;
    }
}

/// Pop the minimum from the in-place binary min-heap.
fn heap_pop(h: &mut Vec<(f64, u32)>) -> Option<(f64, u32)> {
    if h.is_empty() {
        return None;
    }
    let last = h.len() - 1;
    h.swap(0, last);
    let top = h.pop();
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < h.len() && h[l].0 < h[smallest].0 {
            smallest = l;
        }
        if r < h.len() && h[r].0 < h[smallest].0 {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        h.swap(i, smallest);
        i = smallest;
    }
    top
}

/// Exact minimum-cost Steiner tree via Dreyfus–Wagner. Returns `None`
/// when the terminals are not connected (or `terminals` is empty).
///
/// Allocates fresh scratch; use [`steiner_exact_in`] to amortize
/// allocations across repeated solves.
///
/// # Panics
/// Panics when more than [`MAX_EXACT_TERMINALS`] terminals are given.
pub fn steiner_exact(g: &SourceGraph, terminals: &[NodeId]) -> Option<SteinerTree> {
    steiner_exact_in(g, terminals, &mut SteinerScratch::new())
}

/// [`steiner_exact`] with caller-provided scratch buffers.
pub fn steiner_exact_in(
    g: &SourceGraph,
    terminals: &[NodeId],
    scratch: &mut SteinerScratch,
) -> Option<SteinerTree> {
    steiner_exact_banned_in(g, terminals, &[], scratch)
}

fn steiner_exact_banned_in(
    g: &SourceGraph,
    terminals: &[NodeId],
    banned: &[EdgeId],
    s: &mut SteinerScratch,
) -> Option<SteinerTree> {
    let k = terminals.len();
    assert!(
        k <= MAX_EXACT_TERMINALS,
        "exact Steiner supports at most {MAX_EXACT_TERMINALS} terminals, got {k}"
    );
    if k == 0 {
        return None;
    }
    if k == 1 {
        return Some(SteinerTree::from_edges(g, Vec::new(), terminals));
    }
    let n = g.node_count();
    let full: u32 = (1u32 << k) - 1;
    let masks = full as usize + 1;
    s.build_adjacency(g, banned);
    // A feasible solution's cost bounds every label worth keeping. The
    // greedy bound costs a few Dijkstras, so only pay for it when the DP
    // table is big enough for pruning to matter. The tiny relative slack
    // keeps the optimum itself alive under float-summation-order noise.
    let ub = if masks * n >= UB_PRUNE_MIN_CELLS {
        s.upper_bound(n, terminals) * (1.0 + 1e-9)
    } else {
        INF
    };
    s.dp.clear();
    s.dp.resize(masks * n, INF);
    s.back_a.clear();
    s.back_a.resize(masks * n, NONE32);
    s.back_b.clear();
    s.back_b.resize(masks * n, NONE32);
    s.mask_min.clear();
    s.mask_min.resize(masks, INF);
    for (i, &t) in terminals.iter().enumerate() {
        s.dp[(1usize << i) * n + t.0 as usize] = 0.0;
        s.mask_min[1 << i] = 0.0;
    }
    for mask in 1..=full {
        let m = mask as usize;
        let base = m * n;
        // Split so submask rows (strictly below `base`) stay readable
        // while this mask's row is written.
        let (lower, upper) = s.dp.split_at_mut(base);
        let dpm = &mut upper[..n];
        // Merge step: combine disjoint submask halves at the same node.
        // The inner loop is a pure min-plus scan — no backpointers
        // (merges are re-derived at traceback) and no branches — so it
        // vectorizes. A pair is skipped outright when the sum of its
        // halves' row minima already exceeds the feasible upper bound,
        // or when either half is everywhere-infinite.
        if mask & (mask - 1) != 0 {
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask ^ sub;
                if sub < other {
                    let floor = s.mask_min[sub as usize] + s.mask_min[other as usize];
                    if floor < INF && floor <= ub {
                        let sb = sub as usize * n;
                        let ob = other as usize * n;
                        for v in 0..n {
                            let c = lower[sb + v] + lower[ob + v];
                            dpm[v] = if c < dpm[v] { c } else { dpm[v] };
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        // Grow step: shortest-path closure of the row over the filtered
        // CSR adjacency via queued relaxation (Bellman–Ford with a
        // worklist). After the first pass only nodes that actually
        // improved re-enter the queue, so near-fixpoint rows — the
        // common case once small masks are done — cost almost nothing.
        // Labels above the feasible bound are useless and not propagated.
        s.queue.clear();
        s.in_queue.clear();
        s.in_queue.resize(n, false);
        for (v, &c) in dpm.iter().enumerate() {
            if c < INF {
                s.queue.push(v as u32);
                s.in_queue[v] = true;
            }
        }
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            s.in_queue[v] = false;
            let dv = dpm[v];
            let (lo, hi) = (s.adj_off[v] as usize, s.adj_off[v + 1] as usize);
            for i in lo..hi {
                let u = s.adj_node[i] as usize;
                let nc = dv + s.adj_cost[i];
                if nc < dpm[u] && nc <= ub {
                    dpm[u] = nc;
                    s.back_a[base + u] = v as u32;
                    s.back_b[base + u] = s.adj_edge[i];
                    if !s.in_queue[u] {
                        s.in_queue[u] = true;
                        s.queue.push(u as u32);
                    }
                }
            }
        }
        let mut mask_min = INF;
        for &c in dpm.iter() {
            if c < mask_min {
                mask_min = c;
            }
        }
        s.mask_min[m] = mask_min;
    }
    // Optimum: min over v of dp[full][v].
    let full_base = full as usize * n;
    let (mut best_v, mut best_cost) = (0usize, INF);
    for v in 0..n {
        let c = s.dp[full_base + v];
        if c < best_cost {
            best_cost = c;
            best_v = v;
        }
    }
    if best_cost.is_infinite() {
        return None;
    }
    let edges = s.reconstruct(n, full as usize, best_v);
    Some(SteinerTree::from_edges(g, edges, terminals))
}

/// Total order wrapper for finite f64 costs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite costs")
    }
}

/// A top-k branching candidate: a solved tree plus the edge set its
/// subproblem banned. Ordered so the candidate `BinaryHeap` pops the
/// cheapest tree first, with a deterministic tie-break — sequential and
/// parallel branching therefore enumerate identical sequences.
#[derive(Debug)]
struct Candidate {
    cost: f64,
    /// Tree edges, sorted (the reconstruction output is sorted).
    edges: Vec<EdgeId>,
    /// Banned edges of the subproblem that produced this tree.
    banned: Vec<EdgeId>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.edges == other.edges && self.banned == other.banned
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: cheapest cost wins, ties broken structurally.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("finite costs")
            .then_with(|| self.edges.cmp(&other.edges))
            .then_with(|| self.banned.cmp(&other.banned))
    }
}

/// Cheap dedup key for a sorted edge set (the `seen` set stores these
/// 64-bit keys instead of cloning whole edge vectors).
fn edge_key(edges: &[EdgeId]) -> u64 {
    let mut h = FxHasher::default();
    edges.hash(&mut h);
    h.finish()
}

/// Whether a banned-child solve is big enough to pay for worker threads:
/// the DP table is `2^k * n` cells, and thread startup costs ~tens of µs.
/// On a single-core host there is nothing to win, so never spawn there.
fn parallel_worthwhile(g: &SourceGraph, terminals: &[NodeId]) -> bool {
    std::thread::available_parallelism().map_or(false, |p| p.get() > 1)
        && terminals.len() <= MAX_EXACT_TERMINALS
        && g.node_count().saturating_mul(1usize << terminals.len()) >= 1 << 14
}

/// Solve every child subproblem (one banned set each) on scoped worker
/// threads, each with its own scratch. Results keep child order, so the
/// caller's heap evolution is identical to the sequential path.
fn solve_children_parallel(
    g: &SourceGraph,
    terminals: &[NodeId],
    children: &[Vec<EdgeId>],
) -> Vec<Option<SteinerTree>> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(children.len());
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<SteinerTree>> = vec![None; children.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = SteinerScratch::new();
                    let mut local = Vec::new();
                    loop {
                        // relaxed: a work-index dispenser needs only the
                        // RMW's atomicity; the scope join publishes results.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= children.len() {
                            break;
                        }
                        local.push((
                            i,
                            steiner_exact_banned_in(g, terminals, &children[i], &mut scratch),
                        ));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("steiner worker panicked") {
                out[i] = t;
            }
        }
    });
    out
}

/// Exact top-k Steiner trees by nondecreasing cost, via edge-exclusion
/// branching over [`steiner_exact`]. Distinct edge sets only. Child
/// subproblems run on worker threads when large enough to pay for them.
pub fn top_k_steiner(g: &SourceGraph, terminals: &[NodeId], k: usize) -> Vec<SteinerTree> {
    top_k_steiner_opts(g, terminals, k, parallel_worthwhile(g, terminals))
}

/// [`top_k_steiner`] with explicit control over parallel branching
/// (`parallel = false` forces the sequential path; both modes return
/// identical results).
pub fn top_k_steiner_opts(
    g: &SourceGraph,
    terminals: &[NodeId],
    k: usize,
    parallel: bool,
) -> Vec<SteinerTree> {
    top_k_steiner_banned_opts(g, terminals, k, &[], parallel)
}

/// [`top_k_steiner`] with an initial set of banned edges that no
/// returned tree may use. This is the failover entry point: when a
/// service's circuit breaker trips, its incident edges are banned and
/// the search re-plans over the remaining sources (§3.2's "propose
/// replacement sources").
pub fn top_k_steiner_banned(
    g: &SourceGraph,
    terminals: &[NodeId],
    k: usize,
    banned: &[EdgeId],
) -> Vec<SteinerTree> {
    top_k_steiner_banned_opts(g, terminals, k, banned, parallel_worthwhile(g, terminals))
}

/// [`top_k_steiner_banned`] with explicit control over parallel
/// branching. The initial ban seeds every branch, so the exclusion
/// holds across the whole top-k enumeration, not just the first tree.
pub fn top_k_steiner_banned_opts(
    g: &SourceGraph,
    terminals: &[NodeId],
    k: usize,
    init_banned: &[EdgeId],
    parallel: bool,
) -> Vec<SteinerTree> {
    let mut out: Vec<SteinerTree> = Vec::new();
    if k == 0 {
        return out;
    }
    let mut scratch = SteinerScratch::new();
    let Some(first) = steiner_exact_banned_in(g, terminals, init_banned, &mut scratch) else {
        return out;
    };
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    heap.push(Candidate { cost: first.cost, edges: first.edges, banned: init_banned.to_vec() });
    while let Some(cand) = heap.pop() {
        if !seen.insert(edge_key(&cand.edges)) {
            continue;
        }
        let Candidate { edges, banned, .. } = cand;
        out.push(SteinerTree::from_edges(g, edges, terminals));
        if out.len() >= k {
            break;
        }
        // Branch: ban each edge of this tree in turn (any distinct tree
        // must omit at least one of them). The child solves share no
        // state, so they can run concurrently.
        let tree_edges = &out.last().expect("just pushed").edges;
        let children: Vec<Vec<EdgeId>> = tree_edges
            .iter()
            .map(|&e| {
                let mut b = banned.clone();
                b.push(e);
                b
            })
            .collect();
        let solved: Vec<Option<SteinerTree>> = if parallel && children.len() >= 2 {
            solve_children_parallel(g, terminals, &children)
        } else {
            children
                .iter()
                .map(|b| steiner_exact_banned_in(g, terminals, b, &mut scratch))
                .collect()
        };
        for (b, t) in children.into_iter().zip(solved) {
            if let Some(t) = t {
                heap.push(Candidate { cost: t.cost, edges: t.edges, banned: b });
            }
        }
    }
    out
}

/// SPCSH-style approximation: shortest-path component heuristic with
/// optional edge pruning. `prune_quantile` ∈ (0, 1]: edges costlier than
/// that cost quantile are ignored (1.0 = no pruning); if pruning
/// disconnects the terminals the search transparently retries unpruned.
pub fn spcsh(g: &SourceGraph, terminals: &[NodeId], prune_quantile: f64) -> Option<SteinerTree> {
    if terminals.is_empty() {
        return None;
    }
    let banned = prune_set(g, prune_quantile);
    match spcsh_banned(g, terminals, &banned) {
        Some(t) => Some(t),
        None if !banned.is_empty() => spcsh_banned(g, terminals, &FxHashSet::default()),
        None => None,
    }
}

fn prune_set(g: &SourceGraph, quantile: f64) -> FxHashSet<EdgeId> {
    if quantile >= 1.0 || g.edge_count() == 0 {
        return FxHashSet::default();
    }
    let mut costs: Vec<f64> = g.edge_ids().map(|e| g.cost(e)).collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((costs.len() as f64 - 1.0) * quantile.clamp(0.0, 1.0)).round() as usize;
    let threshold = costs[idx];
    g.edge_ids().filter(|&e| g.cost(e) > threshold).collect()
}

fn spcsh_banned(
    g: &SourceGraph,
    terminals: &[NodeId],
    banned: &FxHashSet<EdgeId>,
) -> Option<SteinerTree> {
    let n = g.node_count();
    // Start with the tree containing terminal 0; repeatedly attach the
    // nearest other terminal via its shortest path to the current tree.
    let mut in_tree = vec![false; n];
    in_tree[terminals[0].0 as usize] = true;
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut remaining: FxHashSet<NodeId> = terminals[1..].iter().copied().collect();

    while !remaining.is_empty() {
        // Multi-source Dijkstra from the current tree.
        let mut dist = vec![INF; n];
        let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap: BinaryHeap<(std::cmp::Reverse<OrdF64>, usize)> = BinaryHeap::new();
        for v in 0..n {
            if in_tree[v] {
                dist[v] = 0.0;
                heap.push((std::cmp::Reverse(OrdF64(0.0)), v));
            }
        }
        let mut reached: Option<NodeId> = None;
        while let Some((std::cmp::Reverse(OrdF64(c)), v)) = heap.pop() {
            if c > dist[v] {
                continue;
            }
            let vid = NodeId(v as u32);
            if remaining.contains(&vid) {
                reached = Some(vid);
                break;
            }
            for &e in g.incident(vid) {
                if banned.contains(&e) {
                    continue;
                }
                let u = g.other_end(e, vid).0 as usize;
                let nc = c + g.cost(e);
                if nc < dist[u] {
                    dist[u] = nc;
                    pred[u] = Some((vid, e));
                    heap.push((std::cmp::Reverse(OrdF64(nc)), u));
                }
            }
        }
        let target = reached?;
        // Trace the path back into the tree.
        let mut cur = target;
        while !in_tree[cur.0 as usize] {
            in_tree[cur.0 as usize] = true;
            let (prev, e) = pred[cur.0 as usize].expect("path exists");
            tree_edges.push(e);
            cur = prev;
        }
        remaining.remove(&target);
    }
    Some(SteinerTree::from_edges(g, tree_edges, terminals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_graph::EdgeKind;
    use copycat_query::Schema;
    use copycat_util::check::{check, Gen};
    use copycat_util::rng::{Rng, SeedableRng, StdRng};
    use copycat_util::{prop_ensure, prop_ensure_eq};

    fn chain(costs: &[f64]) -> (SourceGraph, Vec<NodeId>) {
        let mut g = SourceGraph::new();
        let nodes: Vec<NodeId> = (0..=costs.len())
            .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
            .collect();
        for (i, &c) in costs.iter().enumerate() {
            g.add_edge_with_cost(
                nodes[i],
                nodes[i + 1],
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                c,
            );
        }
        (g, nodes)
    }

    /// Random connected-ish graph for cross-validation.
    fn random_graph(seed: u64, n: usize, extra_edges: usize) -> SourceGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = SourceGraph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
            .collect();
        // Random spanning structure, then extra edges.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            g.add_edge_with_cost(
                nodes[i],
                nodes[j],
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                rng.gen_range(0.5..3.0),
            );
        }
        for _ in 0..extra_edges {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                g.add_edge_with_cost(
                    nodes[i],
                    nodes[j],
                    EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                    rng.gen_range(0.5..3.0),
                );
            }
        }
        g
    }

    /// Brute-force optimum: try every node subset containing the
    /// terminals; for each, the MST of the induced subgraph.
    fn brute_force(g: &SourceGraph, terminals: &[NodeId]) -> Option<f64> {
        let n = g.node_count();
        assert!(n <= 12);
        let term_mask: u32 = terminals.iter().map(|t| 1u32 << t.0).sum();
        let mut best: Option<f64> = None;
        for mask in 0..(1u32 << n) {
            if mask & term_mask != term_mask {
                continue;
            }
            if let Some(c) = induced_mst(g, mask) {
                best = Some(best.map_or(c, |b: f64| b.min(c)));
            }
        }
        best
    }

    fn induced_mst(g: &SourceGraph, mask: u32) -> Option<f64> {
        let nodes: Vec<usize> = (0..g.node_count()).filter(|v| mask & (1 << v) != 0).collect();
        if nodes.is_empty() {
            return None;
        }
        // Prim's.
        let mut in_mst = vec![false; g.node_count()];
        in_mst[nodes[0]] = true;
        let mut count = 1;
        let mut total = 0.0;
        while count < nodes.len() {
            let mut best: Option<(f64, usize)> = None;
            for &v in &nodes {
                if !in_mst[v] {
                    continue;
                }
                for &e in g.incident(NodeId(v as u32)) {
                    let u = g.other_end(e, NodeId(v as u32)).0 as usize;
                    if mask & (1 << u) != 0 && !in_mst[u] {
                        let c = g.cost(e);
                        if best.is_none_or(|(bc, _)| c < bc) {
                            best = Some((c, u));
                        }
                    }
                }
            }
            let (c, u) = best?;
            in_mst[u] = true;
            total += c;
            count += 1;
        }
        Some(total)
    }

    #[test]
    fn chain_tree_is_whole_chain() {
        let (g, nodes) = chain(&[1.0, 2.0, 3.0]);
        let t = steiner_exact(&g, &[nodes[0], nodes[3]]).unwrap();
        assert_eq!(t.cost, 6.0);
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn intermediate_nodes_are_used() {
        // Star: terminals on leaves, hub is a non-terminal Steiner point.
        let mut g = SourceGraph::new();
        let hub = g.add_relation("hub", Schema::of(&["X"]));
        let leaves: Vec<NodeId> = (0..3)
            .map(|i| g.add_relation(format!("l{i}"), Schema::of(&["X"])))
            .collect();
        for &l in &leaves {
            g.add_edge_with_cost(
                hub,
                l,
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                1.0,
            );
        }
        let t = steiner_exact(&g, &leaves).unwrap();
        assert_eq!(t.cost, 3.0);
        assert!(t.nodes.contains(&hub));
    }

    #[test]
    fn single_terminal_is_empty_tree() {
        let (g, nodes) = chain(&[1.0]);
        let t = steiner_exact(&g, &[nodes[0]]).unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.cost, 0.0);
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let mut g = SourceGraph::new();
        let a = g.add_relation("a", Schema::of(&["X"]));
        let b = g.add_relation("b", Schema::of(&["X"]));
        assert!(steiner_exact(&g, &[a, b]).is_none());
        assert!(spcsh(&g, &[a, b], 1.0).is_none());
    }

    #[test]
    fn scratch_reuse_is_sound() {
        // Solving different problems through one scratch must not leak
        // state between solves.
        let mut scratch = SteinerScratch::new();
        for seed in 0..10 {
            let g = random_graph(seed, 9, 8);
            let terminals = vec![NodeId(0), NodeId(4), NodeId(8)];
            let fresh = steiner_exact(&g, &terminals).map(|t| t.cost);
            let reused = steiner_exact_in(&g, &terminals, &mut scratch).map(|t| t.cost);
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn exact_matches_brute_force_on_random_graphs() {
        for seed in 0..20 {
            let g = random_graph(seed, 9, 8);
            let terminals = vec![NodeId(0), NodeId(4), NodeId(8)];
            let exact = steiner_exact(&g, &terminals).map(|t| t.cost);
            let brute = brute_force(&g, &terminals);
            match (exact, brute) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "seed {seed}: exact {a} vs brute {b}")
                }
                (None, None) => {}
                other => panic!("seed {seed}: {other:?}"),
            }
        }
    }

    /// Draw a small random graph from the property-test tape: ≤8 nodes,
    /// optional spanning backbone (absent → possibly disconnected),
    /// random extra edges, and 1–5 distinct terminals.
    fn gen_graph(gen: &mut Gen) -> (SourceGraph, Vec<NodeId>) {
        let n = gen.usize_in(2..9);
        let mut g = SourceGraph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
            .collect();
        let join = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
        if gen.bool_p(0.8) {
            for i in 1..n {
                let j = gen.usize_in(0..i);
                g.add_edge_with_cost(nodes[i], nodes[j], join(), gen.f64_in(0.1..3.0));
            }
        }
        for _ in 0..gen.usize_in(0..10) {
            let a = gen.usize_in(0..n);
            let b = gen.usize_in(0..n);
            if a != b {
                g.add_edge_with_cost(nodes[a], nodes[b], join(), gen.f64_in(0.1..3.0));
            }
        }
        let k = gen.usize_in(1..n.min(5) + 1);
        let mut terminals = Vec::with_capacity(k);
        while terminals.len() < k {
            let cand = nodes[gen.usize_in(0..n)];
            if !terminals.contains(&cand) {
                terminals.push(cand);
            }
        }
        (g, terminals)
    }

    #[test]
    fn prop_exact_matches_brute_force() {
        check("steiner-exact-vs-brute", 64, &[], |gen| {
            let (g, terminals) = gen_graph(gen);
            let exact = steiner_exact(&g, &terminals);
            let brute = brute_force(&g, &terminals);
            match (&exact, brute) {
                (Some(t), Some(b)) => {
                    prop_ensure!(
                        (t.cost - b).abs() < 1e-9,
                        "exact {} vs brute {b} on {g}",
                        t.cost
                    );
                    // The reported cost is consistent with the edge set,
                    // and the tree spans every terminal.
                    prop_ensure!((g.tree_cost(&t.edges) - t.cost).abs() < 1e-9);
                    for term in &terminals {
                        prop_ensure!(t.nodes.contains(term), "terminal {term:?} not spanned");
                    }
                }
                (None, None) => {}
                other => return Err(format!("exact/brute disagree on feasibility: {other:?}")),
            }
            Ok(())
        });
    }

    #[test]
    fn prop_top_k_sorted_distinct_and_mode_independent() {
        check("top-k-parallel-vs-seq", 32, &[], |gen| {
            let (g, terminals) = gen_graph(gen);
            let k = gen.usize_in(1..7);
            let seq = top_k_steiner_opts(&g, &terminals, k, false);
            let par = top_k_steiner_opts(&g, &terminals, k, true);
            for trees in [&seq, &par] {
                for pair in trees.windows(2) {
                    prop_ensure!(pair[0].cost <= pair[1].cost + 1e-9, "costs decrease");
                    prop_ensure!(pair[0].edges != pair[1].edges, "duplicate tree");
                }
            }
            prop_ensure_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(par.iter()) {
                prop_ensure_eq!(a.edges, b.edges);
                prop_ensure!((a.cost - b.cost).abs() < 1e-9);
            }
            if let Some(first) = seq.first() {
                let opt = steiner_exact(&g, &terminals).expect("feasible");
                prop_ensure!((first.cost - opt.cost).abs() < 1e-9, "first tree not optimal");
            }
            Ok(())
        });
    }

    #[test]
    fn spcsh_is_feasible_and_close() {
        for seed in 0..20 {
            let g = random_graph(100 + seed, 12, 14);
            let terminals = vec![NodeId(0), NodeId(5), NodeId(11)];
            let exact = steiner_exact(&g, &terminals).unwrap();
            let approx = spcsh(&g, &terminals, 1.0).unwrap();
            // Feasible: spans all terminals and is connected by construction.
            for t in &terminals {
                assert!(approx.nodes.contains(t));
            }
            // Approximation guarantee for SPH is 2(1 - 1/k).
            assert!(
                approx.cost <= exact.cost * 2.0 + 1e-9,
                "seed {seed}: {} vs {}",
                approx.cost,
                exact.cost
            );
            assert!(approx.cost >= exact.cost - 1e-9);
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let g = random_graph(7, 8, 10);
        let terminals = vec![NodeId(0), NodeId(7)];
        let trees = top_k_steiner(&g, &terminals, 5);
        assert!(!trees.is_empty());
        for pair in trees.windows(2) {
            assert!(pair[0].cost <= pair[1].cost + 1e-9);
            assert_ne!(pair[0].edges, pair[1].edges);
        }
        // The first is the optimum.
        let exact = steiner_exact(&g, &terminals).unwrap();
        assert!((trees[0].cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn top_k_on_diamond_finds_both_paths() {
        // a -1- b -1- d ; a -1.5- c -1.5- d
        let mut g = SourceGraph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| g.add_relation(*n, Schema::of(&["X"])))
            .collect();
        let j = |a: &str, b: &str| EdgeKind::Join { pairs: vec![(a.into(), b.into())] };
        g.add_edge_with_cost(ids[0], ids[1], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[1], ids[3], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[0], ids[2], j("X", "X"), 1.5);
        g.add_edge_with_cost(ids[2], ids[3], j("X", "X"), 1.5);
        let trees = top_k_steiner(&g, &[ids[0], ids[3]], 3);
        // Exactly the two alternative paths exist: every subproblem's
        // optimum is redundancy-free, so trees with a dangling extra
        // branch are (correctly) never enumerated.
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].cost, 2.0);
        assert_eq!(trees[1].cost, 3.0);
    }

    #[test]
    fn pruning_speeds_but_may_cost() {
        let g = random_graph(42, 30, 60);
        let terminals = vec![NodeId(0), NodeId(15), NodeId(29)];
        let unpruned = spcsh(&g, &terminals, 1.0).unwrap();
        let pruned = spcsh(&g, &terminals, 0.5).unwrap();
        // Pruned still feasible; cost can only be >= (fewer edges available).
        assert!(pruned.cost + 1e-9 >= unpruned.cost * 0.999 || pruned.cost >= unpruned.cost);
        for t in &terminals {
            assert!(pruned.nodes.contains(t));
        }
    }

    #[test]
    fn banned_top_k_excludes_edges_everywhere() {
        // Same diamond: banning the cheap path's first edge must drop
        // *every* tree using it from the enumeration, not just the first.
        let mut g = SourceGraph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| g.add_relation(*n, Schema::of(&["X"])))
            .collect();
        let j = |a: &str, b: &str| EdgeKind::Join { pairs: vec![(a.into(), b.into())] };
        let ab = g.add_edge_with_cost(ids[0], ids[1], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[1], ids[3], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[0], ids[2], j("X", "X"), 1.5);
        g.add_edge_with_cost(ids[2], ids[3], j("X", "X"), 1.5);
        let trees = top_k_steiner_banned(&g, &[ids[0], ids[3]], 3, &[ab]);
        assert_eq!(trees.len(), 1, "only the c-path survives the ban");
        assert_eq!(trees[0].cost, 3.0);
        for t in &trees {
            assert!(!t.edges.contains(&ab));
        }
        // Empty ban is exactly the plain top-k.
        let plain = top_k_steiner(&g, &[ids[0], ids[3]], 3);
        let unbanned = top_k_steiner_banned(&g, &[ids[0], ids[3]], 3, &[]);
        assert_eq!(plain.len(), unbanned.len());
        for (a, b) in plain.iter().zip(&unbanned) {
            assert_eq!(a.edges, b.edges);
        }
        // Banning everything on one side of a cut → no trees.
        let touches = |e: EdgeId, u: NodeId, v: NodeId| {
            let edge = g.edge(e);
            (edge.a == u && edge.b == v) || (edge.a == v && edge.b == u)
        };
        let cd = g.edge_ids().find(|&e| touches(e, ids[2], ids[3])).unwrap();
        let bd = g.edge_ids().find(|&e| touches(e, ids[1], ids[3])).unwrap();
        assert!(top_k_steiner_banned(&g, &[ids[0], ids[3]], 3, &[cd, bd]).is_empty());
    }

    #[test]
    fn parallel_edges_are_handled() {
        let mut g = SourceGraph::new();
        let a = g.add_relation("a", Schema::of(&["X"]));
        let b = g.add_relation("b", Schema::of(&["X"]));
        let j = EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
        g.add_edge_with_cost(a, b, j.clone(), 2.0);
        let cheap = g.add_edge_with_cost(a, b, j, 1.0);
        let t = steiner_exact(&g, &[a, b]).unwrap();
        assert_eq!(t.edges, vec![cheap]);
        let trees = top_k_steiner(&g, &[a, b], 2);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[1].cost, 2.0);
    }
}
