//! Steiner-tree query search (§4.2).
//!
//! "The learner finds the most likely explanations for the tuples
//! (queries) by discovering Steiner trees connecting the data sources in
//! the source graph. For small source graphs, we can compute the most
//! promising queries using an exact top-k Steiner tree algorithm … For
//! larger graphs we use the SPCSH Steiner tree approximation algorithm,
//! which prunes 'non-promising' edges from the source graph for better
//! scaling."
//!
//! The paper's exact algorithm is an ILP; we use the Dreyfus–Wagner
//! dynamic program, which computes the same optima without an external
//! solver, plus edge-exclusion branching for top-k. The approximation is
//! a shortest-path component heuristic with optional cost-quantile edge
//! pruning (the SPCSH knob ablated in experiment A3).

use crate::source_graph::{EdgeId, NodeId, SourceGraph};
use copycat_util::hash::FxHashSet;
use std::collections::BinaryHeap;

/// A Steiner tree: the chosen edges, the spanned nodes, and total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// Tree edges, sorted.
    pub edges: Vec<EdgeId>,
    /// Spanned nodes (terminals plus any intermediates), sorted.
    pub nodes: Vec<NodeId>,
    /// Sum of edge costs.
    pub cost: f64,
}

impl SteinerTree {
    fn from_edges(g: &SourceGraph, mut edges: Vec<EdgeId>, terminals: &[NodeId]) -> SteinerTree {
        edges.sort_unstable();
        edges.dedup();
        let mut nodes: Vec<NodeId> = terminals.to_vec();
        for &e in &edges {
            nodes.push(g.edge(e).a);
            nodes.push(g.edge(e).b);
        }
        nodes.sort_unstable();
        nodes.dedup();
        let cost = g.tree_cost(&edges);
        SteinerTree { edges, nodes, cost }
    }
}

/// Maximum supported terminal count for the exact algorithm (the DP is
/// exponential in it).
pub const MAX_EXACT_TERMINALS: usize = 12;

/// Exact minimum-cost Steiner tree via Dreyfus–Wagner. Returns `None`
/// when the terminals are not connected (or `terminals` is empty).
///
/// # Panics
/// Panics when more than [`MAX_EXACT_TERMINALS`] terminals are given.
pub fn steiner_exact(g: &SourceGraph, terminals: &[NodeId]) -> Option<SteinerTree> {
    steiner_exact_banned(g, terminals, &FxHashSet::default())
}

/// Backpointer for tree reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Back {
    /// Singleton terminal at this node.
    Leaf,
    /// Extended from the same mask at another node along an edge.
    Grow(NodeId, EdgeId),
    /// Merged two submask trees at this node (stores one submask; the
    /// complement is implied).
    Merge(u32),
}

fn steiner_exact_banned(
    g: &SourceGraph,
    terminals: &[NodeId],
    banned: &FxHashSet<EdgeId>,
) -> Option<SteinerTree> {
    let k = terminals.len();
    assert!(
        k <= MAX_EXACT_TERMINALS,
        "exact Steiner supports at most {MAX_EXACT_TERMINALS} terminals, got {k}"
    );
    if k == 0 {
        return None;
    }
    if k == 1 {
        return Some(SteinerTree::from_edges(g, Vec::new(), terminals));
    }
    let n = g.node_count();
    let full: u32 = (1u32 << k) - 1;
    const INF: f64 = f64::INFINITY;
    // dp[mask][v], back[mask][v]
    let mut dp = vec![vec![INF; n]; (full + 1) as usize];
    let mut back = vec![vec![Back::Leaf; n]; (full + 1) as usize];
    for (i, &t) in terminals.iter().enumerate() {
        dp[1 << i][t.0 as usize] = 0.0;
    }
    for mask in 1..=full {
        let m = mask as usize;
        // Merge step: combine disjoint submasks at the same node.
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask ^ sub;
            if sub < other {
                // Each unordered pair once.
                for v in 0..n {
                    let c = dp[sub as usize][v] + dp[other as usize][v];
                    if c < dp[m][v] {
                        dp[m][v] = c;
                        back[m][v] = Back::Merge(sub);
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        // Grow step: Dijkstra relaxation within this mask.
        let mut heap: BinaryHeap<(std::cmp::Reverse<OrdF64>, usize)> = dp[m]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < INF)
            .map(|(v, &c)| (std::cmp::Reverse(OrdF64(c)), v))
            .collect();
        while let Some((std::cmp::Reverse(OrdF64(c)), v)) = heap.pop() {
            if c > dp[m][v] {
                continue;
            }
            let vid = NodeId(v as u32);
            for &e in g.incident(vid) {
                if banned.contains(&e) {
                    continue;
                }
                let u = g.other_end(e, vid).0 as usize;
                let nc = c + g.cost(e);
                if nc < dp[m][u] {
                    dp[m][u] = nc;
                    back[m][u] = Back::Grow(vid, e);
                    heap.push((std::cmp::Reverse(OrdF64(nc)), u));
                }
            }
        }
    }
    // Optimum: min over v of dp[full][v].
    let (best_v, best_cost) = dp[full as usize]
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("no NaN costs"))
        .map(|(v, &c)| (v, c))?;
    if best_cost.is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut stack = vec![(full, best_v)];
    while let Some((mask, v)) = stack.pop() {
        match back[mask as usize][v] {
            Back::Leaf => {}
            Back::Grow(from, e) => {
                edges.push(e);
                stack.push((mask, from.0 as usize));
            }
            Back::Merge(sub) => {
                stack.push((sub, v));
                stack.push((mask ^ sub, v));
            }
        }
    }
    Some(SteinerTree::from_edges(g, edges, terminals))
}

/// Total order wrapper for finite f64 costs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite costs")
    }
}

/// Exact top-k Steiner trees by nondecreasing cost, via edge-exclusion
/// branching over [`steiner_exact`]. Distinct edge sets only.
pub fn top_k_steiner(g: &SourceGraph, terminals: &[NodeId], k: usize) -> Vec<SteinerTree> {
    let mut out: Vec<SteinerTree> = Vec::new();
    let mut seen: FxHashSet<Vec<EdgeId>> = FxHashSet::default();
    // Heap of candidate (cost, tree, banned-set) ordered by min cost.
    let mut heap: BinaryHeap<(std::cmp::Reverse<OrdF64>, Vec<EdgeId>, Vec<EdgeId>)> =
        BinaryHeap::new();
    let Some(first) = steiner_exact(g, terminals) else {
        return out;
    };
    heap.push((std::cmp::Reverse(OrdF64(first.cost)), first.edges.clone(), Vec::new()));
    while let Some((_, edges, banned_vec)) = heap.pop() {
        if !seen.insert(edges.clone()) {
            continue;
        }
        let tree = SteinerTree::from_edges(g, edges.clone(), terminals);
        out.push(tree);
        if out.len() >= k {
            break;
        }
        // Branch: ban each edge of this tree in turn (any distinct tree
        // must omit at least one of them).
        for &e in &edges {
            let mut banned: FxHashSet<EdgeId> = banned_vec.iter().copied().collect();
            banned.insert(e);
            if let Some(t) = steiner_exact_banned(g, terminals, &banned) {
                let mut bv = banned_vec.clone();
                bv.push(e);
                heap.push((std::cmp::Reverse(OrdF64(t.cost)), t.edges, bv));
            }
        }
    }
    out
}

/// SPCSH-style approximation: shortest-path component heuristic with
/// optional edge pruning. `prune_quantile` ∈ (0, 1]: edges costlier than
/// that cost quantile are ignored (1.0 = no pruning); if pruning
/// disconnects the terminals the search transparently retries unpruned.
pub fn spcsh(g: &SourceGraph, terminals: &[NodeId], prune_quantile: f64) -> Option<SteinerTree> {
    if terminals.is_empty() {
        return None;
    }
    let banned = prune_set(g, prune_quantile);
    match spcsh_banned(g, terminals, &banned) {
        Some(t) => Some(t),
        None if !banned.is_empty() => spcsh_banned(g, terminals, &FxHashSet::default()),
        None => None,
    }
}

fn prune_set(g: &SourceGraph, quantile: f64) -> FxHashSet<EdgeId> {
    if quantile >= 1.0 || g.edge_count() == 0 {
        return FxHashSet::default();
    }
    let mut costs: Vec<f64> = g.edge_ids().map(|e| g.cost(e)).collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((costs.len() as f64 - 1.0) * quantile.clamp(0.0, 1.0)).round() as usize;
    let threshold = costs[idx];
    g.edge_ids().filter(|&e| g.cost(e) > threshold).collect()
}

fn spcsh_banned(
    g: &SourceGraph,
    terminals: &[NodeId],
    banned: &FxHashSet<EdgeId>,
) -> Option<SteinerTree> {
    let n = g.node_count();
    // Start with the tree containing terminal 0; repeatedly attach the
    // nearest other terminal via its shortest path to the current tree.
    let mut in_tree = vec![false; n];
    in_tree[terminals[0].0 as usize] = true;
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let mut remaining: FxHashSet<NodeId> = terminals[1..].iter().copied().collect();

    while !remaining.is_empty() {
        // Multi-source Dijkstra from the current tree.
        const INF: f64 = f64::INFINITY;
        let mut dist = vec![INF; n];
        let mut pred: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap: BinaryHeap<(std::cmp::Reverse<OrdF64>, usize)> = BinaryHeap::new();
        for v in 0..n {
            if in_tree[v] {
                dist[v] = 0.0;
                heap.push((std::cmp::Reverse(OrdF64(0.0)), v));
            }
        }
        let mut reached: Option<NodeId> = None;
        while let Some((std::cmp::Reverse(OrdF64(c)), v)) = heap.pop() {
            if c > dist[v] {
                continue;
            }
            let vid = NodeId(v as u32);
            if remaining.contains(&vid) {
                reached = Some(vid);
                break;
            }
            for &e in g.incident(vid) {
                if banned.contains(&e) {
                    continue;
                }
                let u = g.other_end(e, vid).0 as usize;
                let nc = c + g.cost(e);
                if nc < dist[u] {
                    dist[u] = nc;
                    pred[u] = Some((vid, e));
                    heap.push((std::cmp::Reverse(OrdF64(nc)), u));
                }
            }
        }
        let target = reached?;
        // Trace the path back into the tree.
        let mut cur = target;
        while !in_tree[cur.0 as usize] {
            in_tree[cur.0 as usize] = true;
            let (prev, e) = pred[cur.0 as usize].expect("path exists");
            tree_edges.push(e);
            cur = prev;
        }
        remaining.remove(&target);
    }
    Some(SteinerTree::from_edges(g, tree_edges, terminals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_graph::EdgeKind;
    use copycat_query::Schema;
    use copycat_util::rng::{Rng, SeedableRng, StdRng};

    fn chain(costs: &[f64]) -> (SourceGraph, Vec<NodeId>) {
        let mut g = SourceGraph::new();
        let nodes: Vec<NodeId> = (0..=costs.len())
            .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
            .collect();
        for (i, &c) in costs.iter().enumerate() {
            g.add_edge_with_cost(
                nodes[i],
                nodes[i + 1],
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                c,
            );
        }
        (g, nodes)
    }

    /// Random connected-ish graph for cross-validation.
    fn random_graph(seed: u64, n: usize, extra_edges: usize) -> SourceGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = SourceGraph::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| g.add_relation(format!("n{i}"), Schema::of(&["X"])))
            .collect();
        // Random spanning structure, then extra edges.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            g.add_edge_with_cost(
                nodes[i],
                nodes[j],
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                rng.gen_range(0.5..3.0),
            );
        }
        for _ in 0..extra_edges {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                g.add_edge_with_cost(
                    nodes[i],
                    nodes[j],
                    EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                    rng.gen_range(0.5..3.0),
                );
            }
        }
        g
    }

    /// Brute-force optimum: try every node subset containing the
    /// terminals; for each, the MST of the induced subgraph.
    fn brute_force(g: &SourceGraph, terminals: &[NodeId]) -> Option<f64> {
        let n = g.node_count();
        assert!(n <= 12);
        let term_mask: u32 = terminals.iter().map(|t| 1u32 << t.0).sum();
        let mut best: Option<f64> = None;
        for mask in 0..(1u32 << n) {
            if mask & term_mask != term_mask {
                continue;
            }
            if let Some(c) = induced_mst(g, mask) {
                best = Some(best.map_or(c, |b: f64| b.min(c)));
            }
        }
        best
    }

    fn induced_mst(g: &SourceGraph, mask: u32) -> Option<f64> {
        let nodes: Vec<usize> = (0..g.node_count()).filter(|v| mask & (1 << v) != 0).collect();
        if nodes.is_empty() {
            return None;
        }
        // Prim's.
        let mut in_mst = vec![false; g.node_count()];
        in_mst[nodes[0]] = true;
        let mut count = 1;
        let mut total = 0.0;
        while count < nodes.len() {
            let mut best: Option<(f64, usize)> = None;
            for &v in &nodes {
                if !in_mst[v] {
                    continue;
                }
                for &e in g.incident(NodeId(v as u32)) {
                    let u = g.other_end(e, NodeId(v as u32)).0 as usize;
                    if mask & (1 << u) != 0 && !in_mst[u] {
                        let c = g.cost(e);
                        if best.is_none_or(|(bc, _)| c < bc) {
                            best = Some((c, u));
                        }
                    }
                }
            }
            let (c, u) = best?;
            in_mst[u] = true;
            total += c;
            count += 1;
        }
        Some(total)
    }

    #[test]
    fn chain_tree_is_whole_chain() {
        let (g, nodes) = chain(&[1.0, 2.0, 3.0]);
        let t = steiner_exact(&g, &[nodes[0], nodes[3]]).unwrap();
        assert_eq!(t.cost, 6.0);
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn intermediate_nodes_are_used() {
        // Star: terminals on leaves, hub is a non-terminal Steiner point.
        let mut g = SourceGraph::new();
        let hub = g.add_relation("hub", Schema::of(&["X"]));
        let leaves: Vec<NodeId> = (0..3)
            .map(|i| g.add_relation(format!("l{i}"), Schema::of(&["X"])))
            .collect();
        for &l in &leaves {
            g.add_edge_with_cost(
                hub,
                l,
                EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
                1.0,
            );
        }
        let t = steiner_exact(&g, &leaves).unwrap();
        assert_eq!(t.cost, 3.0);
        assert!(t.nodes.contains(&hub));
    }

    #[test]
    fn single_terminal_is_empty_tree() {
        let (g, nodes) = chain(&[1.0]);
        let t = steiner_exact(&g, &[nodes[0]]).unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.cost, 0.0);
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let mut g = SourceGraph::new();
        let a = g.add_relation("a", Schema::of(&["X"]));
        let b = g.add_relation("b", Schema::of(&["X"]));
        assert!(steiner_exact(&g, &[a, b]).is_none());
        assert!(spcsh(&g, &[a, b], 1.0).is_none());
    }

    #[test]
    fn exact_matches_brute_force_on_random_graphs() {
        for seed in 0..20 {
            let g = random_graph(seed, 9, 8);
            let terminals = vec![NodeId(0), NodeId(4), NodeId(8)];
            let exact = steiner_exact(&g, &terminals).map(|t| t.cost);
            let brute = brute_force(&g, &terminals);
            match (exact, brute) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "seed {seed}: exact {a} vs brute {b}")
                }
                (None, None) => {}
                other => panic!("seed {seed}: {other:?}"),
            }
        }
    }

    #[test]
    fn spcsh_is_feasible_and_close() {
        for seed in 0..20 {
            let g = random_graph(100 + seed, 12, 14);
            let terminals = vec![NodeId(0), NodeId(5), NodeId(11)];
            let exact = steiner_exact(&g, &terminals).unwrap();
            let approx = spcsh(&g, &terminals, 1.0).unwrap();
            // Feasible: spans all terminals and is connected by construction.
            for t in &terminals {
                assert!(approx.nodes.contains(t));
            }
            // Approximation guarantee for SPH is 2(1 - 1/k).
            assert!(
                approx.cost <= exact.cost * 2.0 + 1e-9,
                "seed {seed}: {} vs {}",
                approx.cost,
                exact.cost
            );
            assert!(approx.cost >= exact.cost - 1e-9);
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let g = random_graph(7, 8, 10);
        let terminals = vec![NodeId(0), NodeId(7)];
        let trees = top_k_steiner(&g, &terminals, 5);
        assert!(!trees.is_empty());
        for pair in trees.windows(2) {
            assert!(pair[0].cost <= pair[1].cost + 1e-9);
            assert_ne!(pair[0].edges, pair[1].edges);
        }
        // The first is the optimum.
        let exact = steiner_exact(&g, &terminals).unwrap();
        assert!((trees[0].cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn top_k_on_diamond_finds_both_paths() {
        // a -1- b -1- d ; a -1.5- c -1.5- d
        let mut g = SourceGraph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| g.add_relation(*n, Schema::of(&["X"])))
            .collect();
        let j = |a: &str, b: &str| EdgeKind::Join { pairs: vec![(a.into(), b.into())] };
        g.add_edge_with_cost(ids[0], ids[1], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[1], ids[3], j("X", "X"), 1.0);
        g.add_edge_with_cost(ids[0], ids[2], j("X", "X"), 1.5);
        g.add_edge_with_cost(ids[2], ids[3], j("X", "X"), 1.5);
        let trees = top_k_steiner(&g, &[ids[0], ids[3]], 3);
        // Exactly the two alternative paths exist: every subproblem's
        // optimum is redundancy-free, so trees with a dangling extra
        // branch are (correctly) never enumerated.
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].cost, 2.0);
        assert_eq!(trees[1].cost, 3.0);
    }

    #[test]
    fn pruning_speeds_but_may_cost() {
        let g = random_graph(42, 30, 60);
        let terminals = vec![NodeId(0), NodeId(15), NodeId(29)];
        let unpruned = spcsh(&g, &terminals, 1.0).unwrap();
        let pruned = spcsh(&g, &terminals, 0.5).unwrap();
        // Pruned still feasible; cost can only be >= (fewer edges available).
        assert!(pruned.cost + 1e-9 >= unpruned.cost * 0.999 || pruned.cost >= unpruned.cost);
        for t in &terminals {
            assert!(pruned.nodes.contains(t));
        }
    }

    #[test]
    fn parallel_edges_are_handled() {
        let mut g = SourceGraph::new();
        let a = g.add_relation("a", Schema::of(&["X"]));
        let b = g.add_relation("b", Schema::of(&["X"]));
        let j = EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
        g.add_edge_with_cost(a, b, j.clone(), 2.0);
        let cheap = g.add_edge_with_cost(a, b, j, 1.0);
        let t = steiner_exact(&g, &[a, b]).unwrap();
        assert_eq!(t.edges, vec![cheap]);
        let trees = top_k_steiner(&g, &[a, b], 2);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[1].cost, 2.0);
    }
}
