//! The CopyCat *integration learner*'s substrate (§4 of the CIDR 2009
//! paper): the source graph, association discovery, Steiner-tree query
//! search, and MIRA weight learning.
//!
//! "At its core, this learner maintains a *source graph*, in which nodes
//! describe the schemas of data sources and … services. Edges describe
//! possible means of linking data from one source to another … Edges
//! receive weights defining how relevant they are … adjusted through
//! learning."
//!
//! * [`source_graph`] — nodes (relations & services), weighted association
//!   edges (joins, dependent-join bindings, record links);
//! * [`assoc`] — §4.1's edge discovery: "(1) common attribute names and
//!   data types, (2) known links or foreign keys", conjunction of all
//!   shared predicates by default;
//! * [`steiner`] — §4.2's query search: exact top-k Steiner trees for
//!   small graphs (Dreyfus–Wagner + Lawler branching standing in for the
//!   paper's ILP) and the SPCSH shortest-path component heuristic with
//!   edge pruning for larger ones;
//! * [`mira`] — the MIRA online learner that "adjusts weights only on
//!   edges that differ between the graphs" to satisfy feedback-derived
//!   ranking constraints.

pub mod assoc;
pub mod mira;
pub mod source_graph;
pub mod steiner;

pub use assoc::{discover_associations, AssocOptions};
pub use mira::Mira;
pub use source_graph::{
    Edge, EdgeId, EdgeKind, GraphBase, Node, NodeId, NodeKind, SourceGraph,
    DEFAULT_EDGE_COST, MIN_EDGE_COST, SUGGESTION_COST_THRESHOLD,
};
pub use steiner::{
    spcsh, steiner_exact, steiner_exact_in, top_k_steiner, top_k_steiner_banned,
    top_k_steiner_banned_opts, top_k_steiner_opts, SteinerScratch,
    SteinerTree, MAX_EXACT_TERMINALS,
};
