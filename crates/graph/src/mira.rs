//! MIRA: learning edge costs from ranking feedback (§4.2).
//!
//! "CopyCat's transformation and integration learner takes the feedback
//! constraints and changes the weights on the source graph edges … it
//! uses a machine learning algorithm called MIRA. MIRA is designed for
//! settings in which cost is computed by summing the product of features
//! (in our case features are simply the nodes connected by an edge) with
//! their independent weights … It adjusts weights *only* on edges that
//! differ between the graphs, such that the queries' costs, when
//! recomputed, will satisfy the ordering constraints provided by
//! feedback."
//!
//! A constraint says: the accepted query's tree must cost at least
//! `margin` less than each rejected alternative. The margin-infused
//! relaxed update is the minimal weight change achieving that, applied to
//! the symmetric difference of the two trees' edge sets.

use crate::source_graph::{EdgeId, SourceGraph, MIN_EDGE_COST};

/// The MIRA online learner over source-graph edge costs.
#[derive(Debug, Clone)]
pub struct Mira {
    /// Aggressiveness cap `C` on each update's magnitude.
    pub c: f64,
    /// Required cost margin between preferred and rejected queries.
    pub margin: f64,
}

impl Default for Mira {
    fn default() -> Self {
        Self { c: 1.0, margin: 0.1 }
    }
}

impl Mira {
    /// A learner with an explicit aggressiveness cap.
    pub fn new(c: f64) -> Self {
        Self { c, ..Self::default() }
    }

    /// Apply one ranking constraint: `preferred` (its tree's edges) should
    /// cost at least `margin` less than `rejected`. Adjusts only edges in
    /// the symmetric difference. Returns the update magnitude τ (0 when
    /// the constraint already holds).
    pub fn apply(
        &self,
        g: &mut SourceGraph,
        preferred: &[EdgeId],
        rejected: &[EdgeId],
    ) -> f64 {
        // Symmetric difference with signs: +1 for edges only in the
        // preferred tree (should get cheaper), -1 for edges only in the
        // rejected tree (should get costlier).
        let mut diff: Vec<(EdgeId, f64)> = Vec::new();
        for &e in preferred {
            if !rejected.contains(&e) {
                diff.push((e, 1.0));
            }
        }
        for &e in rejected {
            if !preferred.contains(&e) {
                diff.push((e, -1.0));
            }
        }
        if diff.is_empty() {
            return 0.0;
        }
        let cost_pref = g.tree_cost(preferred);
        let cost_rej = g.tree_cost(rejected);
        // Hinge loss of the ordering constraint; float residue from prior
        // updates counts as satisfied.
        let loss = cost_pref - cost_rej + self.margin;
        if loss <= 1e-9 {
            return 0.0;
        }
        let norm2 = diff.len() as f64; // signed unit features
        let tau = (loss / norm2).min(self.c);
        for (e, sign) in diff {
            let new_cost = (g.cost(e) - tau * sign).max(MIN_EDGE_COST);
            g.set_cost(e, new_cost);
        }
        tau
    }

    /// Apply a batch of constraints: the accepted tree is preferred over
    /// every rejected alternative. Returns the number of constraints that
    /// required an update.
    pub fn rank_above(
        &self,
        g: &mut SourceGraph,
        accepted: &[EdgeId],
        rejected_alternatives: &[Vec<EdgeId>],
    ) -> usize {
        rejected_alternatives
            .iter()
            .filter(|rej| self.apply(g, accepted, rej) > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_graph::{EdgeKind, NodeId};
    use copycat_query::Schema;

    /// Diamond: two alternative paths between a and d.
    fn diamond() -> (SourceGraph, Vec<EdgeId>, Vec<EdgeId>, Vec<NodeId>) {
        let mut g = SourceGraph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| g.add_relation(*n, Schema::of(&["X"])))
            .collect();
        let j = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
        let e0 = g.add_edge_with_cost(ids[0], ids[1], j(), 1.0);
        let e1 = g.add_edge_with_cost(ids[1], ids[3], j(), 1.0);
        let e2 = g.add_edge_with_cost(ids[0], ids[2], j(), 1.0);
        let e3 = g.add_edge_with_cost(ids[2], ids[3], j(), 1.0);
        (g, vec![e0, e1], vec![e2, e3], ids)
    }

    #[test]
    fn update_flips_ranking() {
        let (mut g, via_b, via_c, _) = diamond();
        // Initially tied; the user prefers the path via c.
        let mira = Mira::default();
        let tau = mira.apply(&mut g, &via_c, &via_b);
        assert!(tau > 0.0);
        assert!(g.tree_cost(&via_c) + mira.margin <= g.tree_cost(&via_b) + 1e-9);
    }

    #[test]
    fn satisfied_constraint_is_noop() {
        let (mut g, via_b, via_c, _) = diamond();
        let mira = Mira::default();
        mira.apply(&mut g, &via_c, &via_b);
        let before: Vec<f64> = g.edge_ids().map(|e| g.cost(e)).collect();
        let tau = mira.apply(&mut g, &via_c, &via_b);
        assert_eq!(tau, 0.0);
        let after: Vec<f64> = g.edge_ids().map(|e| g.cost(e)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn only_differing_edges_change() {
        let (mut g, via_b, via_c, ids) = diamond();
        // Add a shared edge to both trees.
        let shared = g.add_edge_with_cost(
            ids[3],
            ids[0],
            EdgeKind::Join { pairs: vec![("X".into(), "X".into())] },
            1.0,
        );
        let pref: Vec<EdgeId> = via_c.iter().copied().chain([shared]).collect();
        let rej: Vec<EdgeId> = via_b.iter().copied().chain([shared]).collect();
        Mira::default().apply(&mut g, &pref, &rej);
        assert_eq!(g.cost(shared), 1.0, "shared edge untouched");
        assert!(g.cost(via_c[0]) < 1.0);
        assert!(g.cost(via_b[0]) > 1.0);
    }

    #[test]
    fn costs_never_drop_below_floor() {
        let (mut g, via_b, via_c, _) = diamond();
        let mira = Mira { c: 100.0, margin: 50.0 };
        mira.apply(&mut g, &via_c, &via_b);
        for e in g.edge_ids() {
            assert!(g.cost(e) >= MIN_EDGE_COST);
        }
    }

    #[test]
    fn one_feedback_item_suffices_on_the_diamond() {
        // The E2a claim in miniature: a single accepted suggestion flips
        // the Steiner search to the user's preferred query.
        let (mut g, via_b, via_c, ids) = diamond();
        // Adversarial start: the disliked path is slightly cheaper.
        g.set_cost(via_b[0], 0.9);
        let terminals = [ids[0], ids[3]];
        let before = crate::steiner::steiner_exact(&g, &terminals).unwrap();
        assert_eq!(before.edges, via_b);
        Mira::default().apply(&mut g, &via_c, &via_b);
        let after = crate::steiner::steiner_exact(&g, &terminals).unwrap();
        assert_eq!(after.edges, via_c);
    }

    #[test]
    fn rank_above_batches() {
        let (mut g, via_b, via_c, _) = diamond();
        let updated = Mira::default().rank_above(&mut g, &via_c, &[via_b.clone(), via_c.clone()]);
        // Identical trees yield an empty diff -> no update; the other
        // constraint updates.
        assert_eq!(updated, 1);
    }
}
