//! The source graph data structure.

use copycat_query::Schema;
use copycat_util::hash::FxHashMap;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Edge handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A materialized source relation (shadowed rectangle in Figure 4).
    Relation,
    /// A parameterized service (rounded rectangle in Figure 4).
    Service,
}

/// A node: a source or service with its visible schema. For services the
/// schema is inputs-then-outputs, with `input_arity` marking the split.
#[derive(Debug, Clone)]
pub struct Node {
    /// Catalog name.
    pub name: String,
    /// Relation or service.
    pub kind: NodeKind,
    /// Visible columns (for services: inputs ++ outputs).
    pub schema: Schema,
    /// For services, the number of leading input (bound) columns.
    pub input_arity: usize,
    /// Relative access cost (1.0 = nominal). Association discovery scales
    /// bind-edge costs by this, so slow/flaky services start demoted.
    pub cost_hint: f64,
}

/// How an edge connects two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// Equi-join on the conjunction of these column-name pairs (§4.1's
    /// default: "the conjunction of all possible join predicates").
    Join {
        /// `(a column, b column)` pairs.
        pairs: Vec<(String, String)>,
    },
    /// Dependent-join binding: columns of `a` feed the service `b`'s
    /// inputs in order.
    Bind {
        /// Column names of `a`, aligned with `b`'s inputs.
        bindings: Vec<String>,
    },
    /// Approximate record-link on these column pairs.
    Link {
        /// `(a column, b column)` pairs.
        pairs: Vec<(String, String)>,
    },
    /// A learned string transform: `program` maps `a`'s `from` column
    /// into `b`'s `to` column, so the two sides equi-join through the
    /// derived value (WebRelate-style join-with-transformation).
    Transform {
        /// Column of `a` the program reads.
        from: String,
        /// Column of `b` the derived value joins against.
        to: String,
        /// The learned program (renders human-readably for provenance).
        program: copycat_transform::Program,
    },
}

/// A weighted association edge. `weight` is a *cost*: lower is more
/// relevant. (The paper's query score is "the sum of its constituent edge
/// weights", minimized by the Steiner search.)
#[derive(Debug, Clone)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint (for `Bind`, the service).
    pub b: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Cost (lower = more relevant); adjusted by MIRA.
    pub weight: f64,
}

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for NodeId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NodeId(u32::from_json(j)?))
    }
}

impl ToJson for EdgeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for EdgeId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(EdgeId(u32::from_json(j)?))
    }
}

impl ToJson for NodeKind {
    fn to_json(&self) -> Json {
        match self {
            NodeKind::Relation => Json::str("Relation"),
            NodeKind::Service => Json::str("Service"),
        }
    }
}

impl FromJson for NodeKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("Relation") => Ok(NodeKind::Relation),
            Some("Service") => Ok(NodeKind::Service),
            _ => Err(JsonError::expected("node kind", j)),
        }
    }
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name".into(), self.name.to_json()),
            ("kind".into(), self.kind.to_json()),
            ("schema".into(), self.schema.to_json()),
            ("input_arity".into(), self.input_arity.to_json()),
            ("cost_hint".into(), self.cost_hint.to_json()),
        ])
    }
}

impl FromJson for Node {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Node {
            name: String::from_json(j.field("name")?)?,
            kind: NodeKind::from_json(j.field("kind")?)?,
            schema: Schema::from_json(j.field("schema")?)?,
            input_arity: usize::from_json(j.field("input_arity")?)?,
            cost_hint: f64::from_json(j.field("cost_hint")?)?,
        })
    }
}

impl ToJson for EdgeKind {
    fn to_json(&self) -> Json {
        match self {
            EdgeKind::Join { pairs } => Json::obj(vec![(
                "Join".into(),
                Json::obj(vec![("pairs".into(), pairs.to_json())]),
            )]),
            EdgeKind::Bind { bindings } => Json::obj(vec![(
                "Bind".into(),
                Json::obj(vec![("bindings".into(), bindings.to_json())]),
            )]),
            EdgeKind::Link { pairs } => Json::obj(vec![(
                "Link".into(),
                Json::obj(vec![("pairs".into(), pairs.to_json())]),
            )]),
            EdgeKind::Transform { from, to, program } => Json::obj(vec![(
                "Transform".into(),
                Json::obj(vec![
                    ("from".into(), from.to_json()),
                    ("to".into(), to.to_json()),
                    ("program".into(), program.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for EdgeKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(body) = j.get("Join") {
            return Ok(EdgeKind::Join { pairs: Vec::from_json(body.field("pairs")?)? });
        }
        if let Some(body) = j.get("Bind") {
            return Ok(EdgeKind::Bind { bindings: Vec::from_json(body.field("bindings")?)? });
        }
        if let Some(body) = j.get("Link") {
            return Ok(EdgeKind::Link { pairs: Vec::from_json(body.field("pairs")?)? });
        }
        if let Some(body) = j.get("Transform") {
            return Ok(EdgeKind::Transform {
                from: String::from_json(body.field("from")?)?,
                to: String::from_json(body.field("to")?)?,
                program: copycat_transform::Program::from_json(body.field("program")?)?,
            });
        }
        Err(JsonError::expected("edge kind", j))
    }
}

impl ToJson for Edge {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("a".into(), self.a.to_json()),
            ("b".into(), self.b.to_json()),
            ("kind".into(), self.kind.to_json()),
            ("weight".into(), self.weight.to_json()),
        ])
    }
}

impl FromJson for Edge {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Edge {
            a: NodeId::from_json(j.field("a")?)?,
            b: NodeId::from_json(j.field("b")?)?,
            kind: EdgeKind::from_json(j.field("kind")?)?,
            weight: f64::from_json(j.field("weight")?)?,
        })
    }
}

/// Default cost assigned to discovered associations. It sits below the
/// suggestion threshold, per §4.1: "a default value that exceeds the
/// threshold necessary for the edge to be suggested".
pub const DEFAULT_EDGE_COST: f64 = 1.0;

/// Associations with cost at or below this are offered as auto-complete
/// suggestions.
pub const SUGGESTION_COST_THRESHOLD: f64 = 2.0;

/// Minimum edge cost (MIRA updates never drive costs to zero or below).
pub const MIN_EDGE_COST: f64 = 0.01;

/// The frozen, immutable prefix of a [`SourceGraph`]: the world every
/// tenant session shares. Built once with [`SourceGraph::freeze`],
/// wrapped in an `Arc`, and layered under per-session overlay graphs
/// via [`SourceGraph::with_base`]. Node/edge ids in the base are the
/// low ids `0..nodes.len()` / `0..edges.len()`; overlay graphs append
/// their own nodes and edges after them.
#[derive(Debug)]
pub struct GraphBase {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_name: FxHashMap<String, NodeId>,
    adjacency: Vec<Vec<EdgeId>>,
    /// The version watermark overlay graphs start from.
    version: u64,
}

impl GraphBase {
    /// Number of base nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of base edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The version watermark overlay graphs start from.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// The source graph.
///
/// Two representations share one API: a *flat* graph owns every node
/// and edge (the default; also what [`from_parts`](Self::from_parts)
/// restores), while an *overlay* graph ([`with_base`](Self::with_base))
/// layers session-private deltas over a shared immutable
/// [`GraphBase`]. An overlay stores only what the session changed:
/// locally added nodes/edges (ids continue after the base), CoW
/// copies of base nodes/edges it mutated (MIRA cost updates, health
/// cost hints), and merged incident lists for base nodes that gained
/// local edges. Reads go through the same accessors either way, so
/// search, discovery, and session save/restore never distinguish the
/// two.
#[derive(Debug, Clone, Default)]
pub struct SourceGraph {
    /// The shared immutable prefix, if this is an overlay graph.
    base: Option<std::sync::Arc<GraphBase>>,
    /// Locally added nodes; global id = base node count + index.
    nodes: Vec<Node>,
    /// Locally added edges; global id = base edge count + index.
    edges: Vec<Edge>,
    /// Names of locally added nodes only (base names resolve via the
    /// base's own map).
    by_name: FxHashMap<String, NodeId>,
    /// Incident lists of locally added nodes (edge ids are global).
    adjacency: Vec<Vec<EdgeId>>,
    /// Copy-on-write clones of base nodes this session mutated
    /// (cost-hint updates), keyed by base node id.
    node_overrides: FxHashMap<u32, Node>,
    /// Copy-on-write clones of base edges this session mutated (MIRA
    /// cost updates), keyed by base edge id.
    edge_overrides: FxHashMap<u32, Edge>,
    /// Full merged incident lists for base nodes that gained local
    /// edges, keyed by base node id.
    adj_overrides: FxHashMap<u32, Vec<EdgeId>>,
    /// Monotonic structure/cost version; see [`SourceGraph::version`].
    version: u64,
}

impl SourceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a graph from saved nodes and edges (session restore). Node
    /// and edge ids are their positions in the vectors.
    ///
    /// The version starts at `nodes + edges` — exactly where it would
    /// stand had the graph been built incrementally — never at 0. A
    /// non-empty restored graph therefore cannot share a version stamp
    /// with the fresh graph a new engine starts from, so any
    /// [`version`](Self::version)-keyed cache that (incorrectly)
    /// survived a graph swap can never validate its stale entries
    /// against the restored graph.
    pub fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        let mut by_name = FxHashMap::default();
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            by_name.insert(n.name.clone(), NodeId(i as u32));
        }
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a.0 as usize].push(EdgeId(i as u32));
            adjacency[e.b.0 as usize].push(EdgeId(i as u32));
        }
        let version = (nodes.len() + edges.len()) as u64;
        Self { nodes, edges, by_name, adjacency, version, ..Self::default() }
    }

    /// Freeze the current (merged) contents into an immutable
    /// [`GraphBase`] that overlay graphs can share. The base's version
    /// watermark is `nodes + edges` — the same stamp
    /// [`from_parts`](Self::from_parts) would assign — so an overlay
    /// over the base and a flat restore of the same graph agree on
    /// where version counting stands.
    pub fn freeze(&self) -> GraphBase {
        let nodes: Vec<Node> = self.node_ids().map(|n| self.node(n).clone()).collect();
        let edges: Vec<Edge> = self.edge_ids().map(|e| self.edge(e).clone()).collect();
        let mut by_name = FxHashMap::default();
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            by_name.insert(n.name.clone(), NodeId(i as u32));
        }
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a.0 as usize].push(EdgeId(i as u32));
            adjacency[e.b.0 as usize].push(EdgeId(i as u32));
        }
        let version = (nodes.len() + edges.len()) as u64;
        GraphBase { nodes, edges, by_name, adjacency, version }
    }

    /// An overlay graph over a shared base: reads see the base until
    /// this session mutates, writes copy the touched base entry into
    /// session-private override maps. Costs kilobytes per session
    /// instead of a full graph copy.
    pub fn with_base(base: std::sync::Arc<GraphBase>) -> Self {
        let version = base.version;
        Self { base: Some(base), version, ..Self::default() }
    }

    /// Whether this graph is an overlay over a shared [`GraphBase`].
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// Base node count (0 for flat graphs).
    fn base_nodes(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.nodes.len())
    }

    /// Base edge count (0 for flat graphs).
    fn base_edges(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.edges.len())
    }

    /// Monotonic version stamp. Bumped whenever the search-relevant shape
    /// of the graph changes: node/edge insertion or an effective cost
    /// update (MIRA feedback). Query caches key on this to invalidate.
    /// Overlay graphs start at the base's watermark and count on from
    /// there.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Add a relation node.
    pub fn add_relation(&mut self, name: impl Into<String>, schema: Schema) -> NodeId {
        self.add_node(name.into(), NodeKind::Relation, schema, 0, 1.0)
    }

    /// Add a service node (schema = inputs ++ outputs) at nominal cost.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        input_arity: usize,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Service, schema, input_arity, 1.0)
    }

    /// Add a service node with an explicit access-cost hint.
    pub fn add_service_with_cost(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        input_arity: usize,
        cost_hint: f64,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Service, schema, input_arity, cost_hint.max(0.1))
    }

    fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        schema: Schema,
        input_arity: usize,
        cost_hint: f64,
    ) -> NodeId {
        debug_assert!(
            self.node_by_name(&name).is_none(),
            "duplicate node name {name}"
        );
        let id = NodeId((self.base_nodes() + self.nodes.len()) as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind, schema, input_arity, cost_hint });
        self.adjacency.push(Vec::new());
        self.version += 1;
        id
    }

    /// Add an association edge with the default cost.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) -> EdgeId {
        self.add_edge_with_cost(a, b, kind, DEFAULT_EDGE_COST)
    }

    /// Add an association edge with an explicit cost.
    pub fn add_edge_with_cost(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: EdgeKind,
        weight: f64,
    ) -> EdgeId {
        let id = EdgeId((self.base_edges() + self.edges.len()) as u32);
        self.edges.push(Edge { a, b, kind, weight });
        for end in [a, b] {
            let base_nodes = self.base_nodes();
            if (end.0 as usize) < base_nodes {
                // A base node gains a session-local edge: materialize
                // its merged incident list once, then append.
                let base = self.base.as_ref().map(std::sync::Arc::clone);
                self.adj_overrides
                    .entry(end.0)
                    .or_insert_with(|| {
                        base.map_or_else(Vec::new, |b| b.adjacency[end.0 as usize].clone())
                    })
                    .push(id);
            } else {
                self.adjacency[end.0 as usize - base_nodes].push(id);
            }
        }
        self.version += 1;
        id
    }

    /// Remove every edge with id ≥ `keep` (undo of edges added after a
    /// checkpoint — e.g. a learned transform edge the user backed out
    /// of). Only session-local edges can be removed; `keep` below the
    /// shared base's edge count is clamped to it. Adjacency lists and
    /// overlay merge lists are rewritten, and the version bumps once
    /// when anything was actually removed, so version-keyed caches and
    /// top-k rankings can never resurrect a truncated edge.
    pub fn truncate_edges(&mut self, keep: usize) -> usize {
        let base_edges = self.base_edges();
        let keep = keep.max(base_edges);
        let local_keep = keep - base_edges;
        if local_keep >= self.edges.len() {
            return 0;
        }
        let removed = self.edges.len() - local_keep;
        self.edges.truncate(local_keep);
        let cutoff = EdgeId(keep as u32);
        for adj in &mut self.adjacency {
            adj.retain(|&e| e < cutoff);
        }
        for merged in self.adj_overrides.values_mut() {
            merged.retain(|&e| e < cutoff);
        }
        self.version += 1;
        removed
    }

    /// Node lookup by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        if let Some(base) = &self.base {
            if let Some(&id) = base.by_name.get(name) {
                return Some(id);
            }
        }
        self.by_name.get(name).copied()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        let base_nodes = self.base_nodes();
        if (id.0 as usize) < base_nodes {
            if !self.node_overrides.is_empty() {
                if let Some(n) = self.node_overrides.get(&id.0) {
                    return n;
                }
            }
            // Overlay graphs always have a base when base_nodes > 0.
            &self.base.as_ref().map(|b| &b.nodes).unwrap_or(&self.nodes)[id.0 as usize]
        } else {
            &self.nodes[id.0 as usize - base_nodes]
        }
    }

    /// Borrow an edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        let base_edges = self.base_edges();
        if (id.0 as usize) < base_edges {
            if !self.edge_overrides.is_empty() {
                if let Some(e) = self.edge_overrides.get(&id.0) {
                    return e;
                }
            }
            &self.base.as_ref().map(|b| &b.edges).unwrap_or(&self.edges)[id.0 as usize]
        } else {
            &self.edges[id.0 as usize - base_edges]
        }
    }

    /// Set an edge's cost (used by MIRA), clamped to [`MIN_EDGE_COST`].
    /// Bumps the graph version only when the effective cost changes.
    /// For overlay graphs, a base edge's first effective update copies
    /// it into the session-private override map; the shared base is
    /// never written.
    pub fn set_cost(&mut self, id: EdgeId, cost: f64) {
        let clamped = cost.max(MIN_EDGE_COST);
        let base_edges = self.base_edges();
        if (id.0 as usize) < base_edges {
            if self.edge(id).weight != clamped {
                let mut copy = self.edge(id).clone();
                copy.weight = clamped;
                self.edge_overrides.insert(id.0, copy);
                self.version += 1;
            }
        } else if self.edges[id.0 as usize - base_edges].weight != clamped {
            self.edges[id.0 as usize - base_edges].weight = clamped;
            self.version += 1;
        }
    }

    /// Edge cost.
    pub fn cost(&self, id: EdgeId) -> f64 {
        self.edge(id).weight
    }

    /// Update a node's access-cost hint (clamped like
    /// [`SourceGraph::add_service_with_cost`]) and return the previous
    /// value. Observed service health feeds in here; callers re-price
    /// the incident edges themselves via [`SourceGraph::set_cost`]
    /// (which bumps the version only on an effective change). Base
    /// nodes copy-on-write like [`SourceGraph::set_cost`].
    pub fn set_cost_hint(&mut self, n: NodeId, hint: f64) -> f64 {
        let clamped = hint.max(0.1);
        let base_nodes = self.base_nodes();
        if (n.0 as usize) < base_nodes {
            let old = self.node(n).cost_hint;
            if old != clamped {
                let mut copy = self.node(n).clone();
                copy.cost_hint = clamped;
                self.node_overrides.insert(n.0, copy);
            }
            old
        } else {
            let local = &mut self.nodes[n.0 as usize - base_nodes];
            let old = local.cost_hint;
            local.cost_hint = clamped;
            old
        }
    }

    /// Number of nodes (base + local).
    pub fn node_count(&self) -> usize {
        self.base_nodes() + self.nodes.len()
    }

    /// Number of edges (base + local).
    pub fn edge_count(&self) -> usize {
        self.base_edges() + self.edges.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Edges incident to a node.
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        let base_nodes = self.base_nodes();
        if (n.0 as usize) < base_nodes {
            if !self.adj_overrides.is_empty() {
                if let Some(merged) = self.adj_overrides.get(&n.0) {
                    return merged;
                }
            }
            &self.base.as_ref().map(|b| &b.adjacency).unwrap_or(&self.adjacency)[n.0 as usize]
        } else {
            &self.adjacency[n.0 as usize - base_nodes]
        }
    }

    /// The endpoint of `e` that is not `n`.
    pub fn other_end(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = self.edge(e);
        if edge.a == n {
            edge.b
        } else {
            edge.a
        }
    }

    /// Associations from any of `from` to nodes outside `from`, with cost
    /// ≤ `max_cost` — the candidate *column completions* of §4.2, sorted
    /// by ascending cost (most relevant first).
    pub fn associations_from(&self, from: &[NodeId], max_cost: f64) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self
            .edge_ids()
            .filter(|&e| {
                let edge = self.edge(e);
                let a_in = from.contains(&edge.a);
                let b_in = from.contains(&edge.b);
                (a_in ^ b_in) && edge.weight <= max_cost
            })
            .collect();
        out.sort_by(|&x, &y| {
            self.cost(x)
                .partial_cmp(&self.cost(y))
                .expect("finite costs")
                .then_with(|| x.cmp(&y))
        });
        out
    }

    /// Total cost of a set of edges.
    pub fn tree_cost(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.cost(e)).sum()
    }
}

impl fmt::Display for SourceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SourceGraph ({} nodes, {} edges)", self.node_count(), self.edge_count())?;
        for e in self.edge_ids() {
            let edge = self.edge(e);
            writeln!(
                f,
                "  {} -- {} (c={:.2}, {:?})",
                self.node(edge.a).name,
                self.node(edge.b).name,
                edge.weight,
                match &edge.kind {
                    EdgeKind::Join { pairs } => format!("join {pairs:?}"),
                    EdgeKind::Bind { bindings } => format!("bind {bindings:?}"),
                    EdgeKind::Link { pairs } => format!("link {pairs:?}"),
                    EdgeKind::Transform { from, to, program } => {
                        format!("transform {from}→{to} via {program}")
                    }
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SourceGraph, NodeId, NodeId, NodeId) {
        let mut g = SourceGraph::new();
        let a = g.add_relation("shelters", Schema::of(&["Name", "Street", "City"]));
        let b = g.add_service("zip_resolver", Schema::of(&["street", "city", "Zip"]), 2);
        let c = g.add_relation("contacts", Schema::of(&["Venue", "Phone"]));
        g.add_edge(a, b, EdgeKind::Bind { bindings: vec!["Street".into(), "City".into()] });
        g.add_edge_with_cost(
            a,
            c,
            EdgeKind::Link { pairs: vec![("Name".into(), "Venue".into())] },
            1.5,
        );
        (g, a, b, c)
    }

    #[test]
    fn lookup_and_adjacency() {
        let (g, a, b, _) = tiny();
        assert_eq!(g.node_by_name("shelters"), Some(a));
        assert_eq!(g.incident(a).len(), 2);
        assert_eq!(g.other_end(g.incident(a)[0], a), b);
    }

    #[test]
    fn associations_sorted_by_cost() {
        let (g, a, b, c) = tiny();
        let assocs = g.associations_from(&[a], SUGGESTION_COST_THRESHOLD);
        assert_eq!(assocs.len(), 2);
        assert_eq!(g.other_end(assocs[0], a), b); // cost 1.0 before 1.5
        assert_eq!(g.other_end(assocs[1], a), c);
        // Edges inside the set are excluded.
        assert!(g.associations_from(&[a, b, c], 10.0).is_empty());
    }

    #[test]
    fn threshold_filters() {
        let (g, a, _, _) = tiny();
        assert_eq!(g.associations_from(&[a], 1.2).len(), 1);
    }

    #[test]
    fn set_cost_clamps() {
        let (mut g, _, _, _) = tiny();
        let e = EdgeId(0);
        g.set_cost(e, -5.0);
        assert_eq!(g.cost(e), MIN_EDGE_COST);
    }

    #[test]
    fn version_bumps_on_change_only() {
        let (mut g, _, _, _) = tiny();
        let v0 = g.version();
        // No-op cost update: version unchanged.
        let current = g.cost(EdgeId(0));
        g.set_cost(EdgeId(0), current);
        assert_eq!(g.version(), v0);
        // Effective update bumps.
        g.set_cost(EdgeId(0), current + 0.5);
        assert_eq!(g.version(), v0 + 1);
        // Insertions bump.
        let n = g.add_relation("extra", Schema::of(&["X"]));
        assert_eq!(g.version(), v0 + 2);
        g.add_edge(NodeId(0), n, EdgeKind::Join { pairs: vec![] });
        assert_eq!(g.version(), v0 + 3);
    }

    #[test]
    fn json_roundtrip() {
        let (g, _, _, _) = tiny();
        let nodes_json =
            g.node_ids().map(|n| g.node(n).clone()).collect::<Vec<_>>().to_json().to_string();
        let edges_json =
            g.edge_ids().map(|e| g.edge(e).clone()).collect::<Vec<_>>().to_json().to_string();
        let nodes: Vec<Node> = Vec::from_json(&Json::parse(&nodes_json).unwrap()).unwrap();
        let edges: Vec<Edge> = Vec::from_json(&Json::parse(&edges_json).unwrap()).unwrap();
        let back = SourceGraph::from_parts(nodes, edges);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for i in 0..g.edge_count() {
            let (a, b) = (g.edge(EdgeId(i as u32)), back.edge(EdgeId(i as u32)));
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.weight, b.weight);
        }
        assert_eq!(back.node_by_name("zip_resolver"), g.node_by_name("zip_resolver"));
    }

    #[test]
    fn overlay_reads_through_to_base() {
        let (flat, a, b, c) = tiny();
        let base = std::sync::Arc::new(flat.freeze());
        let g = SourceGraph::with_base(std::sync::Arc::clone(&base));
        assert!(g.has_base());
        assert_eq!(g.node_count(), flat.node_count());
        assert_eq!(g.edge_count(), flat.edge_count());
        assert_eq!(g.version(), flat.version());
        assert_eq!(g.node_by_name("shelters"), Some(a));
        assert_eq!(g.node(b).name, "zip_resolver");
        assert_eq!(g.incident(a).len(), 2);
        assert_eq!(g.other_end(g.incident(a)[0], a), b);
        assert_eq!(g.cost(EdgeId(1)), 1.5);
        let _ = c;
    }

    #[test]
    fn overlay_mutations_never_touch_the_base_or_siblings() {
        let (flat, a, _, _) = tiny();
        let base = std::sync::Arc::new(flat.freeze());
        let mut g1 = SourceGraph::with_base(std::sync::Arc::clone(&base));
        let g2 = SourceGraph::with_base(std::sync::Arc::clone(&base));

        // Session 1 re-prices a base edge and a base cost hint …
        g1.set_cost(EdgeId(0), 0.25);
        g1.set_cost_hint(a, 3.0);
        // … and adds a local relation with an edge to a base node.
        let extra = g1.add_relation("extra", Schema::of(&["Name"]));
        assert_eq!(extra.0 as usize, base.node_count());
        let e = g1.add_edge(a, extra, EdgeKind::Join { pairs: vec![("Name".into(), "Name".into())] });
        assert_eq!(e.0 as usize, base.edge_count());

        // Session 1 sees its own writes through the normal accessors.
        assert_eq!(g1.cost(EdgeId(0)), 0.25);
        assert_eq!(g1.node(a).cost_hint, 3.0);
        assert_eq!(g1.incident(a).len(), 3);
        assert!(g1.incident(a).contains(&e));
        assert_eq!(g1.node_by_name("extra"), Some(extra));
        assert_eq!(g1.incident(extra), &[e]);

        // The sibling session and the base itself are untouched.
        assert_eq!(g2.cost(EdgeId(0)), 1.0);
        assert_eq!(g2.node(a).cost_hint, 1.0);
        assert_eq!(g2.incident(a).len(), 2);
        assert_eq!(g2.node_by_name("extra"), None);
        assert_eq!(base.node_count() + 1, g1.node_count());
        assert_eq!(g2.node_count(), base.node_count());
    }

    #[test]
    fn overlay_version_counts_on_from_base_watermark() {
        let (flat, _, _, _) = tiny();
        let base = std::sync::Arc::new(flat.freeze());
        let mut g = SourceGraph::with_base(std::sync::Arc::clone(&base));
        let v0 = g.version();
        assert_eq!(v0, base.version());
        // No-op cost update on a base edge: no CoW copy, no bump.
        g.set_cost(EdgeId(0), g.cost(EdgeId(0)));
        assert_eq!(g.version(), v0);
        // Effective update bumps once.
        g.set_cost(EdgeId(0), 0.5);
        assert_eq!(g.version(), v0 + 1);
        g.add_relation("extra", Schema::of(&["X"]));
        assert_eq!(g.version(), v0 + 2);
    }

    #[test]
    fn overlay_save_view_matches_flat_graph() {
        // What session save serializes — nodes and edges in id order —
        // must be identical whether the session's graph is flat or an
        // overlay that made the same mutations.
        let make_mutations = |g: &mut SourceGraph| {
            g.set_cost(EdgeId(1), 0.7);
            let n = g.add_relation("pasted", Schema::of(&["Venue", "Zip"]));
            let a = g.node_by_name("shelters").unwrap();
            g.add_edge(a, n, EdgeKind::Join { pairs: vec![("Name".into(), "Venue".into())] });
        };
        let (mut flat, _, _, _) = tiny();
        let base = std::sync::Arc::new(flat.freeze());
        let mut overlay = SourceGraph::with_base(base);
        make_mutations(&mut flat);
        make_mutations(&mut overlay);
        let ser = |g: &SourceGraph| {
            let nodes: Vec<Node> = g.node_ids().map(|n| g.node(n).clone()).collect();
            let edges: Vec<Edge> = g.edge_ids().map(|e| g.edge(e).clone()).collect();
            format!("{}{}", nodes.to_json(), edges.to_json())
        };
        assert_eq!(ser(&flat), ser(&overlay));
        assert_eq!(flat.version(), overlay.version());
    }

    #[test]
    fn restored_graph_version_matches_incremental_construction() {
        let (g, _, _, _) = tiny();
        let nodes: Vec<Node> = g.node_ids().map(|n| g.node(n).clone()).collect();
        let edges: Vec<Edge> = g.edge_ids().map(|e| g.edge(e).clone()).collect();
        let back = SourceGraph::from_parts(nodes, edges);
        // A non-empty restored graph never reports the fresh-graph
        // version 0 — stale version-0-stamped cache entries from an
        // earlier engine can therefore never validate against it.
        assert_eq!(
            back.version(),
            (back.node_count() + back.edge_count()) as u64
        );
        assert!(back.version() > 0);
    }
}
