//! The source graph data structure.

use copycat_query::Schema;
use copycat_util::hash::FxHashMap;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Node handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Edge handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A materialized source relation (shadowed rectangle in Figure 4).
    Relation,
    /// A parameterized service (rounded rectangle in Figure 4).
    Service,
}

/// A node: a source or service with its visible schema. For services the
/// schema is inputs-then-outputs, with `input_arity` marking the split.
#[derive(Debug, Clone)]
pub struct Node {
    /// Catalog name.
    pub name: String,
    /// Relation or service.
    pub kind: NodeKind,
    /// Visible columns (for services: inputs ++ outputs).
    pub schema: Schema,
    /// For services, the number of leading input (bound) columns.
    pub input_arity: usize,
    /// Relative access cost (1.0 = nominal). Association discovery scales
    /// bind-edge costs by this, so slow/flaky services start demoted.
    pub cost_hint: f64,
}

/// How an edge connects two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// Equi-join on the conjunction of these column-name pairs (§4.1's
    /// default: "the conjunction of all possible join predicates").
    Join {
        /// `(a column, b column)` pairs.
        pairs: Vec<(String, String)>,
    },
    /// Dependent-join binding: columns of `a` feed the service `b`'s
    /// inputs in order.
    Bind {
        /// Column names of `a`, aligned with `b`'s inputs.
        bindings: Vec<String>,
    },
    /// Approximate record-link on these column pairs.
    Link {
        /// `(a column, b column)` pairs.
        pairs: Vec<(String, String)>,
    },
}

/// A weighted association edge. `weight` is a *cost*: lower is more
/// relevant. (The paper's query score is "the sum of its constituent edge
/// weights", minimized by the Steiner search.)
#[derive(Debug, Clone)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint (for `Bind`, the service).
    pub b: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Cost (lower = more relevant); adjusted by MIRA.
    pub weight: f64,
}

impl ToJson for NodeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for NodeId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NodeId(u32::from_json(j)?))
    }
}

impl ToJson for EdgeId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for EdgeId {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(EdgeId(u32::from_json(j)?))
    }
}

impl ToJson for NodeKind {
    fn to_json(&self) -> Json {
        match self {
            NodeKind::Relation => Json::str("Relation"),
            NodeKind::Service => Json::str("Service"),
        }
    }
}

impl FromJson for NodeKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("Relation") => Ok(NodeKind::Relation),
            Some("Service") => Ok(NodeKind::Service),
            _ => Err(JsonError::expected("node kind", j)),
        }
    }
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name".into(), self.name.to_json()),
            ("kind".into(), self.kind.to_json()),
            ("schema".into(), self.schema.to_json()),
            ("input_arity".into(), self.input_arity.to_json()),
            ("cost_hint".into(), self.cost_hint.to_json()),
        ])
    }
}

impl FromJson for Node {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Node {
            name: String::from_json(j.field("name")?)?,
            kind: NodeKind::from_json(j.field("kind")?)?,
            schema: Schema::from_json(j.field("schema")?)?,
            input_arity: usize::from_json(j.field("input_arity")?)?,
            cost_hint: f64::from_json(j.field("cost_hint")?)?,
        })
    }
}

impl ToJson for EdgeKind {
    fn to_json(&self) -> Json {
        match self {
            EdgeKind::Join { pairs } => Json::obj(vec![(
                "Join".into(),
                Json::obj(vec![("pairs".into(), pairs.to_json())]),
            )]),
            EdgeKind::Bind { bindings } => Json::obj(vec![(
                "Bind".into(),
                Json::obj(vec![("bindings".into(), bindings.to_json())]),
            )]),
            EdgeKind::Link { pairs } => Json::obj(vec![(
                "Link".into(),
                Json::obj(vec![("pairs".into(), pairs.to_json())]),
            )]),
        }
    }
}

impl FromJson for EdgeKind {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(body) = j.get("Join") {
            return Ok(EdgeKind::Join { pairs: Vec::from_json(body.field("pairs")?)? });
        }
        if let Some(body) = j.get("Bind") {
            return Ok(EdgeKind::Bind { bindings: Vec::from_json(body.field("bindings")?)? });
        }
        if let Some(body) = j.get("Link") {
            return Ok(EdgeKind::Link { pairs: Vec::from_json(body.field("pairs")?)? });
        }
        Err(JsonError::expected("edge kind", j))
    }
}

impl ToJson for Edge {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("a".into(), self.a.to_json()),
            ("b".into(), self.b.to_json()),
            ("kind".into(), self.kind.to_json()),
            ("weight".into(), self.weight.to_json()),
        ])
    }
}

impl FromJson for Edge {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Edge {
            a: NodeId::from_json(j.field("a")?)?,
            b: NodeId::from_json(j.field("b")?)?,
            kind: EdgeKind::from_json(j.field("kind")?)?,
            weight: f64::from_json(j.field("weight")?)?,
        })
    }
}

/// Default cost assigned to discovered associations. It sits below the
/// suggestion threshold, per §4.1: "a default value that exceeds the
/// threshold necessary for the edge to be suggested".
pub const DEFAULT_EDGE_COST: f64 = 1.0;

/// Associations with cost at or below this are offered as auto-complete
/// suggestions.
pub const SUGGESTION_COST_THRESHOLD: f64 = 2.0;

/// Minimum edge cost (MIRA updates never drive costs to zero or below).
pub const MIN_EDGE_COST: f64 = 0.01;

/// The source graph.
#[derive(Debug, Clone, Default)]
pub struct SourceGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_name: FxHashMap<String, NodeId>,
    adjacency: Vec<Vec<EdgeId>>,
    /// Monotonic structure/cost version; see [`SourceGraph::version`].
    version: u64,
}

impl SourceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a graph from saved nodes and edges (session restore). Node
    /// and edge ids are their positions in the vectors.
    ///
    /// The version starts at `nodes + edges` — exactly where it would
    /// stand had the graph been built incrementally — never at 0. A
    /// non-empty restored graph therefore cannot share a version stamp
    /// with the fresh graph a new engine starts from, so any
    /// [`version`](Self::version)-keyed cache that (incorrectly)
    /// survived a graph swap can never validate its stale entries
    /// against the restored graph.
    pub fn from_parts(nodes: Vec<Node>, edges: Vec<Edge>) -> Self {
        let mut by_name = FxHashMap::default();
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            by_name.insert(n.name.clone(), NodeId(i as u32));
        }
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a.0 as usize].push(EdgeId(i as u32));
            adjacency[e.b.0 as usize].push(EdgeId(i as u32));
        }
        let version = (nodes.len() + edges.len()) as u64;
        Self { nodes, edges, by_name, adjacency, version }
    }

    /// Monotonic version stamp. Bumped whenever the search-relevant shape
    /// of the graph changes: node/edge insertion or an effective cost
    /// update (MIRA feedback). Query caches key on this to invalidate.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Add a relation node.
    pub fn add_relation(&mut self, name: impl Into<String>, schema: Schema) -> NodeId {
        self.add_node(name.into(), NodeKind::Relation, schema, 0, 1.0)
    }

    /// Add a service node (schema = inputs ++ outputs) at nominal cost.
    pub fn add_service(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        input_arity: usize,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Service, schema, input_arity, 1.0)
    }

    /// Add a service node with an explicit access-cost hint.
    pub fn add_service_with_cost(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        input_arity: usize,
        cost_hint: f64,
    ) -> NodeId {
        self.add_node(name.into(), NodeKind::Service, schema, input_arity, cost_hint.max(0.1))
    }

    fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        schema: Schema,
        input_arity: usize,
        cost_hint: f64,
    ) -> NodeId {
        debug_assert!(
            !self.by_name.contains_key(&name),
            "duplicate node name {name}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind, schema, input_arity, cost_hint });
        self.adjacency.push(Vec::new());
        self.version += 1;
        id
    }

    /// Add an association edge with the default cost.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, kind: EdgeKind) -> EdgeId {
        self.add_edge_with_cost(a, b, kind, DEFAULT_EDGE_COST)
    }

    /// Add an association edge with an explicit cost.
    pub fn add_edge_with_cost(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: EdgeKind,
        weight: f64,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { a, b, kind, weight });
        self.adjacency[a.0 as usize].push(id);
        self.adjacency[b.0 as usize].push(id);
        self.version += 1;
        id
    }

    /// Node lookup by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Borrow an edge.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// Set an edge's cost (used by MIRA), clamped to [`MIN_EDGE_COST`].
    /// Bumps the graph version only when the effective cost changes.
    pub fn set_cost(&mut self, id: EdgeId, cost: f64) {
        let clamped = cost.max(MIN_EDGE_COST);
        if self.edges[id.0 as usize].weight != clamped {
            self.edges[id.0 as usize].weight = clamped;
            self.version += 1;
        }
    }

    /// Edge cost.
    pub fn cost(&self, id: EdgeId) -> f64 {
        self.edges[id.0 as usize].weight
    }

    /// Update a node's access-cost hint (clamped like
    /// [`SourceGraph::add_service_with_cost`]) and return the previous
    /// value. Observed service health feeds in here; callers re-price
    /// the incident edges themselves via [`SourceGraph::set_cost`]
    /// (which bumps the version only on an effective change).
    pub fn set_cost_hint(&mut self, n: NodeId, hint: f64) -> f64 {
        let clamped = hint.max(0.1);
        let old = self.nodes[n.0 as usize].cost_hint;
        self.nodes[n.0 as usize].cost_hint = clamped;
        old
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Edges incident to a node.
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n.0 as usize]
    }

    /// The endpoint of `e` that is not `n`.
    pub fn other_end(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = self.edge(e);
        if edge.a == n {
            edge.b
        } else {
            edge.a
        }
    }

    /// Associations from any of `from` to nodes outside `from`, with cost
    /// ≤ `max_cost` — the candidate *column completions* of §4.2, sorted
    /// by ascending cost (most relevant first).
    pub fn associations_from(&self, from: &[NodeId], max_cost: f64) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self
            .edge_ids()
            .filter(|&e| {
                let edge = self.edge(e);
                let a_in = from.contains(&edge.a);
                let b_in = from.contains(&edge.b);
                (a_in ^ b_in) && edge.weight <= max_cost
            })
            .collect();
        out.sort_by(|&x, &y| {
            self.cost(x)
                .partial_cmp(&self.cost(y))
                .expect("finite costs")
                .then_with(|| x.cmp(&y))
        });
        out
    }

    /// Total cost of a set of edges.
    pub fn tree_cost(&self, edges: &[EdgeId]) -> f64 {
        edges.iter().map(|&e| self.cost(e)).sum()
    }
}

impl fmt::Display for SourceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SourceGraph ({} nodes, {} edges)", self.nodes.len(), self.edges.len())?;
        for e in self.edge_ids() {
            let edge = self.edge(e);
            writeln!(
                f,
                "  {} -- {} (c={:.2}, {:?})",
                self.node(edge.a).name,
                self.node(edge.b).name,
                edge.weight,
                match &edge.kind {
                    EdgeKind::Join { pairs } => format!("join {pairs:?}"),
                    EdgeKind::Bind { bindings } => format!("bind {bindings:?}"),
                    EdgeKind::Link { pairs } => format!("link {pairs:?}"),
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SourceGraph, NodeId, NodeId, NodeId) {
        let mut g = SourceGraph::new();
        let a = g.add_relation("shelters", Schema::of(&["Name", "Street", "City"]));
        let b = g.add_service("zip_resolver", Schema::of(&["street", "city", "Zip"]), 2);
        let c = g.add_relation("contacts", Schema::of(&["Venue", "Phone"]));
        g.add_edge(a, b, EdgeKind::Bind { bindings: vec!["Street".into(), "City".into()] });
        g.add_edge_with_cost(
            a,
            c,
            EdgeKind::Link { pairs: vec![("Name".into(), "Venue".into())] },
            1.5,
        );
        (g, a, b, c)
    }

    #[test]
    fn lookup_and_adjacency() {
        let (g, a, b, _) = tiny();
        assert_eq!(g.node_by_name("shelters"), Some(a));
        assert_eq!(g.incident(a).len(), 2);
        assert_eq!(g.other_end(g.incident(a)[0], a), b);
    }

    #[test]
    fn associations_sorted_by_cost() {
        let (g, a, b, c) = tiny();
        let assocs = g.associations_from(&[a], SUGGESTION_COST_THRESHOLD);
        assert_eq!(assocs.len(), 2);
        assert_eq!(g.other_end(assocs[0], a), b); // cost 1.0 before 1.5
        assert_eq!(g.other_end(assocs[1], a), c);
        // Edges inside the set are excluded.
        assert!(g.associations_from(&[a, b, c], 10.0).is_empty());
    }

    #[test]
    fn threshold_filters() {
        let (g, a, _, _) = tiny();
        assert_eq!(g.associations_from(&[a], 1.2).len(), 1);
    }

    #[test]
    fn set_cost_clamps() {
        let (mut g, _, _, _) = tiny();
        let e = EdgeId(0);
        g.set_cost(e, -5.0);
        assert_eq!(g.cost(e), MIN_EDGE_COST);
    }

    #[test]
    fn version_bumps_on_change_only() {
        let (mut g, _, _, _) = tiny();
        let v0 = g.version();
        // No-op cost update: version unchanged.
        let current = g.cost(EdgeId(0));
        g.set_cost(EdgeId(0), current);
        assert_eq!(g.version(), v0);
        // Effective update bumps.
        g.set_cost(EdgeId(0), current + 0.5);
        assert_eq!(g.version(), v0 + 1);
        // Insertions bump.
        let n = g.add_relation("extra", Schema::of(&["X"]));
        assert_eq!(g.version(), v0 + 2);
        g.add_edge(NodeId(0), n, EdgeKind::Join { pairs: vec![] });
        assert_eq!(g.version(), v0 + 3);
    }

    #[test]
    fn json_roundtrip() {
        let (g, _, _, _) = tiny();
        let nodes_json =
            g.node_ids().map(|n| g.node(n).clone()).collect::<Vec<_>>().to_json().to_string();
        let edges_json =
            g.edge_ids().map(|e| g.edge(e).clone()).collect::<Vec<_>>().to_json().to_string();
        let nodes: Vec<Node> = Vec::from_json(&Json::parse(&nodes_json).unwrap()).unwrap();
        let edges: Vec<Edge> = Vec::from_json(&Json::parse(&edges_json).unwrap()).unwrap();
        let back = SourceGraph::from_parts(nodes, edges);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for i in 0..g.edge_count() {
            let (a, b) = (g.edge(EdgeId(i as u32)), back.edge(EdgeId(i as u32)));
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.weight, b.weight);
        }
        assert_eq!(back.node_by_name("zip_resolver"), g.node_by_name("zip_resolver"));
    }

    #[test]
    fn restored_graph_version_matches_incremental_construction() {
        let (g, _, _, _) = tiny();
        let nodes: Vec<Node> = g.node_ids().map(|n| g.node(n).clone()).collect();
        let edges: Vec<Edge> = g.edge_ids().map(|e| g.edge(e).clone()).collect();
        let back = SourceGraph::from_parts(nodes, edges);
        // A non-empty restored graph never reports the fresh-graph
        // version 0 — stale version-0-stamped cache entries from an
        // earlier engine can therefore never validate against it.
        assert_eq!(
            back.version(),
            (back.node_count() + back.edge_count()) as u64
        );
        assert!(back.version() > 0);
    }
}
