//! Feedback-driven wrapper refinement.
//!
//! §2.1: row suggestions can be kept or removed, and "this feedback gets
//! sent to the source learners, which will refine the extraction pattern,
//! e.g., to include or exclude certain HTML tags, data values or document
//! delimiters in its matches."
//!
//! Given rows the user rejected (and, implicitly, the rows they kept),
//! [`refine`] searches for a record *filter* that excludes every rejected
//! record while keeping every kept one, and returns the wrapper with that
//! filter appended. Candidate filters, tried in order of specificity:
//! attribute exclusion (`class="ad"`), child-count shape, and a non-empty
//! field requirement.

use crate::wrapper::{extract_field, FieldRule, PageScope, RecordFilter, Wrapper};
use copycat_document::html::{HtmlDocument, NodeId, TagPath};
use copycat_document::{Document, Page, Website};
use copycat_util::hash::FxHashSet;

/// Refine a wrapper given rejected rows. Rows not listed in `rejected`
/// are treated as kept. Returns the refined wrapper; when no candidate
/// filter separates the two sets, the wrapper is returned unchanged.
pub fn refine(wrapper: &Wrapper, doc: &Document, rejected: &[Vec<String>]) -> Wrapper {
    let (Wrapper::Html { record_path, fields, filters, scope }, Document::Site(site)) =
        (wrapper, doc)
    else {
        return wrapper.clone();
    };
    if rejected.is_empty() {
        return wrapper.clone();
    }
    let records = collect_records(record_path, fields, filters, scope, site);
    let rejected_set: FxHashSet<&[String]> =
        rejected.iter().map(|r| r.as_slice()).collect();
    let mut bad: Vec<(&HtmlDocument, NodeId, &Vec<String>)> = Vec::new();
    let mut kept: Vec<(&HtmlDocument, NodeId, &Vec<String>)> = Vec::new();
    for (html, node, row) in &records {
        if rejected_set.contains(row.as_slice()) {
            bad.push((html, *node, row));
        } else {
            kept.push((html, *node, row));
        }
    }
    if bad.is_empty() || kept.is_empty() {
        return wrapper.clone();
    }

    for cand in candidate_filters(&bad, &kept, fields.len()) {
        let excludes_all_bad = bad.iter().all(|(h, n, row)| !passes(h, *n, row, &cand));
        let keeps_all_good = kept.iter().all(|(h, n, row)| passes(h, *n, row, &cand));
        if excludes_all_bad && keeps_all_good {
            let mut filters = filters.clone();
            filters.push(cand);
            return Wrapper::Html {
                record_path: record_path.clone(),
                fields: fields.clone(),
                filters,
                scope: scope.clone(),
            };
        }
    }
    wrapper.clone()
}

type Rec<'a> = (&'a HtmlDocument, NodeId, &'a Vec<String>);

/// Enumerate candidate filters from the observed differences between the
/// rejected and kept records.
fn candidate_filters(bad: &[Rec<'_>], kept: &[Rec<'_>], arity: usize) -> Vec<RecordFilter> {
    let mut out = Vec::new();
    // 1. Attribute values present on some rejected record but no kept one.
    let kept_attrs: FxHashSet<(String, String)> = kept
        .iter()
        .flat_map(|(h, n, _)| attrs_of(h, *n))
        .collect();
    let mut seen = FxHashSet::default();
    for (h, n, _) in bad {
        for (name, value) in attrs_of(h, *n) {
            if !kept_attrs.contains(&(name.clone(), value.clone()))
                && seen.insert((name.clone(), value.clone()))
            {
                out.push(RecordFilter::AttrNotEquals { attr: name, value });
            }
        }
    }
    // 2. Child-count shape: every kept record shares (tag, count).
    if let Some((tag, count)) = common_child_shape(kept) {
        out.push(RecordFilter::ChildCount { tag, count });
    }
    // 3. Require all fields non-empty.
    out.push(RecordFilter::MinNonEmptyFields(arity));
    out
}

fn attrs_of(html: &HtmlDocument, node: NodeId) -> Vec<(String, String)> {
    match &html.node(node).kind {
        copycat_document::NodeKind::Element { attrs, .. } => attrs.clone(),
        _ => Vec::new(),
    }
}

/// The (tag, count) of element children when identical across all kept
/// records, using the most frequent child tag of the first record.
fn common_child_shape(kept: &[Rec<'_>]) -> Option<(String, usize)> {
    let (h0, n0, _) = kept.first()?;
    let mut counts: copycat_util::hash::FxHashMap<&str, usize> = copycat_util::hash::FxHashMap::default();
    for &c in &h0.node(*n0).children {
        if let Some(t) = h0.tag(c) {
            *counts.entry(t).or_default() += 1;
        }
    }
    let (tag, count) = counts.into_iter().max_by_key(|&(_, c)| c)?;
    let tag = tag.to_string();
    for (h, n, _) in kept {
        let c = h
            .node(*n)
            .children
            .iter()
            .filter(|&&ch| h.tag(ch) == Some(tag.as_str()))
            .count();
        if c != count {
            return None;
        }
    }
    Some((tag, count))
}

fn passes(html: &HtmlDocument, record: NodeId, row: &[String], f: &RecordFilter) -> bool {
    match f {
        RecordFilter::AttrNotEquals { attr, value } => {
            html.attr(record, attr) != Some(value.as_str())
        }
        RecordFilter::MinNonEmptyFields(k) => {
            row.iter().filter(|v| !v.is_empty()).count() >= *k
        }
        RecordFilter::ChildCount { tag, count } => {
            html.node(record)
                .children
                .iter()
                .filter(|&&c| html.tag(c) == Some(tag.as_str()))
                .count()
                == *count
        }
        RecordFilter::FieldEquals { field, value } => {
            row.get(*field).map(String::as_str) == Some(value.as_str())
        }
    }
}

/// All records the wrapper currently extracts, with their nodes and rows.
fn collect_records<'a>(
    record_path: &TagPath,
    fields: &[FieldRule],
    filters: &[RecordFilter],
    scope: &PageScope,
    site: &'a Website,
) -> Vec<(&'a HtmlDocument, NodeId, Vec<String>)> {
    let pages: Vec<&Page> = match scope {
        PageScope::SinglePage(url) => site.get(url).into_iter().collect(),
        PageScope::AllPages => site.crawl(),
    };
    let mut out = Vec::new();
    for page in pages {
        for record in page.html.find_by_path(record_path) {
            let row: Vec<String> = fields
                .iter()
                .map(|f| extract_field(&page.html, record, f))
                .collect();
            if filters.iter().all(|f| passes(&page.html, record, &row, f)) {
                out.push((&page.html, record, row));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::execute;
    use copycat_document::Url;

    fn ad_site() -> Website {
        let mut site = Website::new();
        site.add_html(
            "/",
            "<table>\
             <tr><td>Creek HS</td><td>Margate</td></tr>\
             <tr class=\"ad\"><td colspan=\"2\">Buy storm shutters!</td></tr>\
             <tr><td>Rec Ctr</td><td>Tamarac</td></tr>\
             </table>",
        );
        site
    }

    fn base_wrapper() -> Wrapper {
        Wrapper::Html {
            record_path: TagPath::parse("table[0]/tr[*]").unwrap(),
            fields: vec![
                FieldRule::Relative(TagPath::parse("td[0]").unwrap()),
                FieldRule::Relative(TagPath::parse("td[1]").unwrap()),
            ],
            filters: vec![],
            scope: PageScope::SinglePage(Url::new("/")),
        }
    }

    #[test]
    fn rejecting_ad_row_learns_attribute_filter() {
        let doc = Document::Site(ad_site());
        let w = base_wrapper();
        let rows = execute(&w, &doc);
        assert_eq!(rows.len(), 3);
        let rejected = vec![vec!["Buy storm shutters!".to_string(), String::new()]];
        let refined = refine(&w, &doc, &rejected);
        let rows2 = execute(&refined, &doc);
        assert_eq!(rows2.len(), 2);
        assert!(rows2.iter().all(|r| r[1] == "Margate" || r[1] == "Tamarac"));
        if let Wrapper::Html { filters, .. } = &refined {
            assert_eq!(filters.len(), 1);
        }
    }

    #[test]
    fn no_rejections_is_identity() {
        let doc = Document::Site(ad_site());
        let w = base_wrapper();
        assert_eq!(refine(&w, &doc, &[]), w);
    }

    #[test]
    fn rejecting_everything_cannot_separate() {
        let doc = Document::Site(ad_site());
        let w = base_wrapper();
        let all = execute(&w, &doc);
        let refined = refine(&w, &doc, &all);
        assert_eq!(refined, w, "nothing kept -> unchanged");
    }

    #[test]
    fn shape_filter_when_no_attribute_differs() {
        // The junk row has no distinguishing attribute, but a different
        // td count.
        let mut site = Website::new();
        site.add_html(
            "/",
            "<table>\
             <tr><td>A</td><td>1</td></tr>\
             <tr><td>junk spanning</td></tr>\
             <tr><td>B</td><td>2</td></tr>\
             </table>",
        );
        let doc = Document::Site(site);
        let w = base_wrapper();
        let rejected = vec![vec!["junk spanning".to_string(), String::new()]];
        let refined = refine(&w, &doc, &rejected);
        let rows = execute(&refined, &doc);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn non_html_wrappers_pass_through() {
        let w = Wrapper::Sheet { columns: vec![0], skip_rows: 0 };
        let doc = Document::Site(ad_site());
        assert_eq!(refine(&w, &doc, &[vec!["x".to_string()]]), w);
    }
}
