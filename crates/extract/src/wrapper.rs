//! Executable extraction rules ("wrappers").
//!
//! A wrapper is plain data describing how to turn a source document into a
//! table of string rows. The learner produces them; the SCP engine stores
//! them in its catalog and re-runs them whenever the source is queried.

use copycat_document::html::{HtmlDocument, NodeId, StepIndex, TagPath, TagStep};
use copycat_document::{Document, Page, Sheet, Website};
use copycat_util::json::{FromJson, Json, JsonError, ToJson};

/// How one output field is obtained from a record node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldRule {
    /// Follow a tag path *relative to the record node* and take the target
    /// element's text content. The empty path takes the record's own text.
    Relative(TagPath),
    /// Take the text of the nearest element with this tag that *precedes*
    /// the record in document order — group headings (`<h2>City</h2>`)
    /// carrying a field shared by every record in the group.
    PrecedingHeading(String),
}

impl ToJson for FieldRule {
    fn to_json(&self) -> Json {
        match self {
            FieldRule::Relative(p) => Json::obj(vec![("Relative".into(), p.to_json())]),
            FieldRule::PrecedingHeading(t) => {
                Json::obj(vec![("PrecedingHeading".into(), t.to_json())])
            }
        }
    }
}

impl FromJson for FieldRule {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(p) = j.get("Relative") {
            return Ok(FieldRule::Relative(TagPath::from_json(p)?));
        }
        if let Some(t) = j.get("PrecedingHeading") {
            return Ok(FieldRule::PrecedingHeading(String::from_json(t)?));
        }
        Err(JsonError::expected("field rule", j))
    }
}

/// A predicate a record node must satisfy; learned from feedback
/// (e.g. rejecting advertisement rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordFilter {
    /// Reject records whose attribute equals this value
    /// (e.g. `class="ad"`).
    AttrNotEquals {
        /// Attribute name.
        attr: String,
        /// Forbidden value.
        value: String,
    },
    /// Require at least this many of the wrapper's fields to be non-empty.
    MinNonEmptyFields(usize),
    /// Require the record element to have exactly this many children with
    /// the given tag (ad rows often have one wide cell instead of `k`).
    ChildCount {
        /// Child tag to count.
        tag: String,
        /// Required count.
        count: usize,
    },
    /// Require an extracted field to equal a constant — the Figure-1
    /// ambiguity ("copy just the shelters in Coconut Creek") as an
    /// explicit alternative hypothesis.
    FieldEquals {
        /// Output column index.
        field: usize,
        /// Required value.
        value: String,
    },
}

impl ToJson for RecordFilter {
    fn to_json(&self) -> Json {
        match self {
            RecordFilter::AttrNotEquals { attr, value } => Json::obj(vec![(
                "AttrNotEquals".into(),
                Json::obj(vec![
                    ("attr".into(), attr.to_json()),
                    ("value".into(), value.to_json()),
                ]),
            )]),
            RecordFilter::MinNonEmptyFields(k) => {
                Json::obj(vec![("MinNonEmptyFields".into(), k.to_json())])
            }
            RecordFilter::ChildCount { tag, count } => Json::obj(vec![(
                "ChildCount".into(),
                Json::obj(vec![
                    ("tag".into(), tag.to_json()),
                    ("count".into(), count.to_json()),
                ]),
            )]),
            RecordFilter::FieldEquals { field, value } => Json::obj(vec![(
                "FieldEquals".into(),
                Json::obj(vec![
                    ("field".into(), field.to_json()),
                    ("value".into(), value.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for RecordFilter {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(body) = j.get("AttrNotEquals") {
            return Ok(RecordFilter::AttrNotEquals {
                attr: String::from_json(body.field("attr")?)?,
                value: String::from_json(body.field("value")?)?,
            });
        }
        if let Some(k) = j.get("MinNonEmptyFields") {
            return Ok(RecordFilter::MinNonEmptyFields(usize::from_json(k)?));
        }
        if let Some(body) = j.get("ChildCount") {
            return Ok(RecordFilter::ChildCount {
                tag: String::from_json(body.field("tag")?)?,
                count: usize::from_json(body.field("count")?)?,
            });
        }
        if let Some(body) = j.get("FieldEquals") {
            return Ok(RecordFilter::FieldEquals {
                field: usize::from_json(body.field("field")?)?,
                value: String::from_json(body.field("value")?)?,
            });
        }
        Err(JsonError::expected("record filter", j))
    }
}

/// Which pages of a site a wrapper extracts from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageScope {
    /// Only the page the examples came from.
    SinglePage(copycat_document::Url),
    /// Every page reachable by crawling from the entry page.
    AllPages,
}

impl ToJson for PageScope {
    fn to_json(&self) -> Json {
        match self {
            PageScope::SinglePage(u) => Json::obj(vec![("SinglePage".into(), u.to_json())]),
            PageScope::AllPages => Json::str("AllPages"),
        }
    }
}

impl FromJson for PageScope {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if j.as_str() == Some("AllPages") {
            return Ok(PageScope::AllPages);
        }
        if let Some(u) = j.get("SinglePage") {
            return Ok(PageScope::SinglePage(copycat_document::Url::from_json(u)?));
        }
        Err(JsonError::expected("page scope", j))
    }
}

/// An executable extraction rule over one kind of source document.
#[derive(Debug, Clone, PartialEq)]
pub enum Wrapper {
    /// Extraction from a (possibly multi-page) Web site.
    Html {
        /// Generalized (wildcarded) path addressing record nodes.
        record_path: TagPath,
        /// One rule per output column.
        fields: Vec<FieldRule>,
        /// Conjunctive record predicates.
        filters: Vec<RecordFilter>,
        /// Page scope.
        scope: PageScope,
    },
    /// Column projection from a spreadsheet.
    Sheet {
        /// Source column index per output column.
        columns: Vec<usize>,
        /// Number of leading data rows to skip (sheets whose header row
        /// was not modeled as a header).
        skip_rows: usize,
    },
    /// Landmark-rule extraction from plain text (one record per line).
    Text {
        /// Per-field landmark rules.
        rules: Vec<crate::stalker::LandmarkRule>,
    },
}

impl ToJson for Wrapper {
    fn to_json(&self) -> Json {
        match self {
            Wrapper::Html { record_path, fields, filters, scope } => Json::obj(vec![(
                "Html".into(),
                Json::obj(vec![
                    ("record_path".into(), record_path.to_json()),
                    ("fields".into(), fields.to_json()),
                    ("filters".into(), filters.to_json()),
                    ("scope".into(), scope.to_json()),
                ]),
            )]),
            Wrapper::Sheet { columns, skip_rows } => Json::obj(vec![(
                "Sheet".into(),
                Json::obj(vec![
                    ("columns".into(), columns.to_json()),
                    ("skip_rows".into(), skip_rows.to_json()),
                ]),
            )]),
            Wrapper::Text { rules } => Json::obj(vec![(
                "Text".into(),
                Json::obj(vec![("rules".into(), rules.to_json())]),
            )]),
        }
    }
}

impl FromJson for Wrapper {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(body) = j.get("Html") {
            return Ok(Wrapper::Html {
                record_path: TagPath::from_json(body.field("record_path")?)?,
                fields: Vec::from_json(body.field("fields")?)?,
                filters: Vec::from_json(body.field("filters")?)?,
                scope: PageScope::from_json(body.field("scope")?)?,
            });
        }
        if let Some(body) = j.get("Sheet") {
            return Ok(Wrapper::Sheet {
                columns: Vec::from_json(body.field("columns")?)?,
                skip_rows: usize::from_json(body.field("skip_rows")?)?,
            });
        }
        if let Some(body) = j.get("Text") {
            return Ok(Wrapper::Text { rules: Vec::from_json(body.field("rules")?)? });
        }
        Err(JsonError::expected("wrapper", j))
    }
}

impl Wrapper {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        match self {
            Wrapper::Html { fields, .. } => fields.len(),
            Wrapper::Sheet { columns, .. } => columns.len(),
            Wrapper::Text { rules } => rules.len(),
        }
    }

    /// A short human-readable description (shown in explanations).
    pub fn describe(&self) -> String {
        match self {
            Wrapper::Html { record_path, fields, filters, scope } => format!(
                "html records at {} with {} field(s), {} filter(s), {}",
                record_path,
                fields.len(),
                filters.len(),
                match scope {
                    PageScope::SinglePage(u) => format!("page {u}"),
                    PageScope::AllPages => "all pages".to_string(),
                }
            ),
            Wrapper::Sheet { columns, skip_rows } => {
                format!("sheet columns {columns:?} (skip {skip_rows})")
            }
            Wrapper::Text { rules } => format!("text landmarks x{}", rules.len()),
        }
    }
}

/// Execute a wrapper against a document, producing string rows in source
/// order. A wrapper applied to the wrong document kind yields no rows.
pub fn execute(wrapper: &Wrapper, doc: &Document) -> Vec<Vec<String>> {
    match (wrapper, doc) {
        (Wrapper::Html { record_path, fields, filters, scope }, Document::Site(site)) => {
            execute_html(record_path, fields, filters, scope, site)
        }
        (Wrapper::Sheet { columns, skip_rows }, Document::Sheet(sheet)) => {
            execute_sheet(columns, *skip_rows, sheet)
        }
        (Wrapper::Text { rules }, Document::Text(text)) => crate::stalker::execute(rules, text),
        _ => Vec::new(),
    }
}

fn execute_html(
    record_path: &TagPath,
    fields: &[FieldRule],
    filters: &[RecordFilter],
    scope: &PageScope,
    site: &Website,
) -> Vec<Vec<String>> {
    let pages: Vec<&Page> = match scope {
        PageScope::SinglePage(url) => site.get(url).into_iter().collect(),
        PageScope::AllPages => site.crawl(),
    };
    let mut rows = Vec::new();
    for page in pages {
        for record in page.html.find_by_path(record_path) {
            let row: Vec<String> = fields
                .iter()
                .map(|f| extract_field(&page.html, record, f))
                .collect();
            if passes_filters(&page.html, record, &row, filters) {
                rows.push(row);
            }
        }
    }
    rows
}

/// Resolve a field rule at a record node.
pub(crate) fn extract_field(html: &HtmlDocument, record: NodeId, rule: &FieldRule) -> String {
    match rule {
        FieldRule::Relative(path) => resolve_relative(html, record, path)
            .map(|n| html.text_content(n))
            .unwrap_or_default(),
        FieldRule::PrecedingHeading(tag) => {
            // Nearest preceding element with the tag, by arena order (the
            // arena is built in document order).
            let mut best = None;
            for id in html.iter() {
                if id >= record {
                    break;
                }
                if html.tag(id) == Some(tag.as_str()) {
                    best = Some(id);
                }
            }
            best.map(|n| html.text_content(n)).unwrap_or_default()
        }
    }
}

/// Follow a (possibly wildcarded) relative path from `from`; the first
/// match in document order wins.
pub(crate) fn resolve_relative(
    html: &HtmlDocument,
    from: NodeId,
    path: &TagPath,
) -> Option<NodeId> {
    let mut frontier = vec![from];
    for step in path.steps() {
        let mut next = Vec::new();
        for node in frontier {
            let mut same_tag_seen = 0usize;
            for &child in &html.node(node).children {
                let child_tag = match &html.node(child).kind {
                    copycat_document::NodeKind::Element { tag, .. } => tag.as_str(),
                    copycat_document::NodeKind::Text(_) => "#text",
                    copycat_document::NodeKind::Comment(_) => "#comment",
                };
                if child_tag == step.tag {
                    if step.matches_index(same_tag_seen) {
                        next.push(child);
                    }
                    same_tag_seen += 1;
                }
            }
        }
        frontier = next;
    }
    frontier.into_iter().next()
}

fn passes_filters(
    html: &HtmlDocument,
    record: NodeId,
    row: &[String],
    filters: &[RecordFilter],
) -> bool {
    filters.iter().all(|f| match f {
        RecordFilter::AttrNotEquals { attr, value } => {
            html.attr(record, attr) != Some(value.as_str())
        }
        RecordFilter::MinNonEmptyFields(k) => {
            row.iter().filter(|v| !v.is_empty()).count() >= *k
        }
        RecordFilter::ChildCount { tag, count } => {
            let n = html
                .node(record)
                .children
                .iter()
                .filter(|&&c| html.tag(c) == Some(tag.as_str()))
                .count();
            n == *count
        }
        RecordFilter::FieldEquals { field, value } => {
            row.get(*field).map(String::as_str) == Some(value.as_str())
        }
    })
}

fn execute_sheet(columns: &[usize], skip_rows: usize, sheet: &Sheet) -> Vec<Vec<String>> {
    sheet
        .rows()
        .iter()
        .skip(skip_rows)
        .map(|row| {
            columns
                .iter()
                .map(|&c| row.get(c).cloned().unwrap_or_default())
                .collect()
        })
        .collect()
}

/// Helper used by the learner: a concrete relative path from an ancestor
/// to a descendant. Returns `None` when `desc` is not under `anc`.
pub(crate) fn relative_path(html: &HtmlDocument, anc: NodeId, desc: NodeId) -> Option<TagPath> {
    if anc == desc {
        return Some(TagPath::default());
    }
    let mut steps = Vec::new();
    let mut cur = desc;
    loop {
        let parent = html.node(cur).parent?;
        let tag = match &html.node(cur).kind {
            copycat_document::NodeKind::Element { tag, .. } => tag.clone(),
            copycat_document::NodeKind::Text(_) => "#text".to_string(),
            copycat_document::NodeKind::Comment(_) => "#comment".to_string(),
        };
        steps.push(TagStep { tag, index: StepIndex::Nth(html.sibling_index(cur)) });
        if parent == anc {
            break;
        }
        cur = parent;
    }
    steps.reverse();
    Some(TagPath::new(steps))
}

/// Whether `desc` is a (transitive) descendant of `anc`.
pub(crate) fn is_descendant(html: &HtmlDocument, anc: NodeId, desc: NodeId) -> bool {
    let mut cur = desc;
    while let Some(p) = html.node(cur).parent {
        if p == anc {
            return true;
        }
        cur = p;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_document::html::parse;
    use copycat_document::{TextDocument, Url};

    fn shelter_site() -> Website {
        let mut site = Website::new();
        site.add_html(
            "/",
            "<table>\
             <tr><th>Name</th><th>City</th></tr>\
             <tr><td>Coconut Creek HS</td><td>Coconut Creek</td></tr>\
             <tr class=\"ad\"><td colspan=\"2\">Buy now!</td></tr>\
             <tr><td><b>Pompano Rec</b></td><td>Pompano Beach</td></tr>\
             </table>",
        );
        site
    }

    fn tr_wrapper(filters: Vec<RecordFilter>) -> Wrapper {
        Wrapper::Html {
            record_path: TagPath::parse("table[0]/tr[*]").unwrap(),
            fields: vec![
                FieldRule::Relative(TagPath::parse("td[0]").unwrap()),
                FieldRule::Relative(TagPath::parse("td[1]").unwrap()),
            ],
            filters,
            scope: PageScope::SinglePage(Url::new("/")),
        }
    }

    #[test]
    fn html_extraction_with_wildcards() {
        let site = shelter_site();
        let rows = execute(&tr_wrapper(vec![]), &Document::Site(site));
        // Header row has no <td>, so both fields are empty; ad row has one td.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], vec!["Coconut Creek HS", "Coconut Creek"]);
        assert_eq!(rows[3], vec!["Pompano Rec", "Pompano Beach"]); // <b> unwrapped
    }

    #[test]
    fn filters_drop_header_and_ads() {
        let site = shelter_site();
        let w = tr_wrapper(vec![
            RecordFilter::MinNonEmptyFields(2),
            RecordFilter::AttrNotEquals { attr: "class".into(), value: "ad".into() },
        ]);
        let rows = execute(&w, &Document::Site(site));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn child_count_filter() {
        let site = shelter_site();
        let w = tr_wrapper(vec![RecordFilter::ChildCount { tag: "td".into(), count: 2 }]);
        let rows = execute(&w, &Document::Site(site));
        assert_eq!(rows.len(), 2, "header (0 td) and ad (1 td) filtered");
    }

    #[test]
    fn preceding_heading_field() {
        let mut site = Website::new();
        site.add_html(
            "/",
            "<h2>Margate</h2><ul><li>Shelter A</li><li>Shelter B</li></ul>\
             <h2>Tamarac</h2><ul><li>Shelter C</li></ul>",
        );
        let w = Wrapper::Html {
            record_path: TagPath::parse("ul[*]/li[*]").unwrap(),
            fields: vec![
                FieldRule::Relative(TagPath::default()),
                FieldRule::PrecedingHeading("h2".into()),
            ],
            filters: vec![],
            scope: PageScope::SinglePage(Url::new("/")),
        };
        let rows = execute(&w, &Document::Site(site));
        assert_eq!(
            rows,
            vec![
                vec!["Shelter A".to_string(), "Margate".to_string()],
                vec!["Shelter B".to_string(), "Margate".to_string()],
                vec!["Shelter C".to_string(), "Tamarac".to_string()],
            ]
        );
    }

    #[test]
    fn sheet_projection() {
        let sheet = Sheet::new(
            "s",
            None,
            vec![
                vec!["hdr1".into(), "hdr2".into(), "x".into()],
                vec!["a".into(), "b".into(), "c".into()],
            ],
        );
        let w = Wrapper::Sheet { columns: vec![2, 0], skip_rows: 1 };
        assert_eq!(execute(&w, &Document::Sheet(sheet)), vec![vec!["c", "a"]]);
    }

    #[test]
    fn wrong_document_kind_extracts_nothing() {
        let w = Wrapper::Sheet { columns: vec![0], skip_rows: 0 };
        let doc = Document::Text(TextDocument::new("t", "hello"));
        assert!(execute(&w, &doc).is_empty());
    }

    #[test]
    fn relative_path_roundtrip() {
        let doc = parse("<div><p>a</p><p><span>b</span></p></div>");
        let div = doc.elements_by_tag("div")[0];
        let span = doc.elements_by_tag("span")[0];
        let rel = relative_path(&doc, div, span).unwrap();
        assert_eq!(rel.to_string(), "p[1]/span[0]");
        assert_eq!(resolve_relative(&doc, div, &rel), Some(span));
        assert!(is_descendant(&doc, div, span));
        assert!(!is_descendant(&doc, span, div));
    }

    #[test]
    fn json_roundtrip() {
        let wrappers = vec![
            tr_wrapper(vec![
                RecordFilter::AttrNotEquals { attr: "class".into(), value: "ad".into() },
                RecordFilter::MinNonEmptyFields(2),
                RecordFilter::ChildCount { tag: "td".into(), count: 2 },
                RecordFilter::FieldEquals { field: 1, value: "Coconut Creek".into() },
            ]),
            Wrapper::Html {
                record_path: TagPath::parse("ul[*]/li[*]").unwrap(),
                fields: vec![FieldRule::PrecedingHeading("h2".into())],
                filters: vec![],
                scope: PageScope::AllPages,
            },
            Wrapper::Sheet { columns: vec![2, 0], skip_rows: 1 },
            Wrapper::Text {
                rules: vec![crate::stalker::LandmarkRule {
                    prefix: "Name: ".into(),
                    suffix: ";".into(),
                }],
            },
        ];
        for w in wrappers {
            let text = w.to_json().to_string();
            let back = Wrapper::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, w, "round-trip through {text}");
        }
    }

    #[test]
    fn multipage_scope_crawls() {
        let mut site = Website::new();
        site.add_html("/", "<ul><li>A</li></ul><a href=\"/p2\">next</a>");
        site.add_html("/p2", "<ul><li>B</li></ul>");
        let w = Wrapper::Html {
            record_path: TagPath::parse("ul[0]/li[*]").unwrap(),
            fields: vec![FieldRule::Relative(TagPath::default())],
            filters: vec![],
            scope: PageScope::AllPages,
        };
        let rows = execute(&w, &Document::Site(site));
        assert_eq!(rows, vec![vec!["A".to_string()], vec!["B".to_string()]]);
    }
}
