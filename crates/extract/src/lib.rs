//! The CopyCat *structure learner* (§3.1 of the CIDR 2009 paper).
//!
//! Given a source document and one or more user-pasted example rows, this
//! crate induces *wrappers*: executable extraction rules that generalize
//! the user's copy operation to "all the additional rows … with
//! similarly-typed information".
//!
//! The organization follows the paper:
//!
//! * a set of software **experts** analyze the source and score structural
//!   hypotheses (repeated-template discovery, data-type coherence, URL
//!   patterns, layout regularity) — see [`experts`];
//! * a **most-general projection** search finds wrappers consistent with
//!   the user's examples, ranked by the experts — see [`learn`];
//! * a **sequential-covering fallback** based on landmark (STALKER-style)
//!   rules handles sources where no structural hypothesis fits — see
//!   [`stalker`];
//! * **feedback refinement** turns row accepts/rejects into wrapper filter
//!   updates — see [`refine`].
//!
//! Wrappers themselves ([`wrapper`]) are plain data: they can be stored in
//! a catalog and re-executed as the runtime side of a source description.

pub mod experts;
pub mod learn;
pub mod locate;
pub mod refine;
pub mod sheet;
pub mod stalker;
pub mod wrapper;

pub use learn::{LearnOptions, ScoredWrapper, StructureLearner};
pub use refine::refine;
pub use wrapper::{execute, FieldRule, PageScope, RecordFilter, Wrapper};
