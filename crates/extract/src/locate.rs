//! Locating user-pasted example values inside source documents.
//!
//! §3.1: "We do not need to know exactly where the data was cut-and-pasted
//! from to find a hypothesis that is consistent with the copied data."
//! Given the example row's *values*, this module finds candidate DOM nodes
//! (or sheet columns, or text lines) carrying them, and the record node
//! that groups them.

use copycat_document::html::{HtmlDocument, NodeId};
use copycat_document::Sheet;

/// An example row resolved to one page's DOM.
#[derive(Debug, Clone)]
pub struct LocatedRow {
    /// One node per example cell, aligned with the example's columns.
    /// `None` for cells the example left empty (a pasted row with a
    /// missing field still teaches the other columns).
    pub cells: Vec<Option<NodeId>>,
    /// The record node: deepest common ancestor of the non-outlier cells.
    pub record: NodeId,
    /// Indices of cells that are *not* descendants of `record` (group
    /// headings shared by several records).
    pub outliers: Vec<usize>,
}

/// All "minimal" elements whose text equals `value`: elements matching the
/// text with no element child that also matches (the deepest enclosing
/// element of the text).
pub fn minimal_matches(html: &HtmlDocument, value: &str) -> Vec<NodeId> {
    let value = value.trim();
    if value.is_empty() {
        return Vec::new();
    }
    html.iter()
        .filter(|&id| html.tag(id).is_some())
        .filter(|&id| html.text_content(id) == value)
        .filter(|&id| {
            !html
                .node(id)
                .children
                .iter()
                .any(|&c| html.tag(c).is_some() && html.text_content(c) == value)
        })
        .collect()
}

/// Depth-aware lowest common ancestor of two nodes.
pub fn lca(html: &HtmlDocument, a: NodeId, b: NodeId) -> NodeId {
    let mut pa = ancestors(html, a);
    let mut pb = ancestors(html, b);
    // Both chains end at the root; walk from the root down while equal.
    let mut last = *pa.last().expect("chain includes self");
    while let (Some(x), Some(y)) = (pa.pop(), pb.pop()) {
        if x == y {
            last = x;
        } else {
            break;
        }
    }
    last
}

/// Chain from `n` up to the root, self first.
fn ancestors(html: &HtmlDocument, n: NodeId) -> Vec<NodeId> {
    let mut out = vec![n];
    let mut cur = n;
    while let Some(p) = html.node(cur).parent {
        out.push(p);
        cur = p;
    }
    out
}

/// LCA of many nodes.
fn lca_all(html: &HtmlDocument, nodes: &[NodeId]) -> Option<NodeId> {
    let mut it = nodes.iter();
    let first = *it.next()?;
    Some(it.fold(first, |acc, &n| lca(html, acc, n)))
}

/// Resolve one example row on a page.
///
/// Strategy: anchor on the first cell (each of its minimal matches is
/// tried, nearest-first); each remaining cell takes its match nearest to
/// the anchor. Cells whose inclusion would hoist the record ancestor far
/// up the tree (group headings) are split off as outliers. Returns `None`
/// when any value cannot be found on the page.
pub fn locate_row(html: &HtmlDocument, values: &[String]) -> Option<LocatedRow> {
    // Anchor on the first *non-empty* cell.
    let anchor_idx = values.iter().position(|v| !v.trim().is_empty())?;
    let anchors = minimal_matches(html, &values[anchor_idx]);
    let mut best: Option<LocatedRow> = None;
    for &anchor in anchors.iter().take(8) {
        let mut cells: Vec<Option<NodeId>> = Vec::with_capacity(values.len());
        let mut ok = true;
        for (i, value) in values.iter().enumerate() {
            if i == anchor_idx {
                cells.push(Some(anchor));
                continue;
            }
            if value.trim().is_empty() {
                cells.push(None);
                continue;
            }
            // Prefer the candidate sharing the deepest ancestor with the
            // anchor (same record beats a merely id-adjacent cell of the
            // neighbouring record), then the nearest by position.
            let cands = minimal_matches(html, value);
            let chosen = cands.into_iter().max_by_key(|&id| {
                let depth = html.depth(lca(html, anchor, id));
                (depth, std::cmp::Reverse(id.0.abs_diff(anchor.0)))
            });
            match chosen {
                Some(n) => cells.push(Some(n)),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let row = split_outliers(html, cells)?;
        let better = match &best {
            None => true,
            Some(b) => {
                // Prefer deeper records (tighter grouping), then fewer outliers.
                let (db, dr) = (html.depth(b.record), html.depth(row.record));
                dr > db || (dr == db && row.outliers.len() < b.outliers.len())
            }
        };
        if better {
            best = Some(row);
        }
    }
    best
}

/// Decide which cells form the record proper and which are outliers.
fn split_outliers(html: &HtmlDocument, cells: Vec<Option<NodeId>>) -> Option<LocatedRow> {
    let present: Vec<(usize, NodeId)> = cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.map(|n| (i, n)))
        .collect();
    let nodes: Vec<NodeId> = present.iter().map(|&(_, n)| n).collect();
    let full = lca_all(html, &nodes)?;
    if nodes.len() <= 1 {
        return Some(LocatedRow { record: full, cells, outliers: Vec::new() });
    }
    // Try dropping each single cell; if the LCA of the rest is markedly
    // deeper (≥ 2 levels), that cell is a heading-style outlier. With
    // fewer than three located cells the test is vacuous (the "rest" is a
    // single node, which is always deep), so skip it.
    let full_depth = html.depth(full);
    let mut best: Option<(usize, NodeId, usize)> = None; // (cell idx, lca, depth)
    for (drop_pos, &(col, _)) in present.iter().enumerate() {
        if present.len() < 3 {
            break;
        }
        let rest: Vec<NodeId> = present
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != drop_pos)
            .map(|(_, &(_, n))| n)
            .collect();
        if let Some(l) = lca_all(html, &rest) {
            let d = html.depth(l);
            if d >= full_depth + 2 && best.is_none_or(|(_, _, bd)| d > bd) {
                best = Some((col, l, d));
            }
        }
    }
    match best {
        Some((i, record, _)) => Some(LocatedRow { cells, record, outliers: vec![i] }),
        None => Some(LocatedRow { cells, record: full, outliers: Vec::new() }),
    }
}

/// Find, for each example cell value, the sheet column containing it; the
/// values must all come from one row. Returns `(row, columns)`.
pub fn locate_sheet_row(sheet: &Sheet, values: &[String]) -> Option<(usize, Vec<usize>)> {
    for (r, row) in sheet.rows().iter().enumerate() {
        let mut cols = Vec::with_capacity(values.len());
        let mut ok = true;
        for v in values {
            match row.iter().position(|c| c == v) {
                Some(c) => cols.push(c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some((r, cols));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_document::html::parse;

    #[test]
    fn minimal_matches_prefers_deepest() {
        let doc = parse("<td><b>Pompano Rec</b></td>");
        let m = minimal_matches(&doc, "Pompano Rec");
        assert_eq!(m.len(), 1);
        assert_eq!(doc.tag(m[0]), Some("b"));
    }

    #[test]
    fn lca_of_table_cells_is_row() {
        let doc = parse("<table><tr><td>a</td><td>b</td></tr><tr><td>c</td></tr></table>");
        let tds = doc.elements_by_tag("td");
        let l = lca(&doc, tds[0], tds[1]);
        assert_eq!(doc.tag(l), Some("tr"));
        let l2 = lca(&doc, tds[0], tds[2]);
        assert_eq!(doc.tag(l2), Some("table"));
    }

    #[test]
    fn locate_simple_row() {
        let doc = parse(
            "<table><tr><td>Coconut Creek HS</td><td>Coconut Creek</td></tr>\
             <tr><td>Pompano Rec</td><td>Pompano Beach</td></tr></table>",
        );
        let row = locate_row(
            &doc,
            &["Pompano Rec".to_string(), "Pompano Beach".to_string()],
        )
        .expect("found");
        assert_eq!(doc.tag(row.record), Some("tr"));
        assert!(row.outliers.is_empty());
    }

    #[test]
    fn locate_with_heading_outlier() {
        let doc = parse(
            "<h2>Margate</h2><ul>\
             <li><span>Shelter A</span>, <span>100 Oak St</span></li>\
             <li><span>Shelter B</span>, <span>200 Elm St</span></li></ul>",
        );
        let row = locate_row(
            &doc,
            &[
                "Shelter A".to_string(),
                "100 Oak St".to_string(),
                "Margate".to_string(),
            ],
        )
        .expect("found");
        assert_eq!(doc.tag(row.record), Some("li"));
        assert_eq!(row.outliers, vec![2]);
        assert_eq!(doc.tag(row.cells[2].unwrap()), Some("h2"));
    }

    #[test]
    fn locate_missing_value_fails() {
        let doc = parse("<p>hello</p>");
        assert!(locate_row(&doc, &["absent".to_string()]).is_none());
    }

    #[test]
    fn duplicate_values_resolve_by_proximity() {
        // Two rows share the city; each name must pair with the city cell
        // in its own row.
        let doc = parse(
            "<table>\
             <tr><td>A</td><td>Margate</td></tr>\
             <tr><td>B</td><td>Margate</td></tr>\
             </table>",
        );
        let row = locate_row(&doc, &["B".to_string(), "Margate".to_string()]).unwrap();
        assert_eq!(doc.tag(row.record), Some("tr"));
        // The record must be B's row: its first cell's text is B.
        assert_eq!(doc.text_content(row.cells[0].unwrap()), "B");
        let tr_cells = doc.node(row.record).children.len();
        assert_eq!(tr_cells, 2);
    }

    #[test]
    fn empty_cells_are_unconstrained() {
        let doc = parse(
            "<table><tr><td>A</td><td></td><td>Margate</td></tr>\
             <tr><td>B</td><td>2 Oak</td><td>Tamarac</td></tr></table>",
        );
        let row = locate_row(
            &doc,
            &["A".to_string(), String::new(), "Margate".to_string()],
        )
        .expect("locatable despite the empty cell");
        assert_eq!(doc.tag(row.record), Some("tr"));
        assert!(row.cells[1].is_none());
        assert!(row.cells[0].is_some() && row.cells[2].is_some());
        // An all-empty example cannot locate.
        assert!(locate_row(&doc, &[String::new()]).is_none());
    }

    #[test]
    fn sheet_location() {
        let sheet = Sheet::new(
            "s",
            None,
            vec![
                vec!["Ann".into(), "x".into()],
                vec!["Bob".into(), "y".into()],
            ],
        );
        let (r, cols) = locate_sheet_row(&sheet, &["y".to_string(), "Bob".to_string()]).unwrap();
        assert_eq!(r, 1);
        assert_eq!(cols, vec![1, 0]);
        assert!(locate_sheet_row(&sheet, &["zzz".to_string()]).is_none());
    }
}
