//! Landmark-based wrapper induction (the sequential-covering fallback).
//!
//! §3.1: "If this method cannot find a consistent hypothesis, the system
//! falls back on a sequential covering approach based on more traditional
//! wrapper induction techniques [Muslea, Minton, Knoblock 2001]."
//!
//! Records are lines; each field is captured between a learned *prefix
//! landmark* and *suffix landmark* (literal context strings). Landmarks
//! start maximally specific (the full observed context) and are shortened
//! to the longest context **common to all examples** — the sequential-
//! covering counterpart of the paper's most-general-consistent search.

use copycat_document::TextDocument;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};

/// Maximum landmark length retained from each example's context.
const MAX_CONTEXT: usize = 24;

/// A learned per-field extraction rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LandmarkRule {
    /// Literal text that must appear immediately before the field (empty =
    /// field starts at the beginning of the line).
    pub prefix: String,
    /// Literal text that must appear immediately after the field (empty =
    /// field runs to the end of the line).
    pub suffix: String,
}

impl ToJson for LandmarkRule {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("prefix".into(), self.prefix.to_json()),
            ("suffix".into(), self.suffix.to_json()),
        ])
    }
}

impl FromJson for LandmarkRule {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(LandmarkRule {
            prefix: String::from_json(j.field("prefix")?)?,
            suffix: String::from_json(j.field("suffix")?)?,
        })
    }
}

impl LandmarkRule {
    /// Apply the rule to one line. Returns the captured field, trimmed.
    pub fn apply(&self, line: &str) -> Option<String> {
        let start = if self.prefix.is_empty() {
            0
        } else {
            line.find(&self.prefix)? + self.prefix.len()
        };
        let rest = &line[start..];
        let end = if self.suffix.is_empty() {
            rest.len()
        } else {
            rest.find(&self.suffix)?
        };
        Some(rest[..end].trim().to_string())
    }
}

/// Execute a rule set: one output row per line on which *every* rule fires.
pub fn execute(rules: &[LandmarkRule], doc: &TextDocument) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for i in 0..doc.line_count() {
        let line = doc.line(i).expect("index in range");
        let mut row = Vec::with_capacity(rules.len());
        let mut ok = true;
        for r in rules {
            match r.apply(line) {
                Some(v) if !v.is_empty() => row.push(v),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            rows.push(row);
        }
    }
    rows
}

/// Learn landmark rules from example rows. Each example row's values must
/// co-occur on one line of the document. Returns `None` when no line
/// carries an example, or when the examples' contexts are irreconcilable.
pub fn learn(doc: &TextDocument, examples: &[Vec<String>]) -> Option<Vec<LandmarkRule>> {
    let first = examples.first()?;
    let arity = first.len();
    // Per field and example, the candidate (prefix, suffix) contexts — one
    // per occurrence of the value on its line (a value like "Coconut
    // Creek" may also occur inside "Coconut Creek HS").
    let mut contexts: Vec<Vec<Vec<(String, String)>>> = vec![Vec::new(); arity];
    for ex in examples {
        if ex.len() != arity {
            return None;
        }
        let line = find_line(doc, ex)?;
        for (f, value) in ex.iter().enumerate() {
            let cands = occurrence_contexts(line, value);
            if cands.is_empty() {
                return None;
            }
            contexts[f].push(cands);
        }
    }
    let mut rules = Vec::with_capacity(arity);
    for per_example in contexts {
        rules.push(best_rule(&per_example)?);
    }
    // The learned rules must reproduce every example value.
    let table = execute(&rules, doc);
    for ex in examples {
        if !table.iter().any(|row| row == ex) {
            return None;
        }
    }
    Some(rules)
}

/// Candidate landmark contexts for every occurrence of `value` in `line`.
fn occurrence_contexts(line: &str, value: &str) -> Vec<(String, String)> {
    if value.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(value) {
        let pos = from + rel;
        let before = &line[..pos];
        let after = &line[pos + value.len()..];
        out.push((
            tail(last_context(before), MAX_CONTEXT).to_string(),
            head(first_context(after), MAX_CONTEXT).to_string(),
        ));
        from = pos + 1;
    }
    out
}

/// Choose, per example, the occurrence whose context agrees best with the
/// others', and return the resulting rule (longest shared landmarks win).
fn best_rule(per_example: &[Vec<(String, String)>]) -> Option<LandmarkRule> {
    let first = per_example.first()?;
    let mut best: Option<(usize, LandmarkRule)> = None;
    for (p0, s0) in first {
        let mut prefix = p0.clone();
        let mut suffix = s0.clone();
        for cands in &per_example[1..] {
            // Greedily pick the occurrence maximizing shared context.
            let (np, ns) = cands
                .iter()
                .map(|(p, s)| {
                    (
                        common_suffix(&prefix, p).to_string(),
                        common_prefix(&suffix, s).to_string(),
                    )
                })
                .max_by_key(|(p, s)| p.len() + s.len())?;
            prefix = np;
            suffix = ns;
        }
        let quality = prefix.len() + suffix.len();
        if best.as_ref().is_none_or(|(q, _)| quality > *q) {
            best = Some((quality, LandmarkRule { prefix, suffix }));
        }
    }
    best.map(|(_, r)| r)
}

/// The first line containing all values of the example row.
fn find_line<'a>(doc: &'a TextDocument, example: &[String]) -> Option<&'a str> {
    (0..doc.line_count())
        .filter_map(|i| doc.line(i))
        .find(|line| example.iter().all(|v| line.contains(v.as_str())))
}

/// The landmark-sized context at the end of `before`: the trailing
/// delimiter run plus the one token preceding it (`"… | City: "` →
/// `"City: "`). A single token of context is what keeps one-example
/// landmarks from swallowing neighbouring field values.
fn last_context(before: &str) -> &str {
    let mut idx = before.len();
    // Trailing delimiter run.
    for (i, c) in before.char_indices().rev() {
        if c.is_alphanumeric() {
            break;
        }
        idx = i;
    }
    // One preceding token.
    let mut start = idx;
    for (i, c) in before[..idx].char_indices().rev() {
        if !c.is_alphanumeric() {
            break;
        }
        start = i;
    }
    &before[start..]
}

/// The landmark-sized context at the start of `after`: the leading
/// delimiter run plus the one token following it (`" | City: …"` →
/// `" | City"`).
fn first_context(after: &str) -> &str {
    let mut idx = 0;
    for (i, c) in after.char_indices() {
        if c.is_alphanumeric() {
            idx = i;
            break;
        }
        idx = i + c.len_utf8();
    }
    let mut end = idx;
    for (i, c) in after[idx..].char_indices() {
        if !c.is_alphanumeric() {
            end = idx + i;
            break;
        }
        end = idx + i + c.len_utf8();
    }
    &after[..end]
}

fn tail(s: &str, n: usize) -> &str {
    let start = s.len().saturating_sub(n);
    // Snap to a char boundary.
    let mut start = start;
    while !s.is_char_boundary(start) {
        start += 1;
    }
    &s[start..]
}

fn head(s: &str, n: usize) -> &str {
    let mut end = n.min(s.len());
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Longest common suffix of two strings (char-boundary safe).
fn common_suffix<'a>(a: &'a str, b: &str) -> &'a str {
    let mut n = 0;
    let mut ai = a.chars().rev();
    let mut bi = b.chars().rev();
    loop {
        match (ai.next(), bi.next()) {
            (Some(x), Some(y)) if x == y => n += x.len_utf8(),
            _ => break,
        }
    }
    &a[a.len() - n..]
}

/// Longest common prefix of two strings (char-boundary safe).
fn common_prefix<'a>(a: &'a str, b: &str) -> &'a str {
    let mut n = 0;
    let mut ai = a.chars();
    let mut bi = b.chars();
    loop {
        match (ai.next(), bi.next()) {
            (Some(x), Some(y)) if x == y => n += x.len_utf8(),
            _ => break,
        }
    }
    &a[..n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> TextDocument {
        TextDocument::new(
            "report",
            "Shelter: Coconut Creek HS | City: Coconut Creek\n\
             (header line to be ignored)\n\
             Shelter: Pompano Rec | City: Pompano Beach\n\
             Shelter: Margate Civic | City: Margate\n",
        )
    }

    #[test]
    fn learn_from_two_examples_and_generalize() {
        let d = doc();
        let examples = vec![
            vec!["Coconut Creek HS".to_string(), "Coconut Creek".to_string()],
            vec!["Pompano Rec".to_string(), "Pompano Beach".to_string()],
        ];
        let rules = learn(&d, &examples).expect("learned");
        let rows = execute(&rules, &d);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec!["Margate Civic", "Margate"]);
    }

    #[test]
    fn learn_from_one_example_uses_full_context() {
        let d = doc();
        let examples = vec![vec![
            "Pompano Rec".to_string(),
            "Pompano Beach".to_string(),
        ]];
        let rules = learn(&d, &examples).expect("learned");
        let rows = execute(&rules, &d);
        // Single-example landmarks still generalize: the literal context
        // "Shelter: " / " | City: " is shared by all record lines.
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn missing_value_fails_cleanly() {
        let d = doc();
        assert!(learn(&d, &[vec!["Nowhere".to_string()]]).is_none());
    }

    #[test]
    fn rule_application_edges() {
        let r = LandmarkRule { prefix: "x=".into(), suffix: ";".into() };
        assert_eq!(r.apply("a x=42; b"), Some("42".to_string()));
        assert_eq!(r.apply("no markers"), None);
        let open = LandmarkRule { prefix: String::new(), suffix: ":".into() };
        assert_eq!(open.apply("head: tail"), Some("head".to_string()));
        let tail = LandmarkRule { prefix: ":".into(), suffix: String::new() };
        assert_eq!(tail.apply("head: tail"), Some("tail".to_string()));
    }

    #[test]
    fn common_affix_helpers() {
        assert_eq!(common_prefix("abcde", "abxde"), "ab");
        assert_eq!(common_suffix("xyz | ", "abc | "), " | ");
        assert_eq!(common_prefix("", "abc"), "");
    }

    #[test]
    fn unicode_context_is_boundary_safe() {
        let d = TextDocument::new("t", "país: España → ok\npaís: México → ok\n");
        let rules = learn(
            &d,
            &[vec!["España".to_string()], vec!["México".to_string()]],
        )
        .expect("learned");
        let rows = execute(&rules, &d);
        assert_eq!(rows.len(), 2);
    }
}
