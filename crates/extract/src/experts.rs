//! The structure-learner "experts" (§3.1).
//!
//! "A set of software experts analyze the given set of pages. Each expert
//! is an algorithm that generates hypotheses about the structure of the
//! web site, focusing on a particular type of structure." Our experts:
//!
//! * [`list_expert`] — repeated same-tag siblings (tables, lists);
//! * [`template_expert`] — subtree-shape clustering across the page, which
//!   finds record templates that repeat under *different* parents (e.g.
//!   `<li>` records under several per-city `<ul>`s);
//! * [`type_coherence`] — scores a column set by how well each column
//!   matches a known semantic type (the "experts that can parse particular
//!   data types");
//! * [`layout_regularity`] — a visual-layout proxy: records whose text
//!   lengths are regular score higher;
//! * [`url_expert`] — detects that a record pattern recurs on other pages
//!   of the site (the "experts that look for patterns in URLs" enabling
//!   multi-page generalization).

use copycat_document::html::{HtmlDocument, NodeId, TagPath};
use copycat_document::{Page, Website};
use copycat_semantic::TypeRegistry;
use copycat_util::hash::FxHashMap;

/// A candidate record set proposed by a structural expert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSetHypothesis {
    /// Wildcarded path addressing the record nodes.
    pub record_path: TagPath,
    /// Number of records it matches on the proposing page.
    pub support: usize,
    /// Which expert proposed it (for explanations and the A2 ablation).
    pub expert: &'static str,
}

/// Tags that commonly carry records.
const RECORD_TAGS: &[&str] = &["tr", "li", "div", "p", "dd", "article", "section"];

/// Repeated same-tag children of a single parent → one hypothesis per
/// (parent, tag) pair with at least `min_support` children.
pub fn list_expert(html: &HtmlDocument, min_support: usize) -> Vec<RecordSetHypothesis> {
    let mut out = Vec::new();
    for parent in html.iter() {
        if html.tag(parent).is_none() {
            continue;
        }
        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for &c in &html.node(parent).children {
            if let Some(t) = html.tag(c) {
                *counts.entry(t).or_default() += 1;
            }
        }
        for (tag, n) in counts {
            if n >= min_support && RECORD_TAGS.contains(&tag) {
                let mut steps = html.tag_path(parent).steps().to_vec();
                steps.push(copycat_document::TagStep::any(tag));
                out.push(RecordSetHypothesis {
                    record_path: TagPath::new(steps),
                    support: n,
                    expert: "list",
                });
            }
        }
    }
    out.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| {
        a.record_path.to_string().cmp(&b.record_path.to_string())
    }));
    out
}

/// Shape signature of a subtree: its tag plus the tags of its element
/// children (order-sensitive, depth 1). Cheap but effective for template
/// clustering.
fn shape_signature(html: &HtmlDocument, id: NodeId) -> Option<String> {
    let tag = html.tag(id)?;
    let mut sig = String::from(tag);
    sig.push(':');
    for &c in &html.node(id).children {
        if let Some(t) = html.tag(c) {
            sig.push_str(t);
            sig.push(',');
        }
    }
    Some(sig)
}

/// Cluster elements by shape signature; clusters of ≥ `min_support`
/// same-shape elements whose absolute paths share an lgg become record-set
/// hypotheses. This discovers records that repeat under *different*
/// parents, which [`list_expert`] cannot.
pub fn template_expert(html: &HtmlDocument, min_support: usize) -> Vec<RecordSetHypothesis> {
    let mut clusters: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
    for id in html.iter() {
        if let Some(tag) = html.tag(id) {
            if !RECORD_TAGS.contains(&tag) {
                continue;
            }
            if let Some(sig) = shape_signature(html, id) {
                clusters.entry(sig).or_default().push(id);
            }
        }
    }
    let mut out = Vec::new();
    for (_, members) in clusters {
        if members.len() < min_support {
            continue;
        }
        let mut paths = members.iter().map(|&m| html.tag_path(m));
        let Some(first) = paths.next() else { continue };
        let Some(general) = paths.try_fold(first, |acc, p| acc.lgg(&p)) else {
            continue;
        };
        let support = html.find_by_path(&general).len();
        out.push(RecordSetHypothesis { record_path: general, support, expert: "template" });
    }
    out.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.record_path.to_string().cmp(&b.record_path.to_string()))
    });
    out.dedup_by(|a, b| a.record_path == b.record_path);
    out
}

/// Mean best-type recognition score across extracted columns, in `[0, 1]`.
/// Empty column sets score 0.
pub fn type_coherence(rows: &[Vec<String>], registry: &TypeRegistry) -> f64 {
    if rows.is_empty() || rows[0].is_empty() {
        return 0.0;
    }
    let arity = rows[0].len();
    let mut total = 0.0;
    for c in 0..arity {
        let col: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.get(c).map(String::as_str))
            .filter(|v| !v.is_empty())
            .collect();
        if col.is_empty() {
            continue; // all-empty column contributes 0
        }
        let best = registry
            .recognize_column(&col)
            .first()
            .map(|(_, s)| s.score)
            .unwrap_or(0.0);
        total += best;
    }
    total / arity as f64
}

/// Layout-regularity proxy: 1 / (1 + coefficient of variation of record
/// text lengths). Regular lists score near 1; grab-bags score low.
pub fn layout_regularity(rows: &[Vec<String>]) -> f64 {
    if rows.len() < 2 {
        return 0.5;
    }
    let lens: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().map(String::len).sum::<usize>() as f64)
        .collect();
    let mean = lens.iter().sum::<f64>() / lens.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lens.len() as f64;
    let cv = var.sqrt() / mean;
    1.0 / (1.0 + cv)
}

/// How many crawled pages (beyond the example page) the record path
/// matches on. Non-zero means the wrapper should be offered with
/// `PageScope::AllPages`.
pub fn url_expert(site: &Website, example_page: &Page, record_path: &TagPath) -> usize {
    site.crawl()
        .into_iter()
        .filter(|p| p.url != example_page.url)
        .filter(|p| !p.html.find_by_path(record_path).is_empty())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_document::html::parse;

    #[test]
    fn list_expert_finds_table_rows() {
        let doc = parse(
            "<table><tr><td>a</td></tr><tr><td>b</td></tr><tr><td>c</td></tr></table>",
        );
        let hyps = list_expert(&doc, 2);
        assert!(!hyps.is_empty());
        assert_eq!(hyps[0].record_path.to_string(), "table[0]/tr[*]");
        assert_eq!(hyps[0].support, 3);
    }

    #[test]
    fn list_expert_respects_min_support() {
        let doc = parse("<ul><li>only</li></ul>");
        assert!(list_expert(&doc, 2).is_empty());
    }

    #[test]
    fn template_expert_crosses_parents() {
        let doc = parse(
            "<h2>A</h2><ul><li><span>x</span></li><li><span>y</span></li></ul>\
             <h2>B</h2><ul><li><span>z</span></li></ul>",
        );
        let hyps = template_expert(&doc, 2);
        let li = hyps
            .iter()
            .find(|h| h.record_path.to_string() == "ul[*]/li[*]")
            .expect("cross-parent li hypothesis: {hyps:?}");
        assert_eq!(li.support, 3);
    }

    #[test]
    fn type_coherence_prefers_typed_columns() {
        let reg = TypeRegistry::with_builtins();
        let typed = vec![
            vec!["33063".to_string(), "Coconut Creek".to_string()],
            vec!["33441".to_string(), "Margate".to_string()],
        ];
        let junk = vec![
            vec!["@@!!".to_string(), "###".to_string()],
            vec!["%%".to_string(), "^^^".to_string()],
        ];
        assert!(type_coherence(&typed, &reg) > type_coherence(&junk, &reg));
    }

    #[test]
    fn layout_regularity_ranks_uniform_rows_higher() {
        let uniform: Vec<Vec<String>> =
            (0..5).map(|i| vec![format!("row number {i}")]).collect();
        let ragged = vec![
            vec!["x".to_string()],
            vec!["a much much much longer row of text entirely".to_string()],
            vec!["mid sized".to_string()],
        ];
        assert!(layout_regularity(&uniform) > layout_regularity(&ragged));
    }

    #[test]
    fn url_expert_counts_other_pages() {
        let mut site = Website::new();
        site.add_html("/", "<ul><li>A</li><li>B</li></ul><a href=\"/p2\">n</a>");
        site.add_html("/p2", "<ul><li>C</li></ul>");
        let entry = site.entry().unwrap();
        let path = TagPath::parse("ul[0]/li[*]").unwrap();
        assert_eq!(url_expert(&site, entry, &path), 1);
    }
}
