//! Spreadsheet generalization.
//!
//! "For a relatively structured source such as an Excel spreadsheet, the
//! generalization process is normally quite simple. For example, after
//! copying just two data items from a column in [a] spreadsheet, it is
//! clear that the user's selection should be generalized to include all
//! the additional rows in that column" (§3.1).

use crate::locate::locate_sheet_row;
use crate::wrapper::Wrapper;
use copycat_document::Sheet;

/// Learn a sheet wrapper from example rows: find the columns carrying the
/// example values and generalize to every data row. All examples must
/// agree on the column mapping.
pub fn learn(sheet: &Sheet, examples: &[Vec<String>]) -> Option<Wrapper> {
    let mut columns: Option<Vec<usize>> = None;
    for ex in examples {
        let (_, cols) = locate_sheet_row(sheet, ex)?;
        match &columns {
            None => columns = Some(cols),
            Some(existing) if *existing == cols => {}
            Some(_) => return None, // inconsistent examples
        }
    }
    columns.map(|columns| Wrapper::Sheet { columns, skip_rows: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::execute;
    use copycat_document::Document;

    fn sheet() -> Sheet {
        Sheet::new(
            "contacts",
            Some(vec!["Name".into(), "Phone".into(), "Venue".into()]),
            vec![
                vec!["Ann".into(), "555-0101".into(), "Creek HS".into()],
                vec!["Bob".into(), "555-0102".into(), "Rec Ctr".into()],
                vec!["Cy".into(), "555-0103".into(), "Civic".into()],
            ],
        )
    }

    #[test]
    fn two_examples_generalize_to_all_rows() {
        let s = sheet();
        let w = learn(
            &s,
            &[
                vec!["Ann".to_string(), "Creek HS".to_string()],
                vec!["Bob".to_string(), "Rec Ctr".to_string()],
            ],
        )
        .expect("learned");
        let rows = execute(&w, &Document::Sheet(s));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec!["Cy", "Civic"]);
    }

    #[test]
    fn column_order_follows_examples_not_source() {
        let s = sheet();
        let w = learn(&s, &[vec!["555-0101".to_string(), "Ann".to_string()]]).unwrap();
        let rows = execute(&w, &Document::Sheet(s));
        assert_eq!(rows[0], vec!["555-0101", "Ann"]);
    }

    #[test]
    fn inconsistent_examples_fail() {
        let s = sheet();
        // First example maps to (Name, Venue); second to (Phone, Venue).
        let got = learn(
            &s,
            &[
                vec!["Ann".to_string(), "Creek HS".to_string()],
                vec!["555-0102".to_string(), "Rec Ctr".to_string()],
            ],
        );
        assert!(got.is_none());
    }

    #[test]
    fn unknown_value_fails() {
        assert!(learn(&sheet(), &[vec!["Zed".to_string()]]).is_none());
    }
}
