//! The most-general-projection hypothesis search (§3.1).
//!
//! "Given one or more examples selected by the user, the system attempts
//! to find a most-general projection hypothesis consistent with the
//! example[s]." The learner:
//!
//! 1. locates the example rows in the source ([`crate::locate`]);
//! 2. builds candidate record paths: the lgg of the example records' paths
//!    plus progressively wider wildcardings, merged with the structural
//!    experts' proposals that are consistent with the examples;
//! 3. builds field rules (relative paths, with truncated variants robust
//!    to inline formatting; preceding-heading rules for outlier cells);
//! 4. executes every candidate, keeps those whose output *contains the
//!    examples*, and ranks by expert scores with a most-general tiebreak.
//!
//! Spreadsheets and text documents take the simpler dedicated paths
//! ([`crate::sheet`], [`crate::stalker`]).

use crate::experts;
use crate::locate::{locate_row, LocatedRow};
use crate::wrapper::{
    execute, is_descendant, relative_path, FieldRule, PageScope, RecordFilter, Wrapper,
};
use copycat_document::html::{HtmlDocument, StepIndex, TagPath};
use copycat_document::{Document, Page, Website};
use copycat_semantic::TypeRegistry;

/// Tunables for the hypothesis search.
#[derive(Debug, Clone)]
pub struct LearnOptions {
    /// Minimum records for an expert proposal to count.
    pub min_support: usize,
    /// Maximum hypotheses returned.
    pub max_hypotheses: usize,
    /// Weight of type coherence in the ranking score.
    pub w_types: f64,
    /// Weight of layout regularity.
    pub w_layout: f64,
    /// Penalty weight of the empty-cell fraction.
    pub w_empty: f64,
    /// Reward for extracting beyond the examples (log-scaled row count).
    pub w_yield: f64,
    /// Enable individual experts (used by ablation A2): list, template,
    /// types, layout, url.
    pub enabled_experts: ExpertToggles,
}

/// Which experts participate (ablation switch).
#[derive(Debug, Clone, Copy)]
pub struct ExpertToggles {
    /// Repeated-sibling expert.
    pub list: bool,
    /// Shape-clustering expert.
    pub template: bool,
    /// Data-type coherence scoring.
    pub types: bool,
    /// Layout regularity scoring.
    pub layout: bool,
    /// Multi-page URL expert.
    pub url: bool,
}

impl Default for ExpertToggles {
    fn default() -> Self {
        Self { list: true, template: true, types: true, layout: true, url: true }
    }
}

impl Default for LearnOptions {
    fn default() -> Self {
        Self {
            min_support: 2,
            max_hypotheses: 8,
            w_types: 2.0,
            w_layout: 0.5,
            w_empty: 2.0,
            // The most-general-consistent preference (§3.1) has to be
            // strong enough that generalizing across a site's pages beats
            // small per-page fluctuations in type coherence.
            w_yield: 1.0,
            enabled_experts: ExpertToggles::default(),
        }
    }
}

/// A ranked hypothesis: an executable wrapper plus its score and preview.
#[derive(Debug, Clone)]
pub struct ScoredWrapper {
    /// The executable rule.
    pub wrapper: Wrapper,
    /// Ranking score (higher is better).
    pub score: f64,
    /// The rows the wrapper extracted during ranking (the auto-complete
    /// suggestion preview).
    pub rows: Vec<Vec<String>>,
}

/// The structure learner: generalizes pasted examples into wrappers.
#[derive(Debug, Default)]
pub struct StructureLearner {
    opts: LearnOptions,
}

impl StructureLearner {
    /// Learner with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learner with custom options.
    pub fn with_options(opts: LearnOptions) -> Self {
        Self { opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &LearnOptions {
        &self.opts
    }

    /// Learn ranked wrappers from example rows over a source document.
    /// Returns an empty vector when the examples cannot be located.
    pub fn learn(
        &self,
        doc: &Document,
        examples: &[Vec<String>],
        registry: &TypeRegistry,
    ) -> Vec<ScoredWrapper> {
        if examples.is_empty() {
            return Vec::new();
        }
        match doc {
            Document::Site(site) => self.learn_html(site, examples, registry, doc),
            Document::Sheet(sheet) => crate::sheet::learn(sheet, examples)
                .map(|w| {
                    let rows = execute(&w, doc);
                    vec![ScoredWrapper { wrapper: w, score: 1.0, rows }]
                })
                .unwrap_or_default(),
            Document::Text(text) => crate::stalker::learn(text, examples)
                .map(|rules| {
                    let w = Wrapper::Text { rules };
                    let rows = execute(&w, doc);
                    vec![ScoredWrapper { wrapper: w, score: 1.0, rows }]
                })
                .unwrap_or_default(),
        }
    }

    fn learn_html(
        &self,
        site: &Website,
        examples: &[Vec<String>],
        registry: &TypeRegistry,
        doc: &Document,
    ) -> Vec<ScoredWrapper> {
        // Find the page where all examples locate.
        let Some((page, located)) = self.locate_on_site(site, examples) else {
            return Vec::new();
        };
        let html = &page.html;

        // Candidate record paths from the examples themselves.
        let mut candidates = example_record_paths(html, &located);

        // Expert proposals consistent with every example record.
        let example_paths: Vec<TagPath> =
            located.iter().map(|l| html.tag_path(l.record)).collect();
        let mut proposals = Vec::new();
        if self.opts.enabled_experts.list {
            proposals.extend(experts::list_expert(html, self.opts.min_support));
        }
        if self.opts.enabled_experts.template {
            proposals.extend(experts::template_expert(html, self.opts.min_support));
        }
        for p in proposals {
            if example_paths.iter().all(|e| p.record_path.subsumes(e)) {
                candidates.push(p.record_path);
            }
        }
        candidates.sort_by_key(|c| c.to_string());
        candidates.dedup();

        // Field-rule variants per candidate.
        let mut scored = Vec::new();
        for record_path in candidates {
            for fields in field_rule_variants(html, &located) {
                let base = Wrapper::Html {
                    record_path: record_path.clone(),
                    fields: fields.clone(),
                    filters: vec![],
                    scope: PageScope::SinglePage(page.url.clone()),
                };
                let mut variants = vec![base.clone()];
                // Non-empty filter: require as many non-empty fields as
                // the *sparsest* example shows. This drops header/ad rows
                // while staying consistent with pasted rows that have a
                // missing field — additional examples with blanks teach
                // tolerance (the "more examples" mechanism of E4).
                let min_non_empty = examples
                    .iter()
                    .map(|ex| ex.iter().filter(|v| !v.trim().is_empty()).count())
                    .min()
                    .unwrap_or(fields.len())
                    .max(1);
                variants.push(with_filter(
                    &base,
                    RecordFilter::MinNonEmptyFields(min_non_empty),
                ));
                // Figure-1 ambiguity: when every example agrees on some
                // field's value ("both of which are in Coconut Creek"),
                // the value-scoped extraction is a live alternative. The
                // most-general preference ranks it behind the full list,
                // mirroring CopyCat's default guess.
                for f in 0..fields.len() {
                    let shared = examples
                        .first()
                        .and_then(|ex| ex.get(f))
                        .filter(|v| !v.trim().is_empty())
                        .filter(|v| examples.iter().all(|ex| ex.get(f) == Some(v)));
                    if let Some(value) = shared {
                        variants.push(with_filter(
                            &base,
                            RecordFilter::FieldEquals { field: f, value: value.clone() },
                        ));
                    }
                }
                // Multi-page variant when the pattern recurs elsewhere.
                if self.opts.enabled_experts.url
                    && experts::url_expert(site, page, &record_path) > 0
                {
                    for v in variants.clone() {
                        variants.push(with_scope(&v, PageScope::AllPages));
                    }
                }
                for wrapper in variants {
                    if let Some(sw) = self.score_wrapper(wrapper, doc, examples, registry) {
                        scored.push(sw);
                    }
                }
            }
        }

        // Fallback: landmark rules over the page's visible text.
        if scored.is_empty() {
            let text = copycat_document::TextDocument::new(
                page.url.to_string(),
                page_text_lines(html),
            );
            if let Some(rules) = crate::stalker::learn(&text, examples) {
                let rows = crate::stalker::execute(&rules, &text);
                scored.push(ScoredWrapper {
                    wrapper: Wrapper::Text { rules },
                    score: 0.1,
                    rows,
                });
            }
        }

        scored.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        scored.dedup_by(|a, b| a.rows == b.rows);
        scored.truncate(self.opts.max_hypotheses);
        scored
    }

    fn locate_on_site<'a>(
        &self,
        site: &'a Website,
        examples: &[Vec<String>],
    ) -> Option<(&'a Page, Vec<LocatedRow>)> {
        for page in site.crawl() {
            let located: Vec<LocatedRow> = examples
                .iter()
                .filter_map(|ex| locate_row(&page.html, ex))
                .collect();
            if located.len() == examples.len() {
                return Some((page, located));
            }
        }
        None
    }

    /// Execute, check consistency with the examples, and score.
    fn score_wrapper(
        &self,
        wrapper: Wrapper,
        doc: &Document,
        examples: &[Vec<String>],
        registry: &TypeRegistry,
    ) -> Option<ScoredWrapper> {
        let rows = execute(&wrapper, doc);
        // Consistency: every example row must appear among the output.
        for ex in examples {
            if !rows.iter().any(|r| r == ex) {
                return None;
            }
        }
        let mut score = 0.0;
        if self.opts.enabled_experts.types {
            score += self.opts.w_types * experts::type_coherence(&rows, registry);
        }
        if self.opts.enabled_experts.layout {
            score += self.opts.w_layout * experts::layout_regularity(&rows);
        }
        let empty_frac = {
            let cells = rows.len().max(1) * wrapper.arity().max(1);
            let empties: usize = rows
                .iter()
                .map(|r| r.iter().filter(|v| v.is_empty()).count())
                .sum();
            empties as f64 / cells as f64
        };
        score -= self.opts.w_empty * empty_frac;
        // Most-general preference: reward extracting beyond the examples,
        // log-scaled so 100 rows do not dominate type coherence.
        let extra = rows.len().saturating_sub(examples.len());
        score += self.opts.w_yield * ((1 + extra) as f64).ln() / 4.0;
        Some(ScoredWrapper { wrapper, score, rows })
    }
}

/// Candidate record paths from the examples: the lgg of the example record
/// paths, plus suffix wildcardings of it (most-general candidates).
fn example_record_paths(html: &HtmlDocument, located: &[LocatedRow]) -> Vec<TagPath> {
    let mut paths = located.iter().map(|l| html.tag_path(l.record));
    let Some(first) = paths.next() else {
        return Vec::new();
    };
    let Some(base) = paths.try_fold(first, |acc, p| acc.lgg(&p)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Wildcard the last k steps for k = 1..=len (the record index, then its
    // containers): `table[0]/tr[3]` → `table[0]/tr[*]` → `table[*]/tr[*]`.
    let len = base.len();
    let mut cur = base.clone();
    for k in (0..len).rev() {
        if cur.steps()[k].index != StepIndex::Any {
            cur = cur.wildcard_step(k);
        }
        out.push(cur.clone());
    }
    if out.is_empty() {
        out.push(base);
    }
    out
}

/// Field-rule variants across the example rows. Variant A uses the full
/// relative paths (lgg across examples); variant B truncates every
/// relative path to its first step, which is robust to inline wrappers
/// (`<b>`, `<span>`) present on some rows only.
fn field_rule_variants(html: &HtmlDocument, located: &[LocatedRow]) -> Vec<Vec<FieldRule>> {
    let arity = located.iter().map(|l| l.cells.len()).max().unwrap_or(0);
    let mut full: Vec<FieldRule> = Vec::with_capacity(arity);
    let mut truncated: Vec<FieldRule> = Vec::with_capacity(arity);
    for f in 0..arity {
        // A heading-style field: any example marked this column an outlier.
        let heading = located.iter().find_map(|l| {
            if l.outliers.contains(&f) {
                l.cells.get(f).copied().flatten().and_then(|n| html.tag(n))
            } else {
                None
            }
        });
        if let Some(tag) = heading {
            full.push(FieldRule::PrecedingHeading(tag.to_string()));
            truncated.push(FieldRule::PrecedingHeading(tag.to_string()));
            continue;
        }
        // lgg of the relative paths across the examples that carry the
        // field (empty cells constrain nothing); shape disagreements fall
        // back to the first carrying example's path.
        let mut rels = located.iter().filter_map(|l| {
            let cell = l.cells.get(f).copied().flatten()?;
            if l.outliers.contains(&f) || !is_descendant(html, l.record, cell) {
                None
            } else {
                relative_path(html, l.record, cell)
            }
        });
        let rel = match rels.next() {
            Some(first_rel) => rels
                .try_fold(first_rel.clone(), |acc, p| acc.lgg(&p))
                .unwrap_or(first_rel),
            None => TagPath::default(),
        };
        let trunc = TagPath::new(rel.steps().iter().take(1).cloned().collect());
        full.push(FieldRule::Relative(rel));
        truncated.push(FieldRule::Relative(trunc));
    }
    if full == truncated {
        vec![full]
    } else {
        vec![truncated, full]
    }
}

fn with_filter(w: &Wrapper, filter: RecordFilter) -> Wrapper {
    match w {
        Wrapper::Html { record_path, fields, filters, scope } => {
            let mut filters = filters.clone();
            filters.push(filter);
            Wrapper::Html {
                record_path: record_path.clone(),
                fields: fields.clone(),
                filters,
                scope: scope.clone(),
            }
        }
        other => other.clone(),
    }
}

fn with_scope(w: &Wrapper, scope: PageScope) -> Wrapper {
    match w {
        Wrapper::Html { record_path, fields, filters, .. } => Wrapper::Html {
            record_path: record_path.clone(),
            fields: fields.clone(),
            filters: filters.clone(),
            scope,
        },
        other => other.clone(),
    }
}

/// The page's visible text, one block-level element per line (fallback
/// substrate for landmark induction).
fn page_text_lines(html: &HtmlDocument) -> String {
    const BLOCKS: &[&str] = &["p", "li", "tr", "h1", "h2", "h3", "div", "dd", "dt"];
    let mut out = String::new();
    for id in html.iter() {
        if let Some(tag) = html.tag(id) {
            if BLOCKS.contains(&tag) {
                // Only leaf-most blocks: skip if a child is also a block.
                let has_block_child = html
                    .descendants(id)
                    .into_iter()
                    .any(|d| html.tag(d).is_some_and(|t| BLOCKS.contains(&t)));
                if !has_block_child {
                    let line = html.text_content(id);
                    if !line.is_empty() {
                        out.push_str(&line);
                        out.push('\n');
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_document::corpus::{render_list, Faker, ListSpec, Tier};

    fn shelters(n: usize) -> Vec<Vec<String>> {
        Faker::new(11).shelters(n)
    }

    fn learn_tier(tier: Tier, n_examples: usize) -> (Vec<Vec<String>>, Vec<ScoredWrapper>) {
        let rows = shelters(16);
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], tier, 5);
        let rendered = render_list(&spec, &rows);
        let doc = Document::Site(rendered.site);
        let registry = TypeRegistry::with_builtins();
        let learner = StructureLearner::new();
        let examples: Vec<Vec<String>> = rows[..n_examples].to_vec();
        let hyps = learner.learn(&doc, &examples, &registry);
        (rows, hyps)
    }

    fn recall(expected: &[Vec<String>], got: &[Vec<String>]) -> f64 {
        let hit = expected.iter().filter(|e| got.contains(e)).count();
        hit as f64 / expected.len() as f64
    }

    #[test]
    fn clean_tier_one_example_generalizes_fully() {
        let (rows, hyps) = learn_tier(Tier::Clean, 1);
        assert!(!hyps.is_empty());
        let top = &hyps[0];
        assert!(
            recall(&rows, &top.rows) > 0.99,
            "top hypothesis should extract all rows, got {} of {}",
            top.rows.len(),
            rows.len()
        );
    }

    #[test]
    fn noisy_tier_two_examples() {
        let (rows, hyps) = learn_tier(Tier::Noisy, 2);
        assert!(!hyps.is_empty());
        let top = &hyps[0];
        assert!(recall(&rows, &top.rows) > 0.9, "recall too low: {}", recall(&rows, &top.rows));
    }

    #[test]
    fn nested_tier_extracts_with_heading_field() {
        let (rows, hyps) = learn_tier(Tier::Nested, 2);
        assert!(!hyps.is_empty(), "nested tier should learn something");
        let top = &hyps[0];
        assert!(
            recall(&rows, &top.rows) > 0.8,
            "recall too low: {} rows extracted {:?}",
            top.rows.len(),
            top.rows.first()
        );
    }

    #[test]
    fn multipage_tier_crawls_all_pages() {
        let (rows, hyps) = learn_tier(Tier::MultiPage, 1);
        assert!(!hyps.is_empty());
        let top = &hyps[0];
        assert!(
            recall(&rows, &top.rows) > 0.99,
            "multi-page extraction incomplete: {} of {}",
            top.rows.len(),
            rows.len()
        );
        if let Wrapper::Html { scope, .. } = &top.wrapper {
            assert_eq!(*scope, PageScope::AllPages);
        } else {
            panic!("expected html wrapper");
        }
    }

    #[test]
    fn sheet_learning() {
        let sheet = copycat_document::Sheet::new(
            "contacts",
            Some(vec!["Who".into(), "Phone".into()]),
            vec![
                vec!["Ann".into(), "555-0101".into()],
                vec!["Bob".into(), "555-0102".into()],
                vec!["Cy".into(), "555-0103".into()],
            ],
        );
        let doc = Document::Sheet(sheet);
        let reg = TypeRegistry::with_builtins();
        let hyps = StructureLearner::new().learn(
            &doc,
            &[vec!["Bob".to_string(), "555-0102".to_string()]],
            &reg,
        );
        assert_eq!(hyps.len(), 1);
        assert_eq!(hyps[0].rows.len(), 3);
    }

    #[test]
    fn unlocatable_examples_yield_nothing() {
        let (_, hyps) = {
            let rows = shelters(5);
            let spec = ListSpec::new("S", &["N", "St", "C"], Tier::Clean, 1);
            let rendered = render_list(&spec, &rows);
            let doc = Document::Site(rendered.site);
            let reg = TypeRegistry::with_builtins();
            let learner = StructureLearner::new();
            (
                rows,
                learner.learn(&doc, &[vec!["Not There".to_string()]], &reg),
            )
        };
        assert!(hyps.is_empty());
    }

    #[test]
    fn figure1_city_scoped_alternative_exists() {
        // Both examples are in the same city: "it is not immediately
        // clear whether the proper generalization is to copy the entire
        // list, or copy just the shelters in Coconut Creek" (§3.1). The
        // most-general hypothesis wins, but the city-scoped one must be
        // among the alternatives.
        let mut rows = shelters(12);
        rows[0][2] = "Coconut Creek".to_string();
        rows[1][2] = "Coconut Creek".to_string();
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], Tier::Clean, 3);
        let rendered = render_list(&spec, &rows);
        let doc = Document::Site(rendered.site);
        let registry = TypeRegistry::with_builtins();
        let hyps = StructureLearner::new().learn(&doc, &rows[..2].to_vec(), &registry);
        let n_creek = rows.iter().filter(|r| r[2] == "Coconut Creek").count();
        // Top hypothesis: the whole list.
        assert_eq!(hyps[0].rows.len(), rows.len());
        // Some alternative extracts exactly the Coconut Creek subset.
        assert!(
            hyps.iter().any(|h| h.rows.len() == n_creek
                && h.rows.iter().all(|r| r[2] == "Coconut Creek")),
            "city-scoped alternative missing; got sizes {:?}",
            hyps.iter().map(|h| h.rows.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sparse_example_teaches_blank_tolerance() {
        let mut rows = shelters(12);
        rows[3][1] = String::new();
        rows[9][1] = String::new();
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], Tier::Clean, 5);
        let rendered = render_list(&spec, &rows);
        let doc = Document::Site(rendered.site);
        let registry = TypeRegistry::with_builtins();
        let learner = StructureLearner::new();
        // One complete example: blank-street rows are filtered out.
        let one = learner.learn(&doc, &rows[..1].to_vec(), &registry);
        assert_eq!(one[0].rows.len(), 10);
        // Adding the sparse row as a second example keeps them.
        let two = learner.learn(&doc, &vec![rows[0].clone(), rows[3].clone()], &registry);
        assert_eq!(two[0].rows.len(), 12, "{:?}", two[0].wrapper.describe());
    }

    #[test]
    fn suggestions_are_ranked_and_bounded() {
        let (_, hyps) = learn_tier(Tier::Clean, 2);
        assert!(hyps.len() <= LearnOptions::default().max_hypotheses);
        for pair in hyps.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
