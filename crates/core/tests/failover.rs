//! End-to-end fault-tolerance properties (PR 5 acceptance):
//!
//! * with ≤30% injected failures and a replacement source registered,
//!   autocomplete accepts the *same rows byte-for-byte* as a healthy
//!   run — retries recover the primary, or ranking/failover routes to
//!   the equivalent replacement;
//! * every degraded answer carries a provenance-visible `degraded:`
//!   annotation surfaced by `explain`.

use copycat_core::explain::render;
use copycat_core::{explain, explain_row, CopyCat};
use copycat_document::corpus::{render_list, ListSpec, Tier};
use copycat_document::Document;
use copycat_query::Renamed;
use copycat_services::{BreakerState, Flaky, RetryPolicy, World, WorldConfig, ZipResolver};
use std::sync::Arc;

fn world() -> Arc<World> {
    Arc::new(World::generate(&WorldConfig {
        // Same collision-free seed the engine unit tests use.
        seed: 15,
        cities: 4,
        streets_per_city: 6,
        venues: 10,
    }))
}

/// Import the shelter site into a fresh engine (no services yet).
fn imported_engine(w: &Arc<World>) -> CopyCat {
    let rows = w.shelter_rows();
    let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], Tier::Clean, 3);
    let doc_model = Document::Site(render_list(&spec, &rows).site);
    let mut cc = CopyCat::new();
    let doc = cc.open(doc_model);
    let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
    cc.paste_example(doc, &first);
    cc.accept_suggested_rows();
    cc.name_column(0, "Name");
    cc.set_column_type(2, "PR-City");
    cc.commit_source("Shelters");
    cc
}

/// Run autocomplete to completion: take the best Zip suggestion,
/// accept it, and return (suggested values, final workspace cells).
fn accept_zip(cc: &mut CopyCat) -> (Vec<Vec<String>>, Vec<Vec<String>>) {
    let suggs = cc.column_suggestions();
    let zip = suggs
        .iter()
        .find(|s| s.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("a zip completion is offered")
        .clone();
    cc.accept_column(&zip);
    let cells: Vec<Vec<String>> = cc
        .workspace()
        .active()
        .rows
        .iter()
        .map(|r| r.cells.clone())
        .collect();
    (zip.values, cells)
}

/// ≤30% failure rate + bounded retries: the accepted rows are
/// byte-identical to a healthy run's. Deterministic rerolls mean a
/// failed attempt succeeds on retry, so the primary itself recovers;
/// if any input still exhausted its retries, the healthy replacement
/// outranks the degraded primary and supplies the same values.
#[test]
fn chaos_run_accepts_same_rows_as_healthy_run() {
    let w = world();

    let mut healthy = imported_engine(&w);
    healthy.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
    let (healthy_values, healthy_cells) = accept_zip(&mut healthy);

    let mut chaos = imported_engine(&w);
    let flaky = Arc::new(Flaky::new(
        Arc::new(ZipResolver::new(Arc::clone(&w))),
        0.3,
        10,
        42,
    ));
    let resilient = chaos.register_resilient(flaky, RetryPolicy::default());
    chaos.register_service(Arc::new(Renamed::new(
        "zip_backup",
        Arc::new(ZipResolver::new(Arc::clone(&w))),
    )));
    let (chaos_values, chaos_cells) = accept_zip(&mut chaos);

    assert_eq!(chaos_values, healthy_values, "accepted values match");
    assert_eq!(chaos_cells, healthy_cells, "workspace rows byte-identical");
    // The injected faults were real: the resilient wrapper had to retry,
    // and the backoff it charged is virtual latency, not wallclock.
    let snap = resilient.snapshot();
    assert!(snap.calls > 0, "primary was exercised: {snap:?}");
    if snap.failures + snap.retries == 0 {
        // Seed produced no faults at all — then the test proved nothing;
        // fail loudly so the seed gets changed rather than rotting.
        panic!("seed injected no faults; pick a seed that does: {snap:?}");
    }
    assert_eq!(snap.backoff_virtual_ms, resilient.backoff_virtual_ms());
}

/// A hard-down primary trips its breaker; the healthy replacement is
/// ranked first, failover re-planning runs with the tripped edges
/// banned, and the final rows still match the healthy run.
#[test]
fn breaker_trips_and_failover_matches_healthy_run() {
    let w = world();

    let mut healthy = imported_engine(&w);
    healthy.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
    let (_, healthy_cells) = accept_zip(&mut healthy);

    let mut chaos = imported_engine(&w);
    let flaky = Arc::new(Flaky::new(
        Arc::new(ZipResolver::new(Arc::clone(&w))),
        1.0, // hard down
        10,
        7,
    ));
    let resilient = chaos.register_resilient(flaky, RetryPolicy::default());
    chaos.register_service(Arc::new(Renamed::new(
        "zip_backup",
        Arc::new(ZipResolver::new(Arc::clone(&w))),
    )));

    let suggs = chaos.column_suggestions();
    let zips: Vec<_> = suggs
        .iter()
        .filter(|s| s.new_fields.iter().any(|f| f.name == "Zip"))
        .collect();
    assert!(!zips.is_empty(), "the healthy backup still completes Zip");
    // Healthy completions sort above degraded ones, so the best zip
    // completion is the backup, not the dead primary.
    let best = zips[0];
    assert!(best.degraded.is_none(), "best completion is healthy: {best:?}");
    assert!(best.label.contains("zip_backup"), "{}", best.label);
    // Every degraded completion announces itself, and its provenance
    // carries the annotation `explain` surfaces.
    for s in suggs.iter().filter(|s| s.degraded.is_some()) {
        let note = s.degraded.as_deref().unwrap();
        assert!(note.contains("zip_resolver"), "blames the primary: {note}");
        for p in s.provenance.iter().flatten() {
            let e = explain(p);
            assert!(!e.degraded.is_empty(), "degraded label visible: {e:?}");
        }
    }

    // The breaker actually tripped and the registry reports it.
    assert_eq!(resilient.breaker_state(), BreakerState::Open);
    let tripped = chaos.health().tripped_services();
    assert_eq!(tripped, vec!["zip_resolver".to_string()]);
    let snap = chaos
        .health()
        .get("zip_resolver")
        .expect("registry entry for the primary")
        .snapshot();
    assert!(snap.trips >= 1, "{snap:?}");
    assert!(snap.failures > 0, "{snap:?}");

    // Accepting the backup yields the same workspace as the healthy run.
    let best = best.clone();
    chaos.accept_column(&best);
    let chaos_cells: Vec<Vec<String>> = chaos
        .workspace()
        .active()
        .rows
        .iter()
        .map(|r| r.cells.clone())
        .collect();
    assert_eq!(chaos_cells, healthy_cells, "failover rows byte-identical");
}

/// Accepting a *degraded* completion (no replacement registered) leaves
/// a provenance-visible annotation on every answered row, and `explain`
/// renders it.
#[test]
fn accepted_degraded_rows_explain_why() {
    let w = world();
    let mut cc = imported_engine(&w);
    // A plain flaky primary, no retry wrapper and no backup: roughly
    // half the calls fail, so the completion is partial and degraded.
    cc.register_service(Arc::new(Flaky::new(
        Arc::new(ZipResolver::new(Arc::clone(&w))),
        0.5,
        10,
        42,
    )));
    let suggs = cc.column_suggestions();
    let zip = suggs
        .iter()
        .find(|s| s.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("partial answers still suggested")
        .clone();
    let note = zip.degraded.clone().expect("completion marked degraded");
    assert!(note.contains("zip_resolver"), "{note}");
    cc.accept_column(&zip);
    let tab = cc.workspace().active();
    let mut explained = 0;
    for (i, v) in zip.values.iter().enumerate() {
        if v.iter().all(String::is_empty) {
            continue; // unanswered rows have no new provenance
        }
        let e = explain_row(tab, i).expect("row exists");
        assert!(
            e.degraded.iter().any(|d| d.contains("zip_resolver")),
            "row {i}: {e:?}"
        );
        assert!(render(&e).contains("Degraded:"), "row {i}");
        explained += 1;
    }
    assert!(explained > 0, "at least one answered row was explained");
}
