//! Integration and property tests for transform edges in the engine:
//! learned programs surface as column suggestions, MIRA rejection bans
//! them, and undo removes the edge entirely.

use copycat_core::{CopyCat, Scenario, ScenarioConfig};
use copycat_services::World;
use copycat_util::check::check;
use copycat_util::{prop_ensure, prop_ensure_eq};

/// Shelters + Contacts + the messy Directory, with a learned phone
/// transform bridging Contacts → Directory, focused on Contacts.
fn transform_scenario(venues: usize) -> Scenario {
    let mut s = Scenario::build(&ScenarioConfig { venues, ..Default::default() });
    s.import_shelters(1);
    s.import_directory();
    s.import_contacts();
    let examples: Vec<(String, String)> = s
        .contact_rows
        .iter()
        .take(3)
        .map(|r| (r[1].clone(), World::directory_phone(&r[1])))
        .collect();
    s.engine
        .learn_transform("Contacts", "Phone", "Directory", "Phone", &examples)
        .expect("phone reformat is learnable");
    assert!(s.engine.switch_tab_to_source("Contacts"));
    s
}

fn transform_labels(engine: &mut CopyCat) -> Vec<String> {
    engine
        .column_suggestions()
        .iter()
        .filter(|c| c.label.starts_with("T:"))
        .map(|c| c.label.clone())
        .collect()
}

/// The learned edge ranks as a suggestion; rejecting it bans it: at the
/// same graph version it never reappears in top-k, however often the
/// ranking is recomputed.
#[test]
fn banned_transform_edge_never_reappears_at_same_graph_version() {
    check("banned-transform-edge-stays-banned", 6, &[], |g| {
        let venues = g.usize_in(6..14);
        let mut s = transform_scenario(venues);
        prop_ensure!(
            !transform_labels(&mut s.engine).is_empty(),
            "learned transform edge should rank as a suggestion"
        );
        let banned = s
            .engine
            .column_suggestions()
            .into_iter()
            .find(|c| c.label.starts_with("T:"))
            .expect("present per the check above");
        s.engine.reject_column(&banned);
        let version = s.engine.graph().version();
        // Recompute top-k several times: the ban must hold as long as
        // the graph does not change.
        for round in 0..3 {
            let labels = transform_labels(&mut s.engine);
            prop_ensure!(
                !labels.contains(&banned.label),
                "banned edge resurfaced in round {round}: {labels:?}"
            );
            prop_ensure_eq!(
                s.engine.graph().version(),
                version,
                "ranking recomputation must not mutate the graph"
            );
        }
        Ok(())
    });
}

/// Undo after learning removes the transform edge (not merely demotes
/// it) and bumps the graph version.
#[test]
fn undo_removes_learned_transform_edge_and_bumps_version() {
    let mut s = Scenario::build(&ScenarioConfig { venues: 8, ..Default::default() });
    s.import_shelters(1);
    s.import_directory();
    s.import_contacts();
    let before_edges = s.engine.graph().edge_count();
    let examples: Vec<(String, String)> = s
        .contact_rows
        .iter()
        .take(2)
        .map(|r| (r[1].clone(), World::directory_phone(&r[1])))
        .collect();
    s.engine
        .learn_transform("Contacts", "Phone", "Directory", "Phone", &examples)
        .expect("learnable");
    assert_eq!(s.engine.graph().edge_count(), before_edges + 1);
    assert_eq!(s.engine.list_transforms().len(), 1);
    let version_with_edge = s.engine.graph().version();

    assert!(s.engine.undo());
    assert_eq!(s.engine.graph().edge_count(), before_edges, "undo removes the edge");
    assert!(s.engine.list_transforms().is_empty());
    assert!(
        s.engine.graph().version() > version_with_edge,
        "undo bumps the graph version so cached rankings invalidate"
    );
}

/// The transform edge's derive-then-join plan actually answers: joining
/// Contacts to the Directory through the learned phone program recovers
/// the registration date for nearly every contact, while without the
/// transform the formats never match.
#[test]
fn transform_join_recovers_directory_values() {
    let mut s = transform_scenario(12);
    let sugg = s
        .engine
        .column_suggestions()
        .into_iter()
        .find(|c| c.label.starts_with("T:"))
        .expect("transform suggestion");
    let rows = sugg.values.len();
    let answered = sugg
        .values
        .iter()
        .filter(|vals| vals.iter().any(|v| !v.is_empty()))
        .count();
    assert!(rows > 0);
    assert!(
        answered as f64 >= 0.95 * rows as f64,
        "transform join answered {answered}/{rows} rows"
    );
}
