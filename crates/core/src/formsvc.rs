//! Web forms as services (§4).
//!
//! "We also model Web forms as services that require inputs." A
//! [`FormService`] wraps a form page of a [`Website`]: calling it fills
//! the form, "navigates" to the resulting page, and extracts the answer
//! with a learned wrapper — so a form-driven lookup site participates in
//! dependent joins exactly like a programmatic service.

use copycat_document::{Document, Form, Website};
use copycat_extract::{execute as run_wrapper, StructureLearner, Wrapper};
use copycat_query::{Field, Schema, Service, Signature, Value};
use copycat_semantic::TypeRegistry;
use std::sync::Arc;

/// A form-driven Web site exposed as a catalog service.
pub struct FormService {
    name: String,
    site: Arc<Website>,
    form: Form,
    wrapper: Wrapper,
    signature: Signature,
}

impl FormService {
    /// Wrap a site's form. `inputs` name (and optionally type) the form's
    /// parameters in order; `outputs` describe the extracted columns;
    /// `wrapper` extracts rows from result pages. The wrapper's page
    /// scope is ignored — it runs against the page the form submission
    /// resolves to.
    pub fn new(
        name: impl Into<String>,
        site: Arc<Website>,
        form: Form,
        wrapper: Wrapper,
        inputs: Vec<Field>,
        outputs: Vec<Field>,
    ) -> Self {
        Self {
            name: name.into(),
            site,
            form,
            wrapper,
            signature: Signature {
                inputs: Schema::new(inputs),
                outputs: Schema::new(outputs),
            },
        }
    }

    /// Learn a `FormService` from one demonstrated lookup: submit the
    /// form with `example_inputs`, locate `example_outputs` on the result
    /// page, and induce a wrapper for it (§3.1's generalization, applied
    /// to a form's result pages). Returns `None` when the result page
    /// does not exist or the outputs cannot be located.
    // One argument per demonstrated artifact; bundling them would only
    // move the count into a one-use spec struct.
    #[allow(clippy::too_many_arguments)]
    pub fn learn(
        name: impl Into<String>,
        site: Arc<Website>,
        form: Form,
        example_inputs: &[&str],
        example_outputs: &[&str],
        inputs: Vec<Field>,
        outputs: Vec<Field>,
        registry: &TypeRegistry,
    ) -> Option<Self> {
        let url = form.submit(example_inputs);
        let page = site.get(&url)?;
        // Learn on a single-page pseudo-site so the wrapper scope stays
        // on result pages.
        let mut single = Website::new();
        single.add_page(page.clone());
        let doc = Document::Site(single);
        let example: Vec<String> = example_outputs.iter().map(|s| s.to_string()).collect();
        let learner = StructureLearner::new();
        let hyps = learner.learn(&doc, std::slice::from_ref(&example), registry);
        let wrapper = hyps.into_iter().next()?.wrapper;
        Some(Self::new(name, site, form, wrapper, inputs, outputs))
    }
}

impl Service for FormService {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        let texts: Vec<String> = inputs.iter().map(Value::as_text).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let url = self.form.submit(&refs);
        let Some(page) = self.site.get(&url) else {
            return Vec::new();
        };
        // Run the wrapper against the result page (single-page scope).
        let mut single = Website::new();
        single.add_page(page.clone());
        let rewrapped = match &self.wrapper {
            Wrapper::Html { record_path, fields, filters, .. } => Wrapper::Html {
                record_path: record_path.clone(),
                fields: fields.clone(),
                filters: filters.clone(),
                scope: copycat_extract::PageScope::SinglePage(url),
            },
            other => other.clone(),
        };
        run_wrapper(&rewrapped, &Document::Site(single))
            .into_iter()
            .map(|row| row.iter().map(|v| Value::parse(v)).collect())
            .collect()
    }

    fn cost(&self) -> f64 {
        // A form round trip is costlier than a direct API.
        1.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_query::Catalog;

    /// A zip-lookup site: `/` hosts the form, `/zip?city=…&street=…`
    /// pages carry the answer.
    fn zip_form_site() -> (Arc<Website>, Form) {
        let mut site = Website::new();
        site.add_html(
            "/",
            "<h1>Zip lookup</h1>\
             <form action=\"/zip\"><input name=\"street\"><input name=\"city\"></form>",
        );
        let lookups = [
            ("100 Oak St", "Margate", "33063"),
            ("200 Elm Ave", "Tamarac", "33321"),
            ("300 Pine Rd", "Margate", "33065"),
        ];
        let form = Form {
            action: "/zip".into(),
            params: vec!["street".into(), "city".into()],
        };
        for (street, city, zip) in lookups {
            let url = form.submit(&[street, city]);
            site.add_html(
                url.as_str(),
                &format!(
                    "<h1>Result</h1><table><tr><th>Zip</th></tr><tr><td>{zip}</td></tr></table>"
                ),
            );
        }
        (Arc::new(site), form)
    }

    fn learned_service() -> FormService {
        let (site, form) = zip_form_site();
        FormService::learn(
            "zip_form",
            site,
            form,
            &["100 Oak St", "Margate"],
            &["33063"],
            vec![
                Field::typed("street", "PR-Street"),
                Field::typed("city", "PR-City"),
            ],
            vec![Field::typed("Zip", "PR-Zip")],
            &TypeRegistry::with_builtins(),
        )
        .expect("learnable from one demonstration")
    }

    #[test]
    fn learned_form_service_answers_unseen_lookups() {
        let svc = learned_service();
        let out = svc.call(&[Value::str("200 Elm Ave"), Value::str("Tamarac")]);
        assert_eq!(out, vec![vec![Value::str("33321")]]);
        // Unknown lookups return no rows, not junk.
        assert!(svc.call(&[Value::str("9 Nowhere"), Value::str("Atlantis")]).is_empty());
    }

    #[test]
    fn form_service_joins_like_any_service() {
        use copycat_query::{Plan, Relation};
        let catalog = Catalog::new();
        catalog.add_relation(Relation::from_strings(
            "Shelters",
            Schema::new(vec![
                Field::new("Name"),
                Field::typed("Street", "PR-Street"),
                Field::typed("City", "PR-City"),
            ]),
            &[
                vec!["A".into(), "100 Oak St".into(), "Margate".into()],
                vec!["B".into(), "200 Elm Ave".into(), "Tamarac".into()],
            ],
        ));
        catalog.add_service(Arc::new(learned_service()));
        let plan = Plan::scan("Shelters").dependent_join("zip_form", &["Street", "City"]);
        let result = copycat_query::execute(&plan, &catalog).expect("executes");
        assert_eq!(result.len(), 2);
        assert_eq!(result.tuples()[0].values[3], Value::str("33063"));
        assert_eq!(result.tuples()[1].values[3], Value::str("33321"));
    }

    #[test]
    fn signature_reflects_bindings() {
        let svc = learned_service();
        assert_eq!(svc.signature().inputs.arity(), 2);
        assert_eq!(svc.signature().outputs.names(), vec!["Zip"]);
        assert!(svc.cost() > 1.0);
    }
}
