//! Session persistence.
//!
//! Example 1 ends with two options for the assembled table: a one-off
//! query, or "it could be persistently saved as an integrated, mediated
//! view of the data, enabling user or application queries over a unified
//! representation." A [`SavedSession`] captures everything re-usable
//! across sessions: the imported relations, the source graph with its
//! *learned edge costs*, the learned wrappers (so sources can be
//! re-extracted when their documents are reopened), and the user-defined
//! semantic types.
//!
//! Live documents and service closures are deliberately not serialized —
//! they are reattached on load ([`CopyCat::attach_wrapper_document`],
//! [`CopyCat::register_service`]).

use crate::engine::CopyCat;
use copycat_extract::Wrapper;
use copycat_graph::{Edge, Node, SourceGraph};
use copycat_query::{Relation, Schema};
use copycat_semantic::PatternSet;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};

/// One saved relation.
#[derive(Debug, Clone)]
pub struct SavedRelation {
    /// Catalog name.
    pub name: String,
    /// Schema (with semantic types).
    pub schema: Schema,
    /// Rows as text (base provenance is re-derived on load).
    pub rows: Vec<Vec<String>>,
}

impl ToJson for SavedRelation {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name".into(), self.name.to_json()),
            ("schema".into(), self.schema.to_json()),
            ("rows".into(), self.rows.to_json()),
        ])
    }
}

impl FromJson for SavedRelation {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SavedRelation {
            name: String::from_json(j.field("name")?)?,
            schema: Schema::from_json(j.field("schema")?)?,
            rows: Vec::from_json(j.field("rows")?)?,
        })
    }
}

/// A saved session.
#[derive(Debug, Clone)]
pub struct SavedSession {
    /// Imported relations.
    pub relations: Vec<SavedRelation>,
    /// Source-graph nodes (relations *and* services; service nodes let
    /// edge ids stay stable even before services are re-registered).
    pub graph_nodes: Vec<Node>,
    /// Source-graph edges with their learned costs.
    pub graph_edges: Vec<Edge>,
    /// Learned wrappers by source name (documents reattach on load).
    pub wrappers: Vec<(String, Wrapper)>,
    /// User-defined semantic types.
    pub user_types: Vec<(String, PatternSet)>,
}

impl ToJson for SavedSession {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("relations".into(), self.relations.to_json()),
            ("graph_nodes".into(), self.graph_nodes.to_json()),
            ("graph_edges".into(), self.graph_edges.to_json()),
            ("wrappers".into(), self.wrappers.to_json()),
            ("user_types".into(), self.user_types.to_json()),
        ])
    }
}

impl FromJson for SavedSession {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SavedSession {
            relations: Vec::from_json(j.field("relations")?)?,
            graph_nodes: Vec::from_json(j.field("graph_nodes")?)?,
            graph_edges: Vec::from_json(j.field("graph_edges")?)?,
            wrappers: Vec::from_json(j.field("wrappers")?)?,
            user_types: Vec::from_json(j.field("user_types")?)?,
        })
    }
}

impl CopyCat {
    /// Capture the persistent state of this session.
    pub fn save_session(&self) -> SavedSession {
        let relations = self
            .catalog()
            .relation_names()
            .into_iter()
            .filter_map(|name| self.catalog().relation(&name))
            // Derived link-index relations are rebuilt on demand.
            .filter(|r| !r.name().contains('≈'))
            .map(|r| SavedRelation {
                name: r.name().to_string(),
                schema: r.schema().clone(),
                rows: r.as_texts(),
            })
            .collect();
        let graph_nodes = self.graph().node_ids().map(|n| self.graph().node(n).clone()).collect();
        let graph_edges = self.graph().edge_ids().map(|e| self.graph().edge(e).clone()).collect();
        SavedSession {
            relations,
            graph_nodes,
            graph_edges,
            wrappers: self.saved_wrappers(),
            user_types: self
                .registry()
                .user_types()
                .into_iter()
                .map(|t| (t.name.clone(), t.patterns.clone()))
                .collect(),
        }
    }

    /// Serialize to JSON.
    pub fn save_session_json(&self) -> String {
        self.save_session().to_json().to_string_pretty()
    }

    /// Restore a session into a fresh engine: relations re-materialize,
    /// the graph returns with its learned costs, wrappers await document
    /// reattachment, user types re-register. Services must be
    /// re-registered by the caller (their closures are not serializable);
    /// existing graph nodes are reused so learned costs survive.
    pub fn load_session(saved: &SavedSession) -> CopyCat {
        let mut cc = CopyCat::new();
        for r in &saved.relations {
            cc.catalog()
                .add_relation(Relation::from_strings(&r.name, r.schema.clone(), &r.rows));
        }
        cc.restore_graph(SourceGraph::from_parts(
            saved.graph_nodes.clone(),
            saved.graph_edges.clone(),
        ));
        for (name, w) in &saved.wrappers {
            cc.restore_wrapper(name, w.clone());
        }
        for (name, patterns) in &saved.user_types {
            cc.registry_mut().install_user_type(name, patterns.clone());
        }
        cc
    }

    /// Restore from JSON.
    pub fn load_session_json(json: &str) -> Result<CopyCat, JsonError> {
        Ok(Self::load_session(&SavedSession::from_json(&Json::parse(
            json,
        )?)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Scenario, ScenarioConfig};
    use crate::CopyCat;
    use copycat_services::ZipResolver;
    use std::sync::Arc;

    fn trained_scenario() -> Scenario {
        let mut s = Scenario::build(&ScenarioConfig { venues: 10, ..Default::default() });
        s.import_shelters(1);
        // Learn something: reject the geocoder completion so its edge
        // cost is demoted — the restored session must remember that.
        let suggs = s.engine.column_suggestions();
        let geo = suggs
            .iter()
            .find(|c| c.new_fields.iter().any(|f| f.name == "Lat"))
            .expect("geocoder suggestion")
            .clone();
        s.engine.reject_column(&geo);
        s.engine
            .registry_mut()
            .learn_type("ShelterCode", &["SHL-0001", "SHL-0002", "SHL-9913"]);
        s
    }

    #[test]
    fn roundtrip_preserves_relations_graph_and_types() {
        let s = trained_scenario();
        let json = s.engine.save_session_json();
        let restored = CopyCat::load_session_json(&json).expect("valid json");
        // Relations.
        let rel = restored.catalog().relation("Shelters").expect("restored");
        assert_eq!(rel.len(), 10);
        assert_eq!(
            rel.schema().names(),
            s.engine.catalog().relation("Shelters").unwrap().schema().names()
        );
        // Graph topology and learned costs.
        assert_eq!(restored.graph().node_count(), s.engine.graph().node_count());
        assert_eq!(restored.graph().edge_count(), s.engine.graph().edge_count());
        for e in s.engine.graph().edge_ids() {
            assert_eq!(restored.graph().cost(e), s.engine.graph().cost(e));
        }
        // User-defined type.
        assert!(restored.registry().get("ShelterCode").is_some());
    }

    #[test]
    fn rejected_suggestion_stays_demoted_after_restore() {
        let s = trained_scenario();
        let json = s.engine.save_session_json();
        let mut restored = CopyCat::load_session_json(&json).expect("valid json");
        // Re-register the service implementation (closures don't persist);
        // the node already exists, so the learned edge costs survive.
        restored.register_service(Arc::new(ZipResolver::new(Arc::clone(&s.world))));
        restored.switch_tab_to_source("Shelters");
        let suggs = restored.column_suggestions();
        assert!(
            suggs.iter().any(|c| c.new_fields.iter().any(|f| f.name == "Zip")),
            "zip still suggested"
        );
        assert!(
            suggs.iter().all(|c| c.new_fields.iter().all(|f| f.name != "Lat")),
            "rejected geocoder stays below the threshold: {:?}",
            suggs.iter().map(|c| &c.label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wrappers_restore_detached_and_reattach() {
        let mut s = Scenario::build(&ScenarioConfig { venues: 8, ..Default::default() });
        s.import_shelters(1);
        let json = s.engine.save_session_json();
        let mut restored = CopyCat::load_session_json(&json).expect("valid json");
        assert_eq!(restored.saved_wrappers().len(), 1);
        // Reattach the shelter site and re-extract through the wrapper.
        let doc = restored.open(copycat_document::Document::Site(
            copycat_document::corpus::render_list(
                &copycat_document::corpus::ListSpec::new(
                    "County Shelters",
                    &["Name", "Street", "City"],
                    copycat_document::corpus::Tier::Clean,
                    2009,
                ),
                &s.shelter_rows,
            )
            .site,
        ));
        let n = restored.attach_wrapper_document("Shelters", doc);
        assert_eq!(n, Some(8), "re-extraction refreshes the relation");
    }
}
