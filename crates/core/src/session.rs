//! Session persistence.
//!
//! Example 1 ends with two options for the assembled table: a one-off
//! query, or "it could be persistently saved as an integrated, mediated
//! view of the data, enabling user or application queries over a unified
//! representation." A [`SavedSession`] captures everything re-usable
//! across sessions: the imported relations, the source graph with its
//! *learned edge costs*, the learned wrappers (so sources can be
//! re-extracted when their documents are reopened), and the user-defined
//! semantic types.
//!
//! Live documents and service closures are deliberately not serialized —
//! they are reattached on load ([`CopyCat::attach_wrapper_document`],
//! [`CopyCat::register_service`]).

use crate::engine::CopyCat;
use copycat_extract::Wrapper;
use copycat_graph::{Edge, Node, SourceGraph};
use copycat_query::{Relation, Schema};
use copycat_semantic::PatternSet;
use copycat_services::{Flaky, SavedFlakyState, SavedServiceHealth};
use copycat_util::json::{FromJson, Json, JsonError, ToJson};

/// One saved relation.
#[derive(Debug, Clone)]
pub struct SavedRelation {
    /// Catalog name.
    pub name: String,
    /// Schema (with semantic types).
    pub schema: Schema,
    /// Rows as text (base provenance is re-derived on load).
    pub rows: Vec<Vec<String>>,
}

impl ToJson for SavedRelation {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name".into(), self.name.to_json()),
            ("schema".into(), self.schema.to_json()),
            ("rows".into(), self.rows.to_json()),
        ])
    }
}

impl FromJson for SavedRelation {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SavedRelation {
            name: String::from_json(j.field("name")?)?,
            schema: Schema::from_json(j.field("schema")?)?,
            rows: Vec::from_json(j.field("rows")?)?,
        })
    }
}

/// A saved session.
#[derive(Debug, Clone)]
pub struct SavedSession {
    /// Imported relations.
    pub relations: Vec<SavedRelation>,
    /// Source-graph nodes (relations *and* services; service nodes let
    /// edge ids stay stable even before services are re-registered).
    pub graph_nodes: Vec<Node>,
    /// Source-graph edges with their learned costs.
    pub graph_edges: Vec<Edge>,
    /// Learned wrappers by source name (documents reattach on load).
    pub wrappers: Vec<(String, Wrapper)>,
    /// User-defined semantic types.
    pub user_types: Vec<(String, PatternSet)>,
    /// Runtime health of every resilient service: breaker status, retry
    /// and trip counters, and (for fault-injected inners) attempt maps.
    /// Without this a restore silently forgets tripped breakers — the
    /// restored engine would happily route through a service the saved
    /// one had already failed over from.
    pub health: Vec<SavedServiceHealth>,
    /// Fault-injection state of probes registered *without* the
    /// resilient layer, by service name.
    pub probes: Vec<(String, SavedFlakyState)>,
}

impl ToJson for SavedSession {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("relations".into(), self.relations.to_json()),
            ("graph_nodes".into(), self.graph_nodes.to_json()),
            ("graph_edges".into(), self.graph_edges.to_json()),
            ("wrappers".into(), self.wrappers.to_json()),
            ("user_types".into(), self.user_types.to_json()),
            ("health".into(), self.health.to_json()),
            ("probes".into(), self.probes.to_json()),
        ])
    }
}

impl FromJson for SavedSession {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SavedSession {
            relations: Vec::from_json(j.field("relations")?)?,
            graph_nodes: Vec::from_json(j.field("graph_nodes")?)?,
            graph_edges: Vec::from_json(j.field("graph_edges")?)?,
            wrappers: Vec::from_json(j.field("wrappers")?)?,
            user_types: Vec::from_json(j.field("user_types")?)?,
            // Absent in sessions saved before health persisted: treat as
            // "no resilient services had been registered".
            health: match j.get("health") {
                Some(h) => Vec::from_json(h)?,
                None => Vec::new(),
            },
            probes: match j.get("probes") {
                Some(p) => Vec::from_json(p)?,
                None => Vec::new(),
            },
        })
    }
}

impl CopyCat {
    /// Capture the persistent state of this session.
    pub fn save_session(&self) -> SavedSession {
        let relations = self
            .catalog()
            .relation_names()
            .into_iter()
            .filter_map(|name| self.catalog().relation(&name))
            // Derived link-index relations are rebuilt on demand.
            .filter(|r| !r.name().contains('≈'))
            .map(|r| SavedRelation {
                name: r.name().to_string(),
                schema: r.schema().clone(),
                rows: r.as_texts(),
            })
            .collect();
        let graph_nodes = self.graph().node_ids().map(|n| self.graph().node(n).clone()).collect();
        let graph_edges = self.graph().edge_ids().map(|e| self.graph().edge(e).clone()).collect();
        // Direct (non-resilient) fault-injection probes in the catalog.
        // Resilient-wrapped inners are carried by their wrapper's
        // SavedServiceHealth instead; `Service::as_any` is None for the
        // wrapper, so each stateful instance is captured exactly once.
        let probes = self
            .catalog()
            .service_names()
            .into_iter()
            .filter_map(|name| {
                let svc = self.catalog().service(&name)?;
                let flaky = svc.as_any()?.downcast_ref::<Flaky>()?;
                Some((name, flaky.saved_state()))
            })
            .collect();
        SavedSession {
            relations,
            graph_nodes,
            graph_edges,
            wrappers: self.saved_wrappers(),
            user_types: self
                .registry()
                .user_types()
                .into_iter()
                .map(|t| (t.name.clone(), t.patterns.clone()))
                .collect(),
            health: self.health().saved(),
            probes,
        }
    }

    /// Serialize to JSON.
    pub fn save_session_json(&self) -> String {
        self.save_session().to_json().to_string_pretty()
    }

    /// Restore a session into a fresh engine: relations re-materialize,
    /// the graph returns with its learned costs, wrappers await document
    /// reattachment, user types re-register. Services must be
    /// re-registered by the caller (their closures are not serializable);
    /// existing graph nodes are reused so learned costs survive, and
    /// saved runtime health (tripped breakers, retry/trip counters,
    /// fault-injection attempt maps) re-attaches to each service as it
    /// is re-registered.
    ///
    /// The restored engine's query cache is guaranteed cold: the graph
    /// swap replaces the [`crate::cache::QueryCache`] wholesale and the
    /// restored graph reports a fresh [`SourceGraph::version`], so no
    /// cached Steiner result from any earlier engine can be served
    /// against the restored graph (see
    /// `loaded_session_never_serves_stale_cached_queries`).
    pub fn load_session(saved: &SavedSession) -> CopyCat {
        let mut cc = CopyCat::new();
        for r in &saved.relations {
            cc.catalog()
                .add_relation(Relation::from_strings(&r.name, r.schema.clone(), &r.rows));
        }
        cc.restore_graph(SourceGraph::from_parts(
            saved.graph_nodes.clone(),
            saved.graph_edges.clone(),
        ));
        for (name, w) in &saved.wrappers {
            cc.restore_wrapper(name, w.clone());
        }
        for (name, patterns) in &saved.user_types {
            cc.registry_mut().install_user_type(name, patterns.clone());
        }
        cc.stash_saved_health(&saved.health, &saved.probes);
        cc
    }

    /// Restore from JSON.
    pub fn load_session_json(json: &str) -> Result<CopyCat, JsonError> {
        Ok(Self::load_session(&SavedSession::from_json(&Json::parse(
            json,
        )?)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{Scenario, ScenarioConfig};
    use crate::CopyCat;
    use copycat_services::ZipResolver;
    use std::sync::Arc;

    fn trained_scenario() -> Scenario {
        let mut s = Scenario::build(&ScenarioConfig { venues: 10, ..Default::default() });
        s.import_shelters(1);
        // Learn something: reject the geocoder completion so its edge
        // cost is demoted — the restored session must remember that.
        let suggs = s.engine.column_suggestions();
        let geo = suggs
            .iter()
            .find(|c| c.new_fields.iter().any(|f| f.name == "Lat"))
            .expect("geocoder suggestion")
            .clone();
        s.engine.reject_column(&geo);
        s.engine
            .registry_mut()
            .learn_type("ShelterCode", &["SHL-0001", "SHL-0002", "SHL-9913"]);
        s
    }

    #[test]
    fn roundtrip_preserves_relations_graph_and_types() {
        let s = trained_scenario();
        let json = s.engine.save_session_json();
        let restored = CopyCat::load_session_json(&json).expect("valid json");
        // Relations.
        let rel = restored.catalog().relation("Shelters").expect("restored");
        assert_eq!(rel.len(), 10);
        assert_eq!(
            rel.schema().names(),
            s.engine.catalog().relation("Shelters").unwrap().schema().names()
        );
        // Graph topology and learned costs.
        assert_eq!(restored.graph().node_count(), s.engine.graph().node_count());
        assert_eq!(restored.graph().edge_count(), s.engine.graph().edge_count());
        for e in s.engine.graph().edge_ids() {
            assert_eq!(restored.graph().cost(e), s.engine.graph().cost(e));
        }
        // User-defined type.
        assert!(restored.registry().get("ShelterCode").is_some());
    }

    #[test]
    fn rejected_suggestion_stays_demoted_after_restore() {
        let s = trained_scenario();
        let json = s.engine.save_session_json();
        let mut restored = CopyCat::load_session_json(&json).expect("valid json");
        // Re-register the service implementation (closures don't persist);
        // the node already exists, so the learned edge costs survive.
        restored.register_service(Arc::new(ZipResolver::new(Arc::clone(&s.world))));
        restored.switch_tab_to_source("Shelters");
        let suggs = restored.column_suggestions();
        assert!(
            suggs.iter().any(|c| c.new_fields.iter().any(|f| f.name == "Zip")),
            "zip still suggested"
        );
        assert!(
            suggs.iter().all(|c| c.new_fields.iter().all(|f| f.name != "Lat")),
            "rejected geocoder stays below the threshold: {:?}",
            suggs.iter().map(|c| &c.label).collect::<Vec<_>>()
        );
    }

    /// Regression (serve-layer bugfix): an engine restored from a saved
    /// session must start with a *cold* query cache and a fresh graph
    /// version. Before the fix, `restore_graph` only cleared the cache
    /// map (keeping counters) and `SourceGraph::from_parts` restarted
    /// version numbering at 0 — the same stamp a fresh engine's cached
    /// entries carry — so a cache that survived the swap could validate
    /// stale trees against the restored graph.
    #[test]
    fn loaded_session_never_serves_stale_cached_queries() {
        let mut s = Scenario::build(&ScenarioConfig { venues: 10, ..Default::default() });
        // Import both sources with a shared "Venue" column so a join
        // query across them is discoverable (the Example 1 pair).
        let row0: Vec<&str> = s.shelter_rows[0].iter().map(String::as_str).collect();
        s.engine.paste_example(s.shelters_doc, &row0);
        s.engine.accept_suggested_rows();
        s.engine.name_column(0, "Venue");
        s.engine.set_column_type(2, "PR-City");
        s.engine.commit_source("Shelters");
        s.engine.start_import_tab("contacts");
        let c0: Vec<&str> = s.contact_rows[0].iter().map(String::as_str).collect();
        s.engine.paste_example(s.contacts_doc, &c0);
        s.engine.accept_suggested_rows();
        s.engine.name_column(2, "Venue");
        s.engine.commit_source("Contacts");
        let values: Vec<&str> = vec![&s.shelter_rows[0][1], &s.contact_rows[0][1]];
        // Warm the donor engine's cache.
        let warm = s.engine.discover_queries_for_tuple(&values, 3);
        assert!(!warm.is_empty());
        s.engine.discover_queries_for_tuple(&values, 3);
        assert_eq!(s.engine.query_cache_stats().hits, 1);

        let json = s.engine.save_session_json();
        let restored = CopyCat::load_session_json(&json).expect("valid json");
        // The restored graph cannot collide with a fresh graph's version.
        assert!(restored.graph().version() > 0);
        assert_eq!(
            restored.graph().version(),
            (restored.graph().node_count() + restored.graph().edge_count()) as u64
        );
        // Counters restart with the engine: the first discovery is a
        // genuine miss, not a stale hit.
        assert_eq!(restored.query_cache_stats(), crate::cache::CacheStats::default());
        let after = restored.discover_queries_for_tuple(&values, 3);
        let stats = restored.query_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "{stats:?}");
        // And the freshly computed result agrees with a cold search on
        // the restored graph.
        let terminals: Vec<copycat_graph::NodeId> = ["Shelters", "Contacts"]
            .iter()
            .filter_map(|n| restored.graph().node_by_name(n))
            .collect();
        let cold = crate::autocomplete::discover_queries(
            restored.graph(),
            restored.catalog(),
            &terminals,
            3,
        );
        assert_eq!(after.len(), cold.len());
        for (a, b) in after.iter().zip(cold.iter()) {
            assert_eq!(a.tree, b.tree);
        }
    }

    /// Seeded property: `save_session_json` → `load_session_json` is
    /// lossless for relations, learned edge costs, and user-defined
    /// types, for arbitrary world sizes, feedback histories, and
    /// learned type vocabularies.
    #[test]
    fn prop_session_json_roundtrip_is_lossless() {
        use copycat_util::{check::check, prop_ensure, prop_ensure_eq};
        check("session_json_roundtrip", 16, &[], |g| {
            let venues = g.usize_in(3..12);
            let seed = g.u64_in(1..1_000);
            let mut s = Scenario::build(&ScenarioConfig {
                venues,
                seed,
                ..Default::default()
            });
            s.import_shelters(1);
            // A feedback history: accept/reject some of the shown column
            // suggestions so edge costs move off their defaults.
            for _ in 0..g.usize_in(0..3) {
                let suggs = s.engine.column_suggestions();
                if suggs.is_empty() {
                    break;
                }
                let pick = g.usize_in(0..suggs.len());
                if g.bool_p(0.5) {
                    s.engine.reject_column(&suggs[pick]);
                } else {
                    s.engine.accept_column(&suggs[pick]);
                }
            }
            // User-defined types with generated vocabularies.
            let n_types = g.usize_in(0..3);
            let mut type_names = Vec::new();
            for t in 0..n_types {
                let name = format!("UserType{t}");
                let examples: Vec<String> = (0..3)
                    .map(|_| g.string_of("ABC-0123", 4..8))
                    .collect();
                s.engine.registry_mut().learn_type(&name, &examples);
                type_names.push(name);
            }

            let json = s.engine.save_session_json();
            let restored = CopyCat::load_session_json(&json)
                .map_err(|e| format!("load failed: {e}"))?;
            // Relations: same names, schemas, and rows.
            let mut names = s.engine.catalog().relation_names();
            names.retain(|n| !n.contains('≈'));
            for name in names {
                let a = s.engine.catalog().relation(&name).expect("source relation");
                let b = restored.catalog().relation(&name);
                prop_ensure!(b.is_some(), "relation {name} lost in roundtrip");
                let b = b.unwrap();
                prop_ensure_eq!(a.schema().names(), b.schema().names());
                prop_ensure_eq!(a.as_texts(), b.as_texts());
            }
            // Graph: identical topology and learned costs.
            prop_ensure_eq!(s.engine.graph().node_count(), restored.graph().node_count());
            prop_ensure_eq!(s.engine.graph().edge_count(), restored.graph().edge_count());
            for e in s.engine.graph().edge_ids() {
                prop_ensure_eq!(s.engine.graph().cost(e), restored.graph().cost(e));
            }
            // User-defined types survive.
            for name in &type_names {
                prop_ensure!(
                    restored.registry().get(name).is_some(),
                    "user type {name} lost in roundtrip"
                );
            }
            // Wrappers survive (detached).
            prop_ensure_eq!(
                s.engine.saved_wrappers().len(),
                restored.saved_wrappers().len()
            );
            Ok(())
        });
    }

    /// Regression (persistence-path bugfix): the session snapshot must
    /// carry `HealthRegistry` state. Before the fix a restore silently
    /// forgot tripped breakers, retry/trip counters, and per-input
    /// fault-injection attempt state — a restored engine would
    /// immediately route through a service the saved one had already
    /// failed over from, and injected-fault roll sequences restarted.
    #[test]
    fn restore_preserves_tripped_breakers_and_fault_state() {
        use copycat_query::{Service, Value};
        use copycat_services::{BreakerState, Flaky, Geocoder, RetryPolicy};
        use copycat_util::json::ToJson;
        let mut s = Scenario::build(&ScenarioConfig { venues: 8, ..Default::default() });
        s.import_shelters(1);
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            breaker_threshold: 3,
            cooldown_ms: 600_000,
        };
        // Chaos: a zip resolver that always fails, behind retry + breaker…
        let flaky = Flaky::new(Arc::new(ZipResolver::new(Arc::clone(&s.world))), 1.0, 7, 42);
        let resilient = s.engine.register_resilient(Arc::new(flaky), policy.clone());
        // …and a half-failing geocoder probe registered *without* the
        // resilient layer, so its own attempt counters must persist.
        let probe = Arc::new(Flaky::new(
            Arc::new(Geocoder::new(Arc::clone(&s.world))),
            0.5,
            3,
            7,
        ));
        s.engine.register_service(probe.clone() as Arc<dyn Service>);
        let inp = [Value::str("1 Main St"), Value::str("Springfield")];
        for _ in 0..6 {
            let _ = resilient.try_call(&inp);
        }
        assert_eq!(resilient.breaker_state(), BreakerState::Open, "breaker tripped");
        for i in 0..10 {
            let _ = probe.try_call(&[Value::str(format!("{i} Oak")), Value::str("Springfield")]);
        }

        let json = s.engine.save_session_json();
        let mut restored = CopyCat::load_session_json(&json).expect("valid json");
        // Re-register identical implementations (closures don't persist;
        // runtime health re-attaches as each service re-registers).
        let flaky2 = Flaky::new(Arc::new(ZipResolver::new(Arc::clone(&s.world))), 1.0, 7, 42);
        let resilient2 = restored.register_resilient(Arc::new(flaky2), policy);
        let probe2 = Arc::new(Flaky::new(
            Arc::new(Geocoder::new(Arc::clone(&s.world))),
            0.5,
            3,
            7,
        ));
        restored.register_service(probe2.clone() as Arc<dyn Service>);

        // The tripped breaker is still tripped, with every counter intact.
        assert_eq!(resilient2.breaker_state(), BreakerState::Open, "restore kept the trip");
        assert_eq!(
            resilient2.saved_health().to_json().to_string(),
            resilient.saved_health().to_json().to_string(),
            "restored health is byte-identical"
        );
        assert_eq!(restored.health_snapshots().len(), 1);
        // And both engines continue *identically* from here: same
        // outcomes, same breaker trajectory, same probe roll sequence.
        for i in 0..40 {
            let inp = [Value::str(format!("{i} Elm")), Value::str("Springfield")];
            assert_eq!(
                resilient.try_call(&inp).is_ok(),
                resilient2.try_call(&inp).is_ok(),
                "resilient outcome diverged at call {i}"
            );
            assert_eq!(
                resilient.breaker_state(),
                resilient2.breaker_state(),
                "breaker diverged at call {i}"
            );
            assert_eq!(
                probe.try_call(&inp).is_ok(),
                probe2.try_call(&inp).is_ok(),
                "probe roll diverged at call {i}"
            );
        }
        assert_eq!(
            probe.saved_state().to_json().to_string(),
            probe2.saved_state().to_json().to_string()
        );
    }

    /// Sessions saved before health persistence (no `health` / `probes`
    /// fields) still load: absent fields mean "no resilient services".
    #[test]
    fn pre_health_sessions_still_load() {
        use copycat_util::json::ToJson;
        let s = trained_scenario();
        let mut saved = s.engine.save_session();
        saved.health.clear();
        saved.probes.clear();
        let json = saved.to_json();
        // Strip the new fields entirely to mimic an old on-disk file.
        let copycat_util::json::Json::Obj(fields) = &json else {
            panic!("session serializes as an object")
        };
        let old = copycat_util::json::Json::obj(
            fields
                .iter()
                .filter(|(k, _)| k.as_str() != "health" && k.as_str() != "probes")
                .cloned()
                .collect::<Vec<_>>(),
        );
        let restored = CopyCat::load_session_json(&old.to_string()).expect("old format loads");
        assert!(restored.catalog().relation("Shelters").is_some());
    }

    /// Learned transform edges round-trip through save/load with their
    /// programs intact, and the committed pre-transform fixture (saved
    /// before `EdgeKind::Transform` existed) still loads unchanged.
    #[test]
    fn transform_edges_round_trip_and_pre_transform_fixture_loads() {
        let mut s = Scenario::build(&ScenarioConfig { venues: 10, ..Default::default() });
        s.import_shelters(1);
        s.import_contacts();
        let learned = s
            .engine
            .learn_transform(
                "Contacts",
                "Phone",
                "Shelters",
                "Name",
                &[
                    ("(954) 555-1000".to_string(), "954-555-1000".to_string()),
                    ("(954) 555-2000".to_string(), "954-555-2000".to_string()),
                ],
            )
            .expect("consistent program");
        let json = s.engine.save_session_json();
        let restored = CopyCat::load_session_json(&json).expect("valid json");
        let listed = restored.list_transforms();
        assert_eq!(listed.len(), 1, "transform edge survives the round trip");
        assert_eq!(listed[0].program, learned.program);
        assert_eq!(listed[0].from_source, "Contacts");
        assert_eq!(listed[0].to_source, "Shelters");

        // A session snapshot from before transform synthesis existed.
        let old = include_str!("../../serve/tests/golden/saved_session.json");
        let restored = CopyCat::load_session_json(old).expect("pre-transform fixture loads");
        assert!(restored.list_transforms().is_empty());
        assert!(restored.catalog().relation("Shelters").is_some());
    }

    #[test]
    fn wrappers_restore_detached_and_reattach() {
        let mut s = Scenario::build(&ScenarioConfig { venues: 8, ..Default::default() });
        s.import_shelters(1);
        let json = s.engine.save_session_json();
        let mut restored = CopyCat::load_session_json(&json).expect("valid json");
        assert_eq!(restored.saved_wrappers().len(), 1);
        // Reattach the shelter site and re-extract through the wrapper.
        let doc = restored.open(copycat_document::Document::Site(
            copycat_document::corpus::render_list(
                &copycat_document::corpus::ListSpec::new(
                    "County Shelters",
                    &["Name", "Street", "City"],
                    copycat_document::corpus::Tier::Clean,
                    2009,
                ),
                &s.shelter_rows,
            )
            .site,
        ));
        let n = restored.attach_wrapper_document("Shelters", doc);
        assert_eq!(n, Some(8), "re-extraction refreshes the relation");
    }
}
