//! Shared world bases for copy-on-write tenant sessions.
//!
//! A [`WorldBase`] freezes everything about a synthetic world that is
//! identical across tenants — the generated [`World`] corpus, the
//! catalog of its relations and service implementations, the source
//! graph with discovered associations, and the semantic type registry —
//! into `Arc`'d immutable state. [`CopyCat::with_base`] then builds an
//! engine whose catalog, graph and registry are *overlays* over that
//! base: reads fall through, writes stay session-local. A tenant
//! session over a shared world costs kilobytes of overlay bookkeeping
//! instead of megabytes of rebuilt corpus, so one box holds orders of
//! magnitude more sessions.
//!
//! Construction is deterministic: the same [`WorldConfig`] always
//! produces the same base (the world generator is seeded and
//! association discovery is order-stable), which is what lets a
//! journaled `create_session {"world": …}` replay after a crash and
//! land every follow-up request on byte-identical state.

use crate::engine::CopyCat;
use copycat_graph::GraphBase;
use copycat_query::{Catalog, Field, Relation, Schema};
use copycat_semantic::SemanticType;
use copycat_services::{
    AddressResolver, CurrencyConverter, Geocoder, ReversePhone, UnitConverter, World,
    WorldConfig, ZipResolver,
};
use std::sync::Arc;

/// The frozen, shareable state of one synthetic world. Cheap to clone
/// handles out of (every part is an `Arc`), impossible to mutate.
pub struct WorldBase {
    world: Arc<World>,
    catalog: Arc<Catalog>,
    graph: Arc<GraphBase>,
    types: Arc<Vec<SemanticType>>,
}

/// The running example's shelters schema: `[Venue, Street, City]`.
fn shelters_schema() -> Schema {
    Schema::new(vec![
        Field::new("Venue"),
        Field::typed("Street", "PR-Street"),
        Field::typed("City", "PR-City"),
    ])
}

/// The running example's contacts schema: `[Person, Phone, Venue]`.
fn contacts_schema() -> Schema {
    Schema::new(vec![
        Field::typed("Person", "PR-Person"),
        Field::typed("Phone", "PR-Phone"),
        Field::new("Venue"),
    ])
}

impl WorldBase {
    /// Build and freeze the base for one synthetic world: the paper's
    /// running example (Shelters ⋈ Contacts plus the resolver services),
    /// at whatever scale `config` asks for.
    ///
    /// The base is built by driving a plain flat engine through the same
    /// public API a session would use — commit relations, register
    /// services (in the serve layer's `register_world` order), let
    /// association discovery run — and then freezing the result. There
    /// is no second "base construction" code path to drift.
    pub fn synthetic(config: &WorldConfig) -> WorldBase {
        let world = Arc::new(World::generate(config));
        let mut engine = CopyCat::new();
        let shelters = shelters_schema();
        let contacts = contacts_schema();
        engine.catalog().add_relation(Relation::from_strings(
            "Shelters",
            shelters.clone(),
            &world.shelter_rows(),
        ));
        engine.add_graph_relation("Shelters", shelters);
        engine.catalog().add_relation(Relation::from_strings(
            "Contacts",
            contacts.clone(),
            &world.contact_rows(),
        ));
        engine.add_graph_relation("Contacts", contacts);
        engine.register_service(Arc::new(ZipResolver::new(Arc::clone(&world))));
        engine.register_service(Arc::new(Geocoder::new(Arc::clone(&world))));
        engine.register_service(Arc::new(AddressResolver::new(Arc::clone(&world))));
        engine.register_service(Arc::new(ReversePhone::new(Arc::clone(&world))));
        engine.register_service(Arc::new(CurrencyConverter::new()));
        engine.register_service(Arc::new(UnitConverter::new()));
        let (catalog, graph, registry) = engine.into_shared_parts();
        WorldBase {
            world,
            catalog: Arc::new(catalog),
            graph: Arc::new(graph.freeze()),
            types: registry.freeze(),
        }
    }

    /// The generated world corpus (row material, service ground truth).
    pub fn world(&self) -> Arc<World> {
        Arc::clone(&self.world)
    }

    /// The frozen catalog layer (relations + service implementations).
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// The frozen source-graph prefix.
    pub fn graph(&self) -> Arc<GraphBase> {
        Arc::clone(&self.graph)
    }

    /// The frozen semantic type vector.
    pub fn types(&self) -> Arc<Vec<SemanticType>> {
        Arc::clone(&self.types)
    }
}

impl std::fmt::Debug for WorldBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "WorldBase(relations: {}, services: {}, graph: {} nodes / {} edges, types: {})",
            self.catalog.relation_names().len(),
            self.catalog.service_names().len(),
            self.graph.node_count(),
            self.graph.edge_count(),
            self.types.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Arc<WorldBase> {
        Arc::new(WorldBase::synthetic(&WorldConfig::default()))
    }

    #[test]
    fn synthetic_base_holds_the_running_example() {
        let b = base();
        assert_eq!(b.catalog().relation_names(), vec!["Contacts", "Shelters"]);
        assert_eq!(
            b.catalog().service_names(),
            vec![
                "address_resolver",
                "currency_converter",
                "geocoder",
                "reverse_phone",
                "unit_converter",
                "zip_resolver"
            ]
        );
        // Discovery ran: the Figure-4 shape exists in the frozen graph.
        assert!(b.graph().node_count() >= 8);
        assert!(b.graph().edge_count() > 0);
        assert!(!b.types().is_empty());
    }

    #[test]
    fn synthetic_base_is_deterministic() {
        let a = WorldBase::synthetic(&WorldConfig::default());
        let b = WorldBase::synthetic(&WorldConfig::default());
        assert_eq!(a.world().shelter_rows(), b.world().shelter_rows());
        assert_eq!(a.graph().node_count(), b.graph().node_count());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        assert_eq!(a.graph().version(), b.graph().version());
        assert_eq!(a.types().len(), b.types().len());
    }

    #[test]
    fn sessions_over_a_base_share_rather_than_copy() {
        let b = base();
        let s1 = CopyCat::with_base(&b);
        let s2 = CopyCat::with_base(&b);
        // Both sessions see the world…
        assert_eq!(s1.catalog().relation_names(), s2.catalog().relation_names());
        // …through the *same* allocations, not copies.
        assert!(Arc::ptr_eq(
            &s1.catalog().relation("Shelters").unwrap(),
            &s2.catalog().relation("Shelters").unwrap()
        ));
        assert!(s1.graph().has_base());
        assert_eq!(s1.graph().version(), b.graph().version());
    }

    #[test]
    fn hot_path_works_on_a_fresh_overlay_session() {
        let b = base();
        let engine = CopyCat::with_base(&b);
        let shelters = b.world().shelter_rows();
        let contacts = b.world().contact_rows();
        let probes = vec![shelters[0][1].as_str(), contacts[0][1].as_str()];
        let queries = engine.discover_queries_for_tuple(&probes, 3);
        assert!(
            !queries.is_empty(),
            "a shared-world session must answer autocomplete without per-session warm-up"
        );
    }
}
