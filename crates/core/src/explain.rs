//! Tuple explanations — the headless Tuple Explanation pane of Figure 2.
//!
//! "The Tuple Explanation pane visualizes the provenance of the selected
//! tuple in the table" (§2.1). Given a workspace row's provenance, this
//! module renders the derivation: which source tuples fed which queries
//! and services, including "alternative explanations (when a tuple is
//! produced by more than one query)" (§8).

use crate::workspace::Tab;
use copycat_provenance::{witnesses, DerivationGraph, Provenance};

/// A rendered explanation for one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Indented derivation tree (root = the explained tuple's query).
    pub derivation: String,
    /// The queries responsible for the tuple.
    pub queries: Vec<String>,
    /// The source relations involved.
    pub sources: Vec<String>,
    /// The alternative witness sets, rendered one per line.
    pub alternatives: Vec<String>,
    /// Degradation notes carried in the provenance (`degraded:` labels):
    /// why this answer may be incomplete or came from a replacement
    /// source. Empty for a fully healthy derivation.
    pub degraded: Vec<String>,
}

/// Explain a provenance expression.
pub fn explain(p: &Provenance) -> Explanation {
    let graph = DerivationGraph::from_provenance(p);
    let derivation = graph.render_text();
    let (degraded, queries): (Vec<String>, Vec<String>) = p
        .labels()
        .iter()
        .map(|s| s.to_string())
        .partition(|l| l.starts_with("degraded:"));
    let degraded: Vec<String> = degraded
        .into_iter()
        .map(|l| l["degraded:".len()..].to_string())
        .collect();
    let sources = p.relations().iter().map(|s| s.to_string()).collect();
    let alternatives = witnesses(p)
        .into_iter()
        .map(|w| {
            w.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ⊗ ")
        })
        .collect();
    Explanation { derivation, queries, sources, alternatives, degraded }
}

/// Explain row `i` of a tab. Pasted rows (no provenance) explain as user
/// input.
pub fn explain_row(tab: &Tab, i: usize) -> Option<Explanation> {
    let row = tab.rows.get(i)?;
    match &row.provenance {
        Some(p) => Some(explain(p)),
        None => Some(Explanation {
            derivation: "user-pasted row\n".to_string(),
            queries: Vec::new(),
            sources: Vec::new(),
            alternatives: Vec::new(),
            degraded: Vec::new(),
        }),
    }
}

/// Render an explanation for display (the pane's text form).
pub fn render(e: &Explanation) -> String {
    let mut out = String::new();
    out.push_str("Derivation:\n");
    for line in e.derivation.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    if !e.queries.is_empty() {
        out.push_str(&format!("Queries: {}\n", e.queries.join(", ")));
    }
    if !e.sources.is_empty() {
        out.push_str(&format!("Sources: {}\n", e.sources.join(", ")));
    }
    if !e.degraded.is_empty() {
        out.push_str(&format!("Degraded: {}\n", e.degraded.join(", ")));
    }
    if e.alternatives.len() > 1 {
        out.push_str("Alternative explanations:\n");
        for a in &e.alternatives {
            out.push_str(&format!("  - {a}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{Row, RowState};

    fn zip_prov() -> Provenance {
        Provenance::labeled(
            "Q:Shelters+zip_resolver",
            Provenance::times(
                Provenance::base("Shelters", 4),
                Provenance::base("zip_resolver", 17),
            ),
        )
    }

    #[test]
    fn explanation_names_queries_and_sources() {
        let e = explain(&zip_prov());
        assert_eq!(e.queries, vec!["Q:Shelters+zip_resolver"]);
        assert_eq!(e.sources, vec!["Shelters", "zip_resolver"]);
        assert_eq!(e.alternatives.len(), 1);
        assert!(e.derivation.contains("Shelters#4"));
    }

    #[test]
    fn alternatives_for_union_provenance() {
        let p = Provenance::plus(
            Provenance::labeled("Q1", Provenance::base("a", 1)),
            Provenance::labeled("Q2", Provenance::base("b", 2)),
        );
        let e = explain(&p);
        assert_eq!(e.alternatives.len(), 2);
        let text = render(&e);
        assert!(text.contains("Alternative explanations"));
    }

    #[test]
    fn degraded_labels_are_surfaced() {
        let p = Provenance::labeled(
            "degraded:failover:ZipCodes->ZipBackup",
            zip_prov(),
        );
        let e = explain(&p);
        // The degraded marker is split out of the query list …
        assert_eq!(e.queries, vec!["Q:Shelters+zip_resolver"]);
        assert_eq!(e.degraded, vec!["failover:ZipCodes->ZipBackup"]);
        // … and the rendered pane says why a replacement was used.
        let text = render(&e);
        assert!(text.contains("Degraded: failover:ZipCodes->ZipBackup"), "{text}");
    }

    #[test]
    fn pasted_rows_explain_as_user_input() {
        let mut tab = Tab::new("t");
        tab.rows.push(Row {
            cells: vec!["x".into()],
            state: RowState::Pasted,
            provenance: None,
        });
        let e = explain_row(&tab, 0).unwrap();
        assert!(e.derivation.contains("user-pasted"));
        assert!(explain_row(&tab, 5).is_none());
    }
}
