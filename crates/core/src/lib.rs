//! CopyCat: the Smart Copy & Paste engine (CIDR 2009).
//!
//! This crate assembles the substrates — document model, structure
//! learner, model learner, record linkage, provenance-annotated query
//! engine, simulated services, and the source-graph integration learner —
//! into the system the paper describes: a tabbed, spreadsheet-like
//! [`workspace`] that *watches* paste operations, *generalizes* them into
//! wrappers and queries, proposes row and column [`autocomplete`]
//! suggestions with provenance-backed [`explain`]ations, and learns from
//! feedback ([`engine`]).
//!
//! ```
//! use copycat_core::scenario::{Scenario, ScenarioConfig};
//!
//! // Build the hurricane-relief scenario of Example 1 and import the
//! // shelter Web site from a single pasted example row.
//! let mut s = Scenario::build(&ScenarioConfig::default());
//! let imported = s.import_shelters(1);
//! assert_eq!(imported, s.shelter_rows.len());
//!
//! // The engine now suggests a Zip column via the zip-resolver service.
//! let suggestions = s.engine.column_suggestions();
//! assert!(suggestions
//!     .iter()
//!     .any(|c| c.new_fields.iter().any(|f| f.name == "Zip")));
//! ```

pub mod autocomplete;
pub mod cache;
pub mod engine;
pub mod explain;
pub mod export;
pub mod formsvc;
pub mod scenario;
pub mod session;
pub mod simulator;
pub mod workspace;
pub mod world_base;

pub use autocomplete::{ColumnSuggestion, ScoredQuery};
pub use cache::{CacheStats, QueryCache};
pub use engine::{CopyCat, EditEffect, LearnedTransform, Mode, TransformSuggestion, TupleRejection};
pub use explain::{explain, explain_row, Explanation};
pub use formsvc::FormService;
pub use scenario::{Scenario, ScenarioConfig};
pub use session::{SavedRelation, SavedSession};
pub use simulator::{ActionLog, ColumnOrigin, CostModel, TaskShape};
pub use workspace::{Row, RowState, Tab, Workspace};
pub use world_base::WorldBase;
