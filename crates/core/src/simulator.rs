//! The scripted user and the action/keystroke cost model behind
//! experiment E1.
//!
//! §5 quotes the Karma result the SCP interface builds on: "query
//! auto-completions … saved approximately 75% of keystrokes compared to
//! manual integration of data by copy and paste." To regenerate that
//! number we need an explicit model of what each user interaction costs;
//! the constants here are deliberately simple and conservative (a copy is
//! a selection plus a chord; a paste is a focus plus a chord), and the
//! same model prices both the manual strategy and the SCP strategy.

/// Cost (in keystroke-equivalents) of each primitive user action.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Typing one character.
    pub keystroke: f64,
    /// One mouse click (cell focus, button press).
    pub click: f64,
    /// Copy: select the source region + the copy chord.
    pub copy: f64,
    /// Paste: focus the target + the paste chord.
    pub paste: f64,
    /// Switching between applications.
    pub app_switch: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { keystroke: 1.0, click: 1.0, copy: 2.0, paste: 2.0, app_switch: 1.0 }
    }
}

/// A running tally of user actions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActionLog {
    /// Characters typed.
    pub keystrokes: u64,
    /// Clicks.
    pub clicks: u64,
    /// Copies.
    pub copies: u64,
    /// Pastes.
    pub pastes: u64,
    /// Application switches.
    pub app_switches: u64,
}

impl ActionLog {
    /// Total cost under a model.
    pub fn cost(&self, m: &CostModel) -> f64 {
        self.keystrokes as f64 * m.keystroke
            + self.clicks as f64 * m.click
            + self.copies as f64 * m.copy
            + self.pastes as f64 * m.paste
            + self.app_switches as f64 * m.app_switch
    }

    /// Record copying one value from a source document and pasting it
    /// into the workspace (switch to source, copy, switch back, paste).
    pub fn copy_paste_cell(&mut self) {
        self.app_switches += 2;
        self.copies += 1;
        self.pastes += 1;
    }

    /// Record a service lookup done by hand: switch to the service, type
    /// the query, submit, copy the answer, switch back, paste.
    pub fn manual_service_lookup(&mut self, query_chars: usize) {
        self.app_switches += 2;
        self.keystrokes += query_chars as u64 + 1; // +1 for Enter
        self.copies += 1;
        self.pastes += 1;
    }

    /// Record one click (accepting a suggestion, a feedback action, a
    /// button press).
    pub fn click(&mut self) {
        self.clicks += 1;
    }

    /// Record typing a value by hand.
    pub fn type_value(&mut self, chars: usize) {
        self.keystrokes += chars as u64;
        self.clicks += 1; // focus the cell
    }
}

/// How one column of the target table is obtained in the *manual*
/// baseline.
#[derive(Debug, Clone)]
pub enum ColumnOrigin {
    /// Copyable from a source document (per-cell copy & paste).
    Document,
    /// Requires a per-row lookup in an external service; the usize is the
    /// typed query length for that row.
    ServiceLookup(Vec<usize>),
}

/// A task: assemble `rows × columns` with the given origins.
#[derive(Debug, Clone)]
pub struct TaskShape {
    /// Number of data rows.
    pub rows: usize,
    /// Per-column origin.
    pub columns: Vec<ColumnOrigin>,
}

/// The fully-manual baseline: every cell is copied (or looked up) by
/// hand, exactly as "manual integration of data by copy and paste".
pub fn manual_log(task: &TaskShape) -> ActionLog {
    let mut log = ActionLog::default();
    for col in &task.columns {
        match col {
            ColumnOrigin::Document => {
                for _ in 0..task.rows {
                    log.copy_paste_cell();
                }
            }
            ColumnOrigin::ServiceLookup(lens) => {
                for r in 0..task.rows {
                    log.manual_service_lookup(lens.get(r).copied().unwrap_or(16));
                }
            }
        }
    }
    log
}

/// Percentage of cost saved by `scp` relative to `manual`.
pub fn savings_pct(manual: f64, scp: f64) -> f64 {
    if manual <= 0.0 {
        return 0.0;
    }
    (1.0 - scp / manual) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cost_scales_with_cells() {
        let small = TaskShape { rows: 5, columns: vec![ColumnOrigin::Document; 2] };
        let large = TaskShape { rows: 50, columns: vec![ColumnOrigin::Document; 2] };
        let m = CostModel::default();
        assert!(manual_log(&large).cost(&m) > manual_log(&small).cost(&m) * 9.0);
    }

    #[test]
    fn service_lookups_cost_typing() {
        let task = TaskShape {
            rows: 3,
            columns: vec![ColumnOrigin::ServiceLookup(vec![10, 20, 30])],
        };
        let log = manual_log(&task);
        assert_eq!(log.keystrokes, 10 + 20 + 30 + 3);
        assert_eq!(log.copies, 3);
    }

    #[test]
    fn savings_formula() {
        assert_eq!(savings_pct(100.0, 25.0), 75.0);
        assert_eq!(savings_pct(0.0, 10.0), 0.0);
    }

    #[test]
    fn scp_like_log_is_cheaper() {
        // 20 rows x 3 cols manual vs "paste one row + 2 clicks".
        let task = TaskShape { rows: 20, columns: vec![ColumnOrigin::Document; 3] };
        let m = CostModel::default();
        let manual = manual_log(&task).cost(&m);
        let mut scp = ActionLog::default();
        for _ in 0..3 {
            scp.copy_paste_cell();
        }
        scp.click(); // accept row suggestions
        let s = scp.cost(&m);
        assert!(savings_pct(manual, s) > 80.0);
    }
}
