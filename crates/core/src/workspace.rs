//! The CopyCat workspace: a dynamic, spreadsheet-like grid with tabs.
//!
//! §2.1: in integration mode "the SCP system will create a tabbed pane in
//! its GUI for each data source … The moment the user pastes or accepts a
//! row or column from a different source … the query's output receives
//! its own tabbed pane." Rows and columns carry suggestion state
//! (highlighted rows in Figure 1, the yellow Zip column in Figure 2),
//! which this headless model tracks explicitly.

use copycat_provenance::Provenance;
use copycat_query::Field;
use std::fmt;

/// Where a row came from — drives both rendering and feedback routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// Pasted by the user (always kept).
    Pasted,
    /// Proposed by an auto-completion, awaiting feedback.
    Suggested,
    /// A suggestion the user accepted.
    Accepted,
}

/// One workspace row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Cell texts, aligned with the tab's columns.
    pub cells: Vec<String>,
    /// Suggestion state.
    pub state: RowState,
    /// Provenance, when the row came from a query or wrapper.
    pub provenance: Option<Provenance>,
}

/// One tabbed pane: a titled grid.
#[derive(Debug, Clone, Default)]
pub struct Tab {
    /// Tab title (source name or query name).
    pub title: String,
    /// Column headers with semantic types.
    pub columns: Vec<Field>,
    /// Which columns were named by the user (vs. system-proposed).
    pub user_named: Vec<bool>,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Tab {
    /// A new empty tab.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), ..Self::default() }
    }

    /// Ensure at least `n` columns exist (named `Col1`, `Col2`, … until
    /// renamed by the system or the user).
    pub fn ensure_columns(&mut self, n: usize) {
        while self.columns.len() < n {
            let name = format!("Col{}", self.columns.len() + 1);
            self.columns.push(Field::new(name));
            self.user_named.push(false);
        }
        for row in &mut self.rows {
            row.cells.resize(self.columns.len(), String::new());
        }
    }

    /// Paste a row of values (user action).
    pub fn paste_row(&mut self, values: &[String]) {
        self.ensure_columns(values.len());
        let mut cells = values.to_vec();
        cells.resize(self.columns.len(), String::new());
        self.rows.push(Row { cells, state: RowState::Pasted, provenance: None });
    }

    /// Add suggested rows (system action). Rows equal to an existing
    /// pasted/accepted row are skipped.
    pub fn suggest_rows(&mut self, rows: Vec<(Vec<String>, Option<Provenance>)>) {
        self.ensure_columns(rows.iter().map(|(r, _)| r.len()).max().unwrap_or(0));
        for (values, provenance) in rows {
            let mut cells = values;
            cells.resize(self.columns.len(), String::new());
            let dup = self
                .rows
                .iter()
                .any(|r| r.cells == cells && r.state != RowState::Suggested);
            if !dup {
                self.rows.push(Row { cells, state: RowState::Suggested, provenance });
            }
        }
    }

    /// Drop all currently-suggested rows (before re-suggesting).
    pub fn clear_suggestions(&mut self) {
        self.rows.retain(|r| r.state != RowState::Suggested);
    }

    /// Accept every suggested row.
    pub fn accept_all_suggestions(&mut self) -> usize {
        let mut n = 0;
        for r in &mut self.rows {
            if r.state == RowState::Suggested {
                r.state = RowState::Accepted;
                n += 1;
            }
        }
        n
    }

    /// Accept one suggested row by index. Returns false on bad index or
    /// non-suggested row.
    pub fn accept_row(&mut self, i: usize) -> bool {
        match self.rows.get_mut(i) {
            Some(r) if r.state == RowState::Suggested => {
                r.state = RowState::Accepted;
                true
            }
            _ => false,
        }
    }

    /// Reject (remove) one suggested row by index, returning its cells.
    pub fn reject_row(&mut self, i: usize) -> Option<Vec<String>> {
        match self.rows.get(i) {
            Some(r) if r.state == RowState::Suggested => {
                let cells = r.cells.clone();
                self.rows.remove(i);
                Some(cells)
            }
            _ => None,
        }
    }

    /// Set a column's header (user action: "the user manually enters the
    /// label", §2.1).
    pub fn name_column(&mut self, col: usize, name: impl Into<String>) -> bool {
        if let Some(f) = self.columns.get_mut(col) {
            f.name = name.into();
            self.user_named[col] = true;
            true
        } else {
            false
        }
    }

    /// System-proposed column label + semantic type; never overwrites a
    /// user-chosen name.
    pub fn propose_column(&mut self, col: usize, name: &str, sem_type: Option<&str>) {
        if let Some(f) = self.columns.get_mut(col) {
            if !self.user_named[col] {
                f.name = name.to_string();
            }
            if let Some(t) = sem_type {
                f.sem_type = Some(t.to_string());
            }
        }
    }

    /// Append a column with values aligned to the current rows (accepting
    /// a column auto-completion).
    pub fn add_column(&mut self, field: Field, values: &[String]) {
        self.columns.push(field);
        self.user_named.push(false);
        for (i, row) in self.rows.iter_mut().enumerate() {
            row.cells.push(values.get(i).cloned().unwrap_or_default());
        }
    }

    /// The non-suggested rows' cells (the "committed" table).
    pub fn committed_rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .filter(|r| r.state != RowState::Suggested)
            .map(|r| r.cells.clone())
            .collect()
    }

    /// The user-pasted rows only (the learner's examples).
    pub fn pasted_rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .filter(|r| r.state == RowState::Pasted)
            .map(|r| r.cells.clone())
            .collect()
    }

    /// All rows' cells regardless of state.
    pub fn all_rows(&self) -> Vec<Vec<String>> {
        self.rows.iter().map(|r| r.cells.clone()).collect()
    }

    /// Values of one column (committed rows only).
    pub fn column_values(&self, col: usize) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.state != RowState::Suggested)
            .filter_map(|r| r.cells.get(col).cloned())
            .collect()
    }

    /// ASCII rendering with suggestion markers — the headless stand-in
    /// for Figures 1 and 2.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name.len()).collect();
        for row in &self.rows {
            for (i, c) in row.cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        let mut header = String::from("   ");
        for (i, c) in self.columns.iter().enumerate() {
            let label = match &c.sem_type {
                Some(t) => format!("{} [{t}]", c.name),
                None => c.name.clone(),
            };
            header.push_str(&format!("{:<w$}  ", label, w = widths[i].max(label.len())));
            widths[i] = widths[i].max(label.len());
        }
        out.push_str(header.trim_end());
        out.push('\n');
        for row in &self.rows {
            let marker = match row.state {
                RowState::Pasted => "   ",
                RowState::Suggested => " ? ",
                RowState::Accepted => " + ",
            };
            out.push_str(marker);
            for (i, c) in row.cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

/// The tabbed workspace.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    tabs: Vec<Tab>,
    active: usize,
}

impl Workspace {
    /// A workspace with one empty tab.
    pub fn new() -> Self {
        Self { tabs: vec![Tab::new("Sheet1")], active: 0 }
    }

    /// The active tab.
    pub fn active(&self) -> &Tab {
        &self.tabs[self.active]
    }

    /// The active tab, mutably.
    pub fn active_mut(&mut self) -> &mut Tab {
        &mut self.tabs[self.active]
    }

    /// All tabs.
    pub fn tabs(&self) -> &[Tab] {
        &self.tabs
    }

    /// Add a tab and switch to it; returns its index.
    pub fn add_tab(&mut self, tab: Tab) -> usize {
        self.tabs.push(tab);
        self.active = self.tabs.len() - 1;
        self.active
    }

    /// Switch the active tab. False on bad index.
    pub fn switch_to(&mut self, i: usize) -> bool {
        if i < self.tabs.len() {
            self.active = i;
            true
        } else {
            false
        }
    }

    /// Index of the active tab.
    pub fn active_index(&self) -> usize {
        self.active
    }
}

impl fmt::Display for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tabs.iter().enumerate() {
            let star = if i == self.active { "*" } else { " " };
            writeln!(f, "{star}[{i}] {}", t.title)?;
        }
        write!(f, "{}", self.active().render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paste_grows_columns() {
        let mut t = Tab::new("t");
        t.paste_row(&["a".to_string(), "b".to_string()]);
        assert_eq!(t.columns.len(), 2);
        t.paste_row(&["c".to_string(), "d".to_string(), "e".to_string()]);
        assert_eq!(t.columns.len(), 3);
        // Earlier rows padded.
        assert_eq!(t.rows[0].cells.len(), 3);
    }

    #[test]
    fn suggestions_lifecycle() {
        let mut t = Tab::new("t");
        t.paste_row(&["a".to_string()]);
        t.suggest_rows(vec![
            (vec!["a".to_string()], None), // duplicate of pasted: skipped
            (vec!["b".to_string()], None),
            (vec!["c".to_string()], None),
        ]);
        assert_eq!(t.rows.len(), 3);
        assert!(t.accept_row(1));
        assert_eq!(t.rows[1].state, RowState::Accepted);
        let rejected = t.reject_row(2).unwrap();
        assert_eq!(rejected, vec!["c"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.committed_rows().len(), 2);
    }

    #[test]
    fn accept_all() {
        let mut t = Tab::new("t");
        t.suggest_rows(vec![
            (vec!["x".to_string()], None),
            (vec!["y".to_string()], None),
        ]);
        assert_eq!(t.accept_all_suggestions(), 2);
        assert_eq!(t.pasted_rows().len(), 0);
        assert_eq!(t.committed_rows().len(), 2);
    }

    #[test]
    fn user_names_beat_proposals() {
        let mut t = Tab::new("t");
        t.ensure_columns(2);
        t.propose_column(0, "Street", Some("PR-Street"));
        assert_eq!(t.columns[0].name, "Street");
        t.name_column(1, "Name");
        t.propose_column(1, "City", Some("PR-City"));
        assert_eq!(t.columns[1].name, "Name", "user name preserved");
        assert_eq!(t.columns[1].sem_type.as_deref(), Some("PR-City"));
    }

    #[test]
    fn add_column_aligns_values() {
        let mut t = Tab::new("t");
        t.paste_row(&["a".to_string()]);
        t.paste_row(&["b".to_string()]);
        t.add_column(Field::typed("Zip", "PR-Zip"), &["1".to_string()]);
        assert_eq!(t.rows[0].cells, vec!["a", "1"]);
        assert_eq!(t.rows[1].cells, vec!["b", ""]);
    }

    #[test]
    fn render_contains_markers_and_types() {
        let mut t = Tab::new("Shelters");
        t.paste_row(&["Creek HS".to_string()]);
        t.propose_column(0, "Name", None);
        t.suggest_rows(vec![(vec!["Rec Ctr".to_string()], None)]);
        let txt = t.render_text();
        assert!(txt.contains("=== Shelters ==="));
        assert!(txt.contains(" ? Rec Ctr"));
    }

    #[test]
    fn workspace_tabs() {
        let mut w = Workspace::new();
        assert_eq!(w.active_index(), 0);
        let i = w.add_tab(Tab::new("Contacts"));
        assert_eq!(i, 1);
        assert_eq!(w.active().title, "Contacts");
        assert!(w.switch_to(0));
        assert!(!w.switch_to(9));
    }
}
