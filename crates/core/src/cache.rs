//! Feedback-aware caching of Steiner query searches.
//!
//! The interactive loop (§2.2, §4.2) re-runs top-k Steiner search on
//! every paste and every MIRA feedback update. Repeated pastes against
//! an unchanged graph are common — the user pastes several tuples, or
//! re-opens the suggestion list — so the engine keeps a small cache of
//! search results keyed on `(terminal set, k)` and stamped with the
//! [`SourceGraph::version`] they were computed at. A feedback update
//! bumps the graph version, which lazily invalidates stale entries:
//! only the terminal sets that are actually queried again get
//! recomputed.

use copycat_graph::{EdgeId, NodeId, SourceGraph, SteinerTree};
use copycat_util::hash::FxHashMap;
use copycat_util::sync::Mutex;
use std::collections::VecDeque;

/// Hit/miss counters, readable for tests and instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a fresh entry.
    pub hits: u64,
    /// Lookups that had no entry at all.
    pub misses: u64,
    /// Lookups that found an entry stamped with an older graph version
    /// (counted in addition to the miss they become).
    pub invalidations: u64,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    trees: Vec<SteinerTree>,
}

/// Cache key: sorted deduped terminals, k, and the sorted banned-edge
/// set (empty for the normal path; a failover search with tripped
/// services banned is a distinct entry).
type Key = (Vec<NodeId>, usize, Vec<EdgeId>);

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<Key, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
    stats: CacheStats,
}

/// A version-stamped cache of Steiner search results. Interior-mutable
/// so read paths (`&self` engine methods) can use it.
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new(256)
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` terminal-set entries (FIFO
    /// eviction).
    pub fn new(capacity: usize) -> Self {
        Self { inner: Mutex::new(Inner::default()), capacity: capacity.max(1) }
    }

    /// The trees for `(terminals, k)` at the graph's current version:
    /// served from cache when a fresh entry exists, otherwise computed
    /// via `compute` (outside the cache lock) and stored. A stale entry
    /// — same key, older version — is replaced and counted as an
    /// invalidation.
    pub fn trees_for(
        &self,
        g: &SourceGraph,
        terminals: &[NodeId],
        k: usize,
        compute: impl FnOnce() -> Vec<SteinerTree>,
    ) -> Vec<SteinerTree> {
        self.trees_for_banned(g, terminals, k, &[], compute)
    }

    /// [`QueryCache::trees_for`] with a banned-edge set in the key —
    /// the failover search path (tripped services' edges banned) caches
    /// separately from the healthy one.
    pub fn trees_for_banned(
        &self,
        g: &SourceGraph,
        terminals: &[NodeId],
        k: usize,
        banned: &[EdgeId],
        compute: impl FnOnce() -> Vec<SteinerTree>,
    ) -> Vec<SteinerTree> {
        let mut key_terms = terminals.to_vec();
        key_terms.sort_unstable();
        key_terms.dedup();
        let mut key_banned = banned.to_vec();
        key_banned.sort_unstable();
        key_banned.dedup();
        let key = (key_terms, k, key_banned);
        let version = g.version();
        {
            let mut inner = self.inner.lock();
            match inner.map.get(&key) {
                Some(entry) if entry.version == version => {
                    let trees = entry.trees.clone();
                    inner.stats.hits += 1;
                    return trees;
                }
                Some(_) => inner.stats.invalidations += 1,
                None => {}
            }
            inner.stats.misses += 1;
        }
        let trees = compute();
        let mut inner = self.inner.lock();
        if !inner.map.contains_key(&key) {
            inner.order.push_back(key.clone());
            if inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
        inner.map.insert(key, Entry { version, trees: trees.clone() });
        trees
    }

    /// Drop every entry (e.g. after a wholesale graph replacement, where
    /// version numbering restarts).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_graph::{top_k_steiner, EdgeKind, Mira};
    use copycat_query::Schema;

    /// Diamond: a–b–d (1.0 + 1.0) vs a–c–d (1.5 + 1.5).
    fn diamond() -> (SourceGraph, Vec<NodeId>) {
        let mut g = SourceGraph::new();
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| g.add_relation(*n, Schema::of(&["X"])))
            .collect();
        let j = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
        g.add_edge_with_cost(ids[0], ids[1], j(), 1.0);
        g.add_edge_with_cost(ids[1], ids[3], j(), 1.0);
        g.add_edge_with_cost(ids[0], ids[2], j(), 1.5);
        g.add_edge_with_cost(ids[2], ids[3], j(), 1.5);
        (g, ids)
    }

    #[test]
    fn repeat_lookups_hit() {
        let (g, ids) = diamond();
        let cache = QueryCache::default();
        let terms = [ids[0], ids[3]];
        let a = cache.trees_for(&g, &terms, 2, || top_k_steiner(&g, &terms, 2));
        let b = cache.trees_for(&g, &terms, 2, || panic!("must be served from cache"));
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 1, 0));
    }

    #[test]
    fn mira_update_invalidates_and_matches_cold_search() {
        let (mut g, ids) = diamond();
        let cache = QueryCache::default();
        let terms = [ids[0], ids[3]];
        let warm = cache.trees_for(&g, &terms, 2, || top_k_steiner(&g, &terms, 2));
        assert_eq!(warm[0].edges, vec![copycat_graph::EdgeId(0), copycat_graph::EdgeId(1)]);
        // Feedback flips the ranking: prefer the a–c–d path.
        let preferred = warm[1].edges.clone();
        let rejected = warm[0].edges.clone();
        let tau = Mira::default().apply(&mut g, &preferred, &rejected);
        assert!(tau > 0.0, "feedback must change costs");
        // The cache must notice the version bump and agree with a cold
        // search, not replay the stale ranking.
        let cached = cache.trees_for(&g, &terms, 2, || top_k_steiner(&g, &terms, 2));
        let cold = top_k_steiner(&g, &terms, 2);
        assert_eq!(cached, cold);
        assert_eq!(cached[0].edges, preferred, "new ranking visible through the cache");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let (g, ids) = diamond();
        let cache = QueryCache::default();
        let t1 = [ids[0], ids[3]];
        let t2 = [ids[0], ids[1]];
        let r1 = cache.trees_for(&g, &t1, 1, || top_k_steiner(&g, &t1, 1));
        let r2 = cache.trees_for(&g, &t2, 1, || top_k_steiner(&g, &t2, 1));
        assert_ne!(r1, r2);
        // Same set, different k: separate entry.
        let r3 = cache.trees_for(&g, &t1, 2, || top_k_steiner(&g, &t1, 2));
        assert_eq!(r3.len(), 2);
        // Terminal order does not matter.
        let swapped = [ids[3], ids[0]];
        cache.trees_for(&g, &swapped, 1, || panic!("order-insensitive key"));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let (g, ids) = diamond();
        let cache = QueryCache::new(1);
        let t1 = [ids[0], ids[3]];
        let t2 = [ids[0], ids[1]];
        cache.trees_for(&g, &t1, 1, || top_k_steiner(&g, &t1, 1));
        cache.trees_for(&g, &t2, 1, || top_k_steiner(&g, &t2, 1));
        // t1 was evicted: this is a miss, not a hit.
        cache.trees_for(&g, &t1, 1, || top_k_steiner(&g, &t1, 1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn clear_empties_the_cache() {
        let (g, ids) = diamond();
        let cache = QueryCache::default();
        let terms = [ids[0], ids[3]];
        cache.trees_for(&g, &terms, 1, || top_k_steiner(&g, &terms, 1));
        cache.clear();
        cache.trees_for(&g, &terms, 1, || top_k_steiner(&g, &terms, 1));
        assert_eq!(cache.stats().misses, 2);
    }
}
