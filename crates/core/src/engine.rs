//! The CopyCat SCP engine: the coupling between clipboard, workspace and
//! learners (§2.3: "Our focus in this prototype is on the coupling
//! between the clipboard, the workspace/user interface, and the learning
//! systems").
//!
//! The engine is a state machine over two modes, as in §2.1:
//!
//! * **import mode** — pastes are examples for the structure learner;
//!   the engine proposes row auto-completions and column types;
//! * **integration mode** — entered by committing a source; the engine
//!   proposes column auto-completions from the source graph, discovers
//!   queries for cross-source pastes, and routes feedback (via
//!   provenance) to the MIRA learner.

use crate::autocomplete::{self, ColumnSuggestion, ScoredQuery};
use crate::cache::{CacheStats, QueryCache};
use crate::workspace::{Tab, Workspace};
use copycat_document::{Clipboard, Document, DocumentId};
use copycat_extract::{execute as run_wrapper, refine, ScoredWrapper, StructureLearner, Wrapper};
use copycat_graph::{
    discover_associations, AssocOptions, EdgeId, EdgeKind, Mira, NodeId, SourceGraph,
    SUGGESTION_COST_THRESHOLD,
};
use copycat_linkage::{LabeledPair, MatchLearner, Matcher, TfIdfIndex};
use copycat_query::{Catalog, Field, Plan, Relation, Schema, Service};
use copycat_services::{
    Flaky, HealthRegistry, HealthSnapshot, Resilient, RetryPolicy, SavedFlakyState,
    SavedServiceHealth,
};
use copycat_semantic::{Program, TransformLearner, TypeRegistry};
use std::sync::Arc;

/// The two interaction modes of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Learning an extractor for one source from pasted examples.
    Import,
    /// Building an integration query across committed sources.
    Integrate,
}

/// Import-mode state for the active tab.
#[derive(Debug)]
struct ImportState {
    doc: DocumentId,
    wrapper: Option<ScoredWrapper>,
    /// Lower-ranked hypotheses ("the system will choose another
    /// hypothesis and revise the suggestions", §3.1).
    alternatives: Vec<ScoredWrapper>,
    rejected: Vec<Vec<String>>,
}

/// The engine.
pub struct CopyCat {
    clipboard: Clipboard,
    catalog: Catalog,
    registry: TypeRegistry,
    learner: StructureLearner,
    graph: SourceGraph,
    workspace: Workspace,
    import: Option<ImportState>,
    mode: Mode,
    current_plan: Option<Plan>,
    current_nodes: Vec<NodeId>,
    mira: Mira,
    /// Suggestions shown for the last `column_suggestions` call; feedback
    /// constraints compare the chosen one against these.
    last_shown: Vec<ColumnSuggestion>,
    /// User-demonstrated record-link examples and the trained matcher.
    link_examples: Vec<LabeledPair>,
    link_matcher: Option<Matcher>,
    /// Per-source wrapper memory (source name → wrapper + doc; the doc
    /// is `None` for wrappers restored from a saved session until
    /// [`Self::attach_wrapper_document`] reattaches one).
    wrappers: Vec<(String, Option<DocumentId>, Wrapper)>,
    /// Per-tab integration state: `(plan, nodes)` by tab index.
    tab_queries: copycat_util::hash::FxHashMap<usize, (Plan, Vec<NodeId>)>,
    /// §5 "data cleaning" mode: edits stay local instead of generalizing.
    cleaning: bool,
    /// Transform-derived columns of the active tab: column index →
    /// (program, accumulated examples).
    transform_columns: copycat_util::hash::FxHashMap<usize, TransformState>,
    /// Undo stack of view-state snapshots (§5 "advanced interactions").
    undo_stack: Vec<Snapshot>,
    /// Version-stamped cache of Steiner searches: repeated pastes reuse
    /// results; MIRA updates and edge insertions invalidate via the
    /// graph version.
    query_cache: QueryCache,
    /// Health of services registered with retry/breaker protection
    /// ([`CopyCat::register_resilient`]): breaker states, retry/trip
    /// counters, and observed failure rates feeding failover.
    health: HealthRegistry,
    /// Health state restored from a [`crate::session::SavedSession`] but
    /// not yet re-attached: services persist their runtime health (breaker
    /// status, counters, injected-fault attempt maps) by name, and the
    /// caller re-registers the implementations *after* `load_session`.
    /// Each entry is consumed by the matching
    /// [`CopyCat::register_resilient`] call.
    pending_health: copycat_util::hash::FxHashMap<String, SavedServiceHealth>,
    /// Saved fault-injection state for probes registered *without* the
    /// resilient layer; consumed by [`CopyCat::register_service`].
    pending_probes: copycat_util::hash::FxHashMap<String, SavedFlakyState>,
}

/// A transform column's learned program plus its accumulated examples.
type TransformState = (Program, Vec<(Vec<String>, String)>);

/// A restorable view-state snapshot. Catalog contents are append-only
/// and are not rolled back; the workspace, the active query, and the
/// learned edge costs are.
struct Snapshot {
    workspace: Workspace,
    current_plan: Option<Plan>,
    current_nodes: Vec<NodeId>,
    edge_costs: Vec<f64>,
    /// Edge count at checkpoint time: edges added later (e.g. learned
    /// transform edges) are removed again by undo.
    edge_count: usize,
    tab_queries: copycat_util::hash::FxHashMap<usize, (Plan, Vec<NodeId>)>,
    mode: Mode,
}

/// What [`CopyCat::edit_cell`] did with an edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditEffect {
    /// Cleaning mode (or no generalization found): only this cell changed.
    Local,
    /// The edit re-taught a transform column; this many other cells were
    /// updated by the re-learned program.
    Generalized(usize),
}

/// Where [`CopyCat::reject_tuple`] routed the feedback (§5 "feedback
/// interaction": integration-mode feedback reaching the source learners).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleRejection {
    /// The queries blamed via the tuple's provenance labels.
    pub queries: Vec<String>,
    /// Source relations whose wrappers were refined, with the number of
    /// rows their re-extraction now yields.
    pub refined_sources: Vec<(String, usize)>,
}

/// A learned transform surfaced as a first-class graph edge: the
/// program, the columns it connects, and the cost the Steiner search
/// ranks it by.
#[derive(Debug, Clone)]
pub struct LearnedTransform {
    /// The graph edge carrying the program.
    pub edge: EdgeId,
    /// Source relation (the program's input side).
    pub from_source: String,
    /// Column of `from_source` the program reads.
    pub from_col: String,
    /// Target relation the derived value joins into.
    pub to_source: String,
    /// Column of `to_source` the derived value equals.
    pub to_col: String,
    /// The learned program (renders human-readably).
    pub program: copycat_transform::Program,
    /// Fraction of source values mapped into the target column.
    pub coverage: f64,
    /// The edge cost derived from program size + coverage.
    pub cost: f64,
}

/// A proposed derived column learned from typed examples (§5 "complex
/// functions / transforms").
#[derive(Debug, Clone)]
pub struct TransformSuggestion {
    /// The learned program.
    pub program: Program,
    /// The program's output for every committed row (empty when it does
    /// not apply).
    pub values: Vec<String>,
    /// The examples it was learned from.
    pub examples: Vec<(Vec<String>, String)>,
}

impl Default for CopyCat {
    fn default() -> Self {
        Self::new()
    }
}

impl CopyCat {
    /// A session engine layered over a shared [`WorldBase`]: the base's
    /// catalog, source graph and type registry are read through by `Arc`
    /// (copy-on-write overlays), so the session's marginal footprint is
    /// only its own deltas — MIRA weights, feedback edges, wrappers,
    /// workspace and health. Everything else starts exactly as in
    /// [`CopyCat::new`].
    pub fn with_base(base: &Arc<crate::world_base::WorldBase>) -> Self {
        Self::with_parts(
            Catalog::with_base(base.catalog()),
            TypeRegistry::with_base(base.types()),
            SourceGraph::with_base(base.graph()),
        )
    }

    /// Decompose a flat engine into the parts a
    /// [`WorldBase`](crate::world_base::WorldBase) freezes and shares.
    pub(crate) fn into_shared_parts(self) -> (Catalog, SourceGraph, TypeRegistry) {
        (self.catalog, self.graph, self.registry)
    }

    /// A fresh engine with the built-in semantic types and no sources.
    pub fn new() -> Self {
        Self::with_parts(Catalog::new(), TypeRegistry::with_builtins(), SourceGraph::new())
    }

    /// The shared constructor body: everything except the three
    /// shareable parts. Kept separate so [`CopyCat::with_base`] never
    /// builds (then drops) the flat built-in registry — overlay session
    /// creation must stay allocation-light.
    fn with_parts(catalog: Catalog, registry: TypeRegistry, graph: SourceGraph) -> Self {
        Self {
            clipboard: Clipboard::new(),
            catalog,
            registry,
            learner: StructureLearner::new(),
            graph,
            workspace: Workspace::new(),
            import: None,
            mode: Mode::Import,
            current_plan: None,
            current_nodes: Vec::new(),
            mira: Mira::default(),
            last_shown: Vec::new(),
            link_examples: Vec::new(),
            link_matcher: None,
            wrappers: Vec::new(),
            tab_queries: copycat_util::hash::FxHashMap::default(),
            cleaning: false,
            transform_columns: copycat_util::hash::FxHashMap::default(),
            undo_stack: Vec::new(),
            query_cache: QueryCache::default(),
            health: HealthRegistry::new(),
            pending_health: copycat_util::hash::FxHashMap::default(),
            pending_probes: copycat_util::hash::FxHashMap::default(),
        }
    }

    // --- Undo (§5 "advanced interactions") -----------------------------

    /// Capture the current view state onto the undo stack (called by
    /// mutating user actions). The stack is bounded.
    fn checkpoint(&mut self) {
        const MAX_UNDO: usize = 32;
        let snap = Snapshot {
            workspace: self.workspace.clone(),
            current_plan: self.current_plan.clone(),
            current_nodes: self.current_nodes.clone(),
            edge_costs: self.graph.edge_ids().map(|e| self.graph.cost(e)).collect(),
            edge_count: self.graph.edge_count(),
            tab_queries: self.tab_queries.clone(),
            mode: self.mode,
        };
        self.undo_stack.push(snap);
        if self.undo_stack.len() > MAX_UNDO {
            self.undo_stack.remove(0);
        }
    }

    /// Undo the last user action: restores the workspace, the active
    /// query, and the learned edge costs. Catalog contents (committed
    /// sources) are append-only and stay. Returns false when there is
    /// nothing to undo.
    pub fn undo(&mut self) -> bool {
        let Some(snap) = self.undo_stack.pop() else {
            return false;
        };
        self.workspace = snap.workspace;
        self.current_plan = snap.current_plan;
        self.current_nodes = snap.current_nodes;
        self.tab_queries = snap.tab_queries;
        self.mode = snap.mode;
        // Edges added since the checkpoint (learned transform edges,
        // association edges of later commits) are removed outright —
        // undoing a learned transform deletes its edge and bumps the
        // graph version, so no cached ranking can resurrect it.
        self.graph.truncate_edges(snap.edge_count);
        for (e, cost) in self
            .graph
            .edge_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .zip(snap.edge_costs)
        {
            self.graph.set_cost(e, cost);
        }
        self.last_shown.clear();
        true
    }

    /// Depth of the undo stack (for UIs).
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// The workspace (for rendering and assertions).
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The source graph.
    pub fn graph(&self) -> &SourceGraph {
        &self.graph
    }

    /// The semantic type registry (mutable: users can define types on the
    /// fly, §3.2).
    pub fn registry_mut(&mut self) -> &mut TypeRegistry {
        &mut self.registry
    }

    /// The current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The active integration query, if any.
    pub fn current_plan(&self) -> Option<&Plan> {
        self.current_plan.as_ref()
    }

    /// Open a document the user is viewing (the application wrapper's
    /// "access to the source", §3.1).
    pub fn open(&mut self, doc: Document) -> DocumentId {
        self.clipboard.register(doc)
    }

    /// Paste one example row copied from `doc` into the active tab
    /// (import mode). The engine generalizes and refreshes the row
    /// auto-completions and proposed column types. Returns the number of
    /// suggested rows.
    pub fn paste_example(&mut self, doc: DocumentId, values: &[&str]) -> usize {
        self.checkpoint();
        if self.mode != Mode::Import {
            self.start_import_tab("import");
        }
        let values: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.workspace.active_mut().paste_row(&values);
        match &mut self.import {
            Some(state) if state.doc == doc => {}
            _ => {
                self.import =
                    Some(ImportState { doc, wrapper: None, alternatives: Vec::new(), rejected: Vec::new() });
            }
        }
        self.relearn_import()
    }

    /// Re-run the structure learner from the active tab's pasted examples
    /// and refresh suggestions. Returns the number of suggested rows.
    fn relearn_import(&mut self) -> usize {
        let Some(state) = &mut self.import else {
            return 0;
        };
        let doc_id = state.doc;
        let examples = self.workspace.active().pasted_rows();
        let Some(document) = self.clipboard.document(doc_id) else {
            return 0;
        };
        let mut hyps = self.learner.learn(document, &examples, &self.registry);
        // Apply remembered rejections to each hypothesis.
        let rejected = state.rejected.clone();
        for h in &mut hyps {
            if !rejected.is_empty() {
                let refined = refine(&h.wrapper, document, &rejected);
                if refined != h.wrapper {
                    h.rows = run_wrapper(&refined, document);
                    h.wrapper = refined;
                }
            }
            // Hypotheses that still produce rejected rows rank lower.
            if h.rows.iter().any(|r| rejected.contains(r)) {
                h.score -= 10.0;
            }
        }
        hyps.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
        let top = if hyps.is_empty() { None } else { Some(hyps.remove(0)) };
        state.wrapper = top.clone();
        state.alternatives = hyps;

        let tab = self.workspace.active_mut();
        tab.clear_suggestions();
        let mut suggested = 0;
        if let Some(h) = &top {
            let committed = tab.committed_rows();
            let fresh: Vec<(Vec<String>, Option<copycat_provenance::Provenance>)> = h
                .rows
                .iter()
                .filter(|r| !committed.contains(r) && !rejected.contains(r))
                .map(|r| (r.clone(), None))
                .collect();
            suggested = fresh.len();
            tab.suggest_rows(fresh);
        }
        // Column-type proposals over everything visible (Figure 1's
        // PR-Street / PR-City captions).
        let all = self.workspace.active().all_rows();
        let arity = all.iter().map(Vec::len).max().unwrap_or(0);
        for col in 0..arity {
            let col_values: Vec<String> = all
                .iter()
                .filter_map(|r| r.get(col))
                .filter(|v| !v.is_empty())
                .cloned()
                .collect();
            if let Some((ty, _)) = self.registry.best(&col_values, 0.35) {
                let label = ty.strip_prefix("PR-").unwrap_or(&ty).to_string();
                self.workspace
                    .active_mut()
                    .propose_column(col, &label, Some(&ty));
            }
        }
        suggested
    }

    /// Accept all suggested rows in the active tab.
    pub fn accept_suggested_rows(&mut self) -> usize {
        self.checkpoint();
        self.workspace.active_mut().accept_all_suggestions()
    }

    /// Reject one suggested row (import mode): removes it, refines the
    /// wrapper, and refreshes the remaining suggestions.
    pub fn reject_suggested_row(&mut self, row_index: usize) -> bool {
        self.checkpoint();
        let Some(cells) = self.workspace.active_mut().reject_row(row_index) else {
            self.undo_stack.pop(); // nothing happened
            return false;
        };
        if let Some(state) = &mut self.import {
            state.rejected.push(cells);
        }
        self.relearn_import();
        true
    }

    /// Rename a column (user action).
    pub fn name_column(&mut self, col: usize, name: &str) -> bool {
        self.workspace.active_mut().name_column(col, name)
    }

    /// Pick a column's semantic type from the hypothesis dropdown (§3.2:
    /// "the user can keep the proposed hypothesis … or select one of the
    /// other hypotheses"). Also refreshes the system-proposed label when
    /// the user hasn't named the column.
    pub fn set_column_type(&mut self, col: usize, sem_type: &str) -> bool {
        let label = sem_type
            .strip_prefix("PR-")
            .unwrap_or(sem_type)
            .to_string();
        let tab = self.workspace.active_mut();
        if col >= tab.columns.len() {
            return false;
        }
        tab.propose_column(col, &label, Some(sem_type));
        tab.columns[col].sem_type = Some(sem_type.to_string());
        true
    }

    /// The ranked type hypotheses for a column (the dropdown contents).
    pub fn column_type_hypotheses(&self, col: usize) -> Vec<String> {
        let values = self.workspace.active().column_values(col);
        self.registry
            .recognize_column(&values)
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }

    /// Commit the active import tab as a named source: materializes the
    /// learned extractor's output into the catalog, adds the source to
    /// the graph, discovers associations, and switches to integration
    /// mode. Returns the relation size.
    pub fn commit_source(&mut self, name: &str) -> usize {
        self.checkpoint();
        // Accept whatever is still suggested — committing implies consent.
        self.workspace.active_mut().accept_all_suggestions();
        let tab = self.workspace.active();
        let schema = Schema::new(tab.columns.clone());
        let rows = tab.committed_rows();
        let rel = Relation::from_strings(name, schema.clone(), &rows);
        let size = rel.len();
        self.catalog.add_relation(rel);
        if self.graph.node_by_name(name).is_none() {
            self.graph.add_relation(name, schema);
            discover_associations(&mut self.graph, &AssocOptions::default());
        }
        if let Some(state) = &self.import {
            if let Some(w) = &state.wrapper {
                self.wrappers
                    .push((name.to_string(), Some(state.doc), w.wrapper.clone()));
            }
        }
        self.workspace.active_mut().title = name.to_string();
        self.import = None;
        self.mode = Mode::Integrate;
        self.current_plan = Some(Plan::scan(name));
        self.current_nodes = self.graph.node_by_name(name).into_iter().collect();
        self.tab_queries.insert(
            self.workspace.active_index(),
            (Plan::scan(name), self.current_nodes.clone()),
        );
        size
    }

    /// Switch the active tab, restoring that tab's integration query (if
    /// it has one). Returns false on a bad index.
    pub fn switch_tab(&mut self, index: usize) -> bool {
        if !self.workspace.switch_to(index) {
            return false;
        }
        match self.tab_queries.get(&index) {
            Some((plan, nodes)) => {
                self.current_plan = Some(plan.clone());
                self.current_nodes = nodes.clone();
                self.mode = Mode::Integrate;
            }
            None => {
                self.current_plan = None;
                self.current_nodes.clear();
            }
        }
        self.last_shown.clear();
        true
    }

    /// Begin importing another source in a fresh tab.
    pub fn start_import_tab(&mut self, title: &str) {
        self.workspace.add_tab(Tab::new(title));
        self.import = None;
        self.mode = Mode::Import;
    }

    /// Add an already-cataloged relation to the source graph (used when a
    /// source arrives through a channel other than the import flow, e.g.
    /// a saved catalog from an earlier session).
    pub fn add_graph_relation(&mut self, name: &str, schema: Schema) {
        if self.graph.node_by_name(name).is_none() {
            self.graph.add_relation(name, schema);
            discover_associations(&mut self.graph, &AssocOptions::default());
        }
    }

    /// Register an external service (catalog + graph + associations).
    ///
    /// If a saved session restored fault-injection state for a probe of
    /// this name ([`crate::session::SavedSession::probes`]), it is
    /// re-applied here so a restored [`Flaky`] continues the exact roll
    /// sequence it was saved mid-way through.
    pub fn register_service(&mut self, svc: Arc<dyn Service>) {
        let sig = svc.signature().clone();
        let name = svc.name().to_string();
        let cost = svc.cost();
        if let Some(saved) = self.pending_probes.remove(&name) {
            if let Some(flaky) =
                svc.as_any().and_then(|a| a.downcast_ref::<Flaky>())
            {
                flaky.restore_state(&saved);
            }
        }
        self.catalog.add_service(svc);
        if self.graph.node_by_name(&name).is_none() {
            let mut fields = sig.inputs.fields().to_vec();
            fields.extend(sig.outputs.fields().iter().cloned());
            self.graph
                .add_service_with_cost(&name, Schema::new(fields), sig.inputs.arity(), cost);
            discover_associations(&mut self.graph, &AssocOptions::default());
        }
    }

    /// Register a service wrapped in deterministic retry + circuit
    /// breaking ([`Resilient`]), tracked by the engine's health
    /// registry so failover can ban its edges when the breaker trips.
    pub fn register_resilient(
        &mut self,
        svc: Arc<dyn Service>,
        policy: RetryPolicy,
    ) -> Arc<Resilient> {
        let wrapped = Arc::new(Resilient::new(svc, policy));
        // Re-attach health restored from a saved session (tripped
        // breakers, retry/trip counters, inner fault-injection state)
        // before the service becomes callable: a breaker that was open
        // at save time must still be open after restore.
        if let Some(saved) = self.pending_health.remove(wrapped.name()) {
            wrapped.restore_health(&saved);
        }
        self.health.register(wrapped.clone());
        self.register_service(wrapped.clone() as Arc<dyn Service>);
        wrapped
    }

    /// Stash health state from a saved session for re-attachment when
    /// the caller re-registers the corresponding services (service
    /// implementations are closures and do not persist; their runtime
    /// health does).
    pub(crate) fn stash_saved_health(
        &mut self,
        services: &[SavedServiceHealth],
        probes: &[(String, SavedFlakyState)],
    ) {
        for s in services {
            self.pending_health.insert(s.service.clone(), s.clone());
        }
        for (name, s) in probes {
            self.pending_probes.insert(name.clone(), s.clone());
        }
    }

    /// The engine's service-health registry (breaker states, retry and
    /// trip counters for every [`CopyCat::register_resilient`] service).
    pub fn health(&self) -> &HealthRegistry {
        &self.health
    }

    /// Health snapshots for every resilient service, registration order.
    pub fn health_snapshots(&self) -> Vec<HealthSnapshot> {
        self.health.snapshots()
    }

    /// Re-price tracked services' graph edges from *observed* health:
    /// a resilient wrapper's `cost()` reflects its observed failure
    /// rate, so a service that keeps exhausting retries gets costlier
    /// bind edges (dropping in MIRA/Steiner ranking) and a recovered
    /// one cheapens again. Edge costs are scaled by the hint ratio so
    /// MIRA's learned adjustments survive; the graph version bumps
    /// only on an effective change (cache-friendly).
    pub fn refresh_service_costs(&mut self) {
        for snap in self.health.snapshots() {
            let Some(resilient) = self.health.get(&snap.service) else {
                continue;
            };
            let Some(node) = self.graph.node_by_name(&snap.service) else {
                continue;
            };
            let new_hint = resilient.cost().max(0.1);
            let old_hint = self.graph.set_cost_hint(node, new_hint);
            if (new_hint - old_hint).abs() < 1e-12 {
                continue;
            }
            for e in self.graph.incident(node).to_vec() {
                if matches!(self.graph.edge(e).kind, EdgeKind::Bind { .. }) {
                    let scaled = self.graph.cost(e) / old_hint * new_hint;
                    self.graph.set_cost(e, scaled);
                }
            }
        }
    }

    /// Edges incident to services whose breaker is currently open —
    /// banned from discovery so explanations route around them.
    fn tripped_edges(&self) -> Vec<EdgeId> {
        let mut banned: Vec<EdgeId> = self
            .health
            .tripped_services()
            .iter()
            .filter_map(|name| self.graph.node_by_name(name))
            .flat_map(|n| self.graph.incident(n).iter().copied())
            .collect();
        banned.sort_unstable();
        banned.dedup();
        banned
    }

    /// Ranked column auto-completions for the active integration query
    /// (Figure 2). The list is remembered so feedback can compare the
    /// accepted suggestion against the alternatives shown.
    ///
    /// Completions degraded by service failures rank below healthy
    /// ones, and when a circuit breaker is open the list additionally
    /// carries failover proposals that re-plan through equivalent
    /// replacement sources with the tripped service's edges banned.
    pub fn column_suggestions(&mut self) -> Vec<ColumnSuggestion> {
        self.refresh_service_costs();
        let Some(plan) = self.current_plan.clone() else {
            return Vec::new();
        };
        let rows = self.workspace.active().committed_rows();
        let mut suggs = autocomplete::column_suggestions(
            &self.graph,
            &self.catalog,
            &plan,
            &self.current_nodes,
            &rows,
            SUGGESTION_COST_THRESHOLD,
            self.link_matcher.as_ref(),
        );
        let tripped = self.health.tripped_services();
        if !tripped.is_empty() {
            let failover = autocomplete::failover_suggestions(
                &self.graph,
                &self.catalog,
                &plan,
                &self.current_nodes,
                &rows,
                &tripped,
            );
            for f in failover {
                // A replacement already surfaced as a healthy direct
                // suggestion makes the failover proposal redundant.
                if !suggs.iter().any(|s| s.edge == f.edge) {
                    suggs.push(f);
                }
            }
            autocomplete::sort_suggestions(&mut suggs);
        }
        self.last_shown = suggs.clone();
        suggs
    }

    /// Accept a column suggestion: extend the tab, adopt the extended
    /// query, and promote the chosen edge over the alternatives that were
    /// shown (MIRA constraint per §4.2).
    pub fn accept_column(&mut self, sugg: &ColumnSuggestion) {
        self.checkpoint();
        let tab = self.workspace.active_mut();
        for (i, field) in sugg.new_fields.iter().enumerate() {
            let col: Vec<String> = sugg
                .values
                .iter()
                .map(|row| row.get(i).cloned().unwrap_or_default())
                .collect();
            tab.add_column(field.clone(), &col);
        }
        for (row, prov) in tab.rows.iter_mut().zip(sugg.provenance.iter()) {
            if let Some(p) = prov {
                row.provenance = Some(p.clone());
            }
        }
        self.current_plan = Some(sugg.plan.clone());
        // Track the new node set.
        let edge = self.graph.edge(sugg.edge);
        for n in [edge.a, edge.b] {
            if !self.current_nodes.contains(&n) {
                self.current_nodes.push(n);
            }
        }
        self.tab_queries.insert(
            self.workspace.active_index(),
            (sugg.plan.clone(), self.current_nodes.clone()),
        );
        // Promote over the alternatives shown alongside.
        let alternatives: Vec<Vec<copycat_graph::EdgeId>> = self
            .last_shown
            .iter()
            .filter(|s| s.edge != sugg.edge)
            .map(|s| vec![s.edge])
            .collect();
        self.mira
            .rank_above(&mut self.graph, &[sugg.edge], &alternatives);
        self.last_shown.clear();
    }

    /// Reject a column suggestion: its edge is demoted below the
    /// relevance threshold ("these should be given a rank below the
    /// relevance threshold", §4.2).
    pub fn reject_column(&mut self, sugg: &ColumnSuggestion) {
        self.checkpoint();
        let demoted = (SUGGESTION_COST_THRESHOLD + self.mira.margin)
            .max(self.graph.cost(sugg.edge) + self.mira.margin);
        self.graph.set_cost(sugg.edge, demoted);
    }

    /// Discover ranked queries covering the sources that mention the
    /// pasted tuple's values (§4.2 mode 2: "user-pasted tuples in which
    /// the attributes do not all originate from the same source").
    pub fn discover_queries_for_tuple(&self, values: &[&str], k: usize) -> Vec<ScoredQuery> {
        let mut terminals: Vec<NodeId> = Vec::new();
        for v in values {
            for name in self.catalog.relation_names() {
                let Some(rel) = self.catalog.relation(&name) else {
                    continue;
                };
                let holds = rel
                    .tuples()
                    .iter()
                    .any(|t| t.values.iter().any(|c| c.as_text() == *v));
                if holds {
                    if let Some(node) = self.graph.node_by_name(&name) {
                        if !terminals.contains(&node) {
                            terminals.push(node);
                        }
                    }
                    break;
                }
            }
        }
        if terminals.is_empty() {
            return Vec::new();
        }
        autocomplete::discover_queries_cached_banned(
            &self.graph,
            &self.catalog,
            &terminals,
            k,
            &self.tripped_edges(),
            &self.query_cache,
        )
    }

    /// Hit/miss/invalidation counters of the engine's query cache.
    pub fn query_cache_stats(&self) -> CacheStats {
        self.query_cache.stats()
    }

    /// Feedback on discovered queries: the accepted one is constrained to
    /// rank above each rejected alternative (the Q-style learning of E2).
    pub fn prefer_query(&mut self, accepted: &ScoredQuery, rejected: &[&ScoredQuery]) -> usize {
        let rejected_trees: Vec<Vec<copycat_graph::EdgeId>> =
            rejected.iter().map(|q| q.tree.edges.clone()).collect();
        self.mira
            .rank_above(&mut self.graph, &accepted.tree.edges, &rejected_trees)
    }

    /// Declare a record-link association between two sources' columns —
    /// the "known links" of §4.1, which the user implicitly declares by
    /// pasting a matching value next to a row. Returns false when either
    /// source is missing from the graph.
    pub fn declare_link(
        &mut self,
        source_a: &str,
        col_a: &str,
        source_b: &str,
        col_b: &str,
    ) -> bool {
        let (Some(a), Some(b)) = (
            self.graph.node_by_name(source_a),
            self.graph.node_by_name(source_b),
        ) else {
            return false;
        };
        let exists = self.graph.incident(a).iter().any(|&e| {
            self.graph.other_end(e, a) == b
                && matches!(&self.graph.edge(e).kind, copycat_graph::EdgeKind::Link { pairs }
                    if pairs.first().is_some_and(|(x, y)| x == col_a && y == col_b))
        });
        if !exists {
            self.graph.add_edge_with_cost(
                a,
                b,
                copycat_graph::EdgeKind::Link {
                    pairs: vec![(col_a.to_string(), col_b.to_string())],
                },
                1.5,
            );
        }
        true
    }

    /// Teach the record-link matcher from a demonstrated pair (Example
    /// 1's "the integrator might paste matches for several shelters").
    pub fn demonstrate_link(&mut self, left: &str, right: &str, matched: bool) {
        self.link_examples.push(LabeledPair {
            left: vec![left.to_string()],
            right: vec![right.to_string()],
            matched,
        });
        let corpus: Vec<String> = self
            .link_examples
            .iter()
            .flat_map(|p| [p.left[0].clone(), p.right[0].clone()])
            .collect();
        self.link_matcher =
            Some(MatchLearner::new(1).train(&self.link_examples, TfIdfIndex::build(&corpus)));
    }

    // --- Transforms (§5 "complex functions / transforms") --------------

    /// Learn derived-column programs from typed examples: the user fills
    /// in the new column's value for a few rows and the system searches
    /// for a function explaining them. `examples` pairs a committed-row
    /// index with the typed output. Ranked simplest-first.
    pub fn suggest_transform(&self, examples: &[(usize, &str)]) -> Vec<TransformSuggestion> {
        let rows = self.workspace.active().committed_rows();
        let labeled: Vec<(Vec<String>, String)> = examples
            .iter()
            .filter_map(|&(i, out)| rows.get(i).map(|r| (r.clone(), out.to_string())))
            .collect();
        if labeled.is_empty() {
            return Vec::new();
        }
        TransformLearner::new()
            .learn(&labeled)
            .into_iter()
            .take(3)
            .map(|program| {
                let values: Vec<String> = rows
                    .iter()
                    .map(|r| program.apply(r).unwrap_or_default())
                    .collect();
                TransformSuggestion { program, values, examples: labeled.clone() }
            })
            .collect()
    }

    /// Accept a transform suggestion as a new named column. The program
    /// is remembered so later edits to the column can re-teach it.
    pub fn accept_transform(&mut self, name: &str, sugg: &TransformSuggestion) {
        self.checkpoint();
        let tab = self.workspace.active_mut();
        let col = tab.columns.len();
        tab.add_column(Field::new(name), &sugg.values);
        tab.name_column(col, name);
        self.transform_columns
            .insert(col, (sugg.program.clone(), sugg.examples.clone()));
    }

    // --- Transform edges (syntactic join-with-transformation) ----------

    /// Learn a string-transform program from `(input, output)` example
    /// pairs and surface it as a first-class graph edge from
    /// `from_source.from_col` into `to_source.to_col`. The edge's cost
    /// derives from program size and example coverage (the fraction of
    /// source values the program maps into the target column), so the
    /// Steiner search and MIRA treat it exactly like any service or
    /// join edge. Returns `None` when either source is unknown or no
    /// bounded program is consistent with the examples.
    pub fn learn_transform(
        &mut self,
        from_source: &str,
        from_col: &str,
        to_source: &str,
        to_col: &str,
        examples: &[(String, String)],
    ) -> Option<LearnedTransform> {
        let (Some(a), Some(b)) = (
            self.graph.node_by_name(from_source),
            self.graph.node_by_name(to_source),
        ) else {
            return None;
        };
        let program = copycat_transform::learn(examples)?;
        let coverage = self.transform_coverage(&program, from_source, from_col, to_source, to_col);
        let cost = copycat_transform::edge_cost(&program, coverage);
        let kind = copycat_graph::EdgeKind::Transform {
            from: from_col.to_string(),
            to: to_col.to_string(),
            program: program.clone(),
        };
        // Re-learning the same mapping refreshes the existing edge's
        // cost instead of stacking duplicates.
        let existing = self.graph.incident(a).iter().copied().find(|&e| {
            let edge = self.graph.edge(e);
            edge.a == a && edge.b == b && edge.kind == kind
        });
        let edge = match existing {
            Some(e) => {
                self.graph.set_cost(e, cost);
                e
            }
            None => {
                self.checkpoint();
                self.graph.add_edge_with_cost(a, b, kind, cost)
            }
        };
        Some(LearnedTransform {
            edge,
            from_source: from_source.to_string(),
            from_col: from_col.to_string(),
            to_source: to_source.to_string(),
            to_col: to_col.to_string(),
            program,
            coverage,
            cost,
        })
    }

    /// Fraction of the source column's non-empty values the program
    /// maps into the target column's value set. Missing relations or
    /// columns count as zero coverage (the edge prices near the
    /// relevance threshold but still exists for feedback to adjust).
    fn transform_coverage(
        &self,
        program: &copycat_transform::Program,
        from_source: &str,
        from_col: &str,
        to_source: &str,
        to_col: &str,
    ) -> f64 {
        let (Some(from_rel), Some(to_rel)) = (
            self.catalog.relation(from_source),
            self.catalog.relation(to_source),
        ) else {
            return 0.0;
        };
        let (Some(fi), Some(ti)) = (
            from_rel.schema().index_of(from_col),
            to_rel.schema().index_of(to_col),
        ) else {
            return 0.0;
        };
        let targets: copycat_util::hash::FxHashSet<String> = to_rel
            .tuples()
            .iter()
            .map(|t| t.values[ti].as_text())
            .collect();
        let mut total = 0usize;
        let mut hit = 0usize;
        for t in from_rel.tuples() {
            let v = t.values[fi].as_text();
            if v.is_empty() {
                continue;
            }
            total += 1;
            if program.apply(&v).is_some_and(|out| targets.contains(&out)) {
                hit += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Every transform edge currently in the graph, in edge-id order.
    pub fn list_transforms(&self) -> Vec<LearnedTransform> {
        let mut out = Vec::new();
        for e in self.graph.edge_ids() {
            let edge = self.graph.edge(e);
            let copycat_graph::EdgeKind::Transform { from, to, program } = &edge.kind else {
                continue;
            };
            out.push(LearnedTransform {
                edge: e,
                from_source: self.graph.node(edge.a).name.clone(),
                from_col: from.clone(),
                to_source: self.graph.node(edge.b).name.clone(),
                to_col: to.clone(),
                program: program.clone(),
                coverage: self.transform_coverage(
                    program,
                    &self.graph.node(edge.a).name,
                    from,
                    &self.graph.node(edge.b).name,
                    to,
                ),
                cost: edge.weight,
            });
        }
        out
    }

    // --- Cleaning mode & edit generalization (§5 "data cleaning") ------

    /// Toggle cleaning mode: while on, [`Self::edit_cell`] never
    /// generalizes ("the user would need to explicitly tell the system to
    /// switch into 'cleaning' mode, so the system does not try to
    /// generalize any updates beyond the current tuple").
    pub fn set_cleaning(&mut self, on: bool) {
        self.cleaning = on;
    }

    /// Whether cleaning mode is on.
    pub fn cleaning(&self) -> bool {
        self.cleaning
    }

    /// Edit one cell. In cleaning mode the edit is local. Otherwise, when
    /// the column was created by a transform program, the edit is treated
    /// as a new example: the program is re-learned and — if a consistent
    /// program exists — re-applied to every row (a generalized edit).
    pub fn edit_cell(&mut self, row: usize, col: usize, value: &str) -> EditEffect {
        self.checkpoint();
        let inputs: Option<Vec<String>> = {
            let tab = self.workspace.active();
            tab.rows.get(row).map(|r| {
                // The transform inputs are the columns that existed when
                // the program was learned (everything left of `col`).
                r.cells.iter().take(col).cloned().collect()
            })
        };
        let tab = self.workspace.active_mut();
        let Some(r) = tab.rows.get_mut(row) else {
            return EditEffect::Local;
        };
        if col >= r.cells.len() {
            return EditEffect::Local;
        }
        r.cells[col] = value.to_string();
        if self.cleaning {
            return EditEffect::Local;
        }
        let (Some(inputs), Some((_, examples))) =
            (inputs, self.transform_columns.get_mut(&col))
        else {
            return EditEffect::Local;
        };
        examples.push((inputs, value.to_string()));
        let programs = TransformLearner::new().learn(examples);
        let Some(program) = programs.into_iter().next() else {
            // No consistent program any more: the edit was a one-off
            // correction; drop back to local semantics.
            return EditEffect::Local;
        };
        // Re-apply to every row except explicit examples.
        let tab = self.workspace.active_mut();
        let mut updated = 0;
        for r in tab.rows.iter_mut() {
            let inputs: Vec<String> = r.cells.iter().take(col).cloned().collect();
            if let Some(v) = program.apply(&inputs) {
                if r.cells[col] != v {
                    r.cells[col] = v;
                    updated += 1;
                }
            }
        }
        self.transform_columns.get_mut(&col).expect("present").0 = program;
        EditEffect::Generalized(updated)
    }

    // --- Cross-learner feedback (§5 "feedback interaction") ------------

    /// Reject a committed tuple in integration mode, routing the feedback
    /// through its provenance: the blamed queries are reported, and any
    /// base tuple whose source has a remembered wrapper feeds the
    /// structure learner — the wrapper is refined to exclude that source
    /// row, re-executed, and the catalog relation replaced.
    pub fn reject_tuple(&mut self, row: usize) -> TupleRejection {
        self.checkpoint();
        let provenance = self
            .workspace
            .active()
            .rows
            .get(row)
            .and_then(|r| r.provenance.clone());
        // Remove the row from the view regardless.
        if row < self.workspace.active().rows.len() {
            self.workspace.active_mut().rows.remove(row);
        }
        let Some(p) = provenance else {
            return TupleRejection { queries: Vec::new(), refined_sources: Vec::new() };
        };
        let queries: Vec<String> = p.labels().iter().map(|s| s.to_string()).collect();
        let mut refined_sources = Vec::new();
        for base in p.base_tuples() {
            let source = base.relation.to_string();
            let Some((_, Some(doc_id), wrapper)) = self
                .wrappers
                .iter()
                .find(|(n, _, _)| *n == source)
                .cloned()
            else {
                continue;
            };
            let Some(rel) = self.catalog.relation(&source) else {
                continue;
            };
            let Some(tuple) = rel.tuples().get(base.row as usize) else {
                continue;
            };
            let rejected_row = tuple.as_texts();
            let Some(document) = self.clipboard.document(doc_id) else {
                continue;
            };
            let refined = refine(&wrapper, document, std::slice::from_ref(&rejected_row));
            let mut rows = run_wrapper(&refined, document);
            rows.retain(|r| *r != rejected_row);
            let n = rows.len();
            let new_rel = Relation::from_strings(&source, rel.schema().clone(), &rows);
            self.catalog.add_relation(new_rel);
            if let Some(w) = self.wrappers.iter_mut().find(|(n, _, _)| *n == source) {
                w.2 = refined;
            }
            refined_sources.push((source, n));
        }
        TupleRejection { queries, refined_sources }
    }

    /// Describe a source function in terms of the registered services
    /// (§3.2): given I/O examples observed in the workspace, rank the
    /// services — and two-step compositions of them — that reproduce the
    /// same mapping. This is what lets CopyCat "propose replacement
    /// sources if a source is down, too slow, or does not provide a
    /// complete set of results".
    pub fn find_equivalent_services(
        &self,
        examples: &[copycat_semantic::IoExample],
    ) -> Vec<copycat_semantic::SourceDescription> {
        let mut learner = copycat_semantic::FunctionLearner::new();
        for name in self.catalog.service_names() {
            let Some(svc) = self.catalog.service(&name) else {
                continue;
            };
            let sig = svc.signature().clone();
            let svc_for_eval = Arc::clone(&svc);
            learner.register(copycat_semantic::KnownFunction::new(
                name,
                sig.inputs.arity(),
                sig.outputs.arity(),
                move |inputs: &[String]| {
                    let vals: Vec<copycat_query::Value> =
                        inputs.iter().map(|s| copycat_query::Value::parse(s)).collect();
                    svc_for_eval
                        .call(&vals)
                        .into_iter()
                        .next()
                        .map(|row| row.iter().map(copycat_query::Value::as_text).collect())
                },
            ));
        }
        learner.describe(examples)
    }

    // --- Session persistence support ------------------------------------

    /// The semantic type registry (read-only).
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// The learned wrappers by source name (session save).
    pub fn saved_wrappers(&self) -> Vec<(String, Wrapper)> {
        self.wrappers
            .iter()
            .map(|(n, _, w)| (n.clone(), w.clone()))
            .collect()
    }

    /// Replace the source graph wholesale (session restore). The query
    /// cache is *replaced*, not just cleared: the new graph's version
    /// numbering is unrelated to the old one's, so no cached tree — and
    /// no hit/miss counter — may survive the swap. A loaded session
    /// always starts cold and can never serve a stale cached query
    /// result.
    pub(crate) fn restore_graph(&mut self, graph: SourceGraph) {
        self.graph = graph;
        self.query_cache = QueryCache::default();
    }

    /// Re-register a saved wrapper without a live document.
    pub(crate) fn restore_wrapper(&mut self, name: &str, wrapper: Wrapper) {
        self.wrappers.push((name.to_string(), None, wrapper));
    }

    /// Reattach a live document to a restored wrapper, re-extract, and
    /// refresh the catalog relation. Returns the re-extracted row count,
    /// or `None` when the source has no saved wrapper.
    pub fn attach_wrapper_document(&mut self, source: &str, doc: DocumentId) -> Option<usize> {
        let idx = self.wrappers.iter().position(|(n, _, _)| n == source)?;
        self.wrappers[idx].1 = Some(doc);
        let wrapper = self.wrappers[idx].2.clone();
        let document = self.clipboard.document(doc)?;
        let rows = run_wrapper(&wrapper, document);
        let schema = self
            .catalog
            .relation(source)
            .map(|r| r.schema().clone())
            .unwrap_or_else(|| Schema::of(&[]));
        let n = rows.len();
        self.catalog
            .add_relation(Relation::from_strings(source, schema, &rows));
        Some(n)
    }

    /// Open a workspace tab showing a cataloged source and make it the
    /// active integration query (used after a session restore, where no
    /// import tabs exist).
    pub fn switch_tab_to_source(&mut self, name: &str) -> bool {
        let (Some(rel), Some(node)) =
            (self.catalog.relation(name), self.graph.node_by_name(name))
        else {
            return false;
        };
        let mut tab = Tab::new(name);
        tab.columns = rel.schema().fields().to_vec();
        tab.user_named = vec![true; tab.columns.len()];
        for row in rel.as_texts() {
            tab.paste_row(&row);
        }
        let idx = self.workspace.add_tab(tab);
        self.mode = Mode::Integrate;
        self.current_plan = Some(Plan::scan(name));
        self.current_nodes = vec![node];
        self.tab_queries
            .insert(idx, (Plan::scan(name), vec![node]));
        true
    }

    /// The fields of the active tab (header row).
    pub fn columns(&self) -> &[Field] {
        &self.workspace.active().columns
    }

    /// Render the active tab as text (the headless screenshot).
    pub fn render(&self) -> String {
        self.workspace.active().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_document::corpus::{contact_sheet, render_list, ListSpec, Tier};
    use copycat_services::{World, WorldConfig, ZipResolver};

    fn world() -> Arc<World> {
        Arc::new(World::generate(&WorldConfig {
            // A seed whose 10 venue names are collision-free: name dedup
            // appends "#n", and a one-example wrapper is not expected to
            // generalize to that shape (E4 covers the noisy tiers).
            seed: 15,
            cities: 4,
            streets_per_city: 6,
            venues: 10,
        }))
    }

    fn shelter_doc(w: &World, tier: Tier) -> Document {
        let rows = w.shelter_rows();
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], tier, 3);
        Document::Site(render_list(&spec, &rows).site)
    }

    #[test]
    fn import_flow_generalizes_rows_and_types() {
        let w = world();
        let rows = w.shelter_rows();
        let mut cc = CopyCat::new();
        let doc = cc.open(shelter_doc(&w, Tier::Clean));
        let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        let suggested = cc.paste_example(doc, &first);
        assert!(suggested >= rows.len() - 1, "suggested {suggested}");
        // Street is proposed outright; the city column of this tiny
        // 4-city world is all two-token names, so City and Person are
        // both hypotheses — City must be in the dropdown, and the user
        // picks it (§3.2).
        let types: Vec<Option<String>> =
            cc.columns().iter().map(|c| c.sem_type.clone()).collect();
        assert!(types.contains(&Some("PR-Street".to_string())), "{types:?}");
        let hyps = cc.column_type_hypotheses(2);
        assert!(hyps.contains(&"PR-City".to_string()), "{hyps:?}");
        cc.set_column_type(2, "PR-City");
        assert_eq!(cc.columns()[2].sem_type.as_deref(), Some("PR-City"));
        // Accept and commit.
        cc.accept_suggested_rows();
        let n = cc.commit_source("Shelters");
        assert_eq!(n, rows.len());
        assert_eq!(cc.mode(), Mode::Integrate);
        assert!(cc.catalog().relation("Shelters").is_some());
    }

    #[test]
    fn zip_column_autocomplete_end_to_end() {
        let w = world();
        let rows = w.shelter_rows();
        let mut cc = CopyCat::new();
        let doc = cc.open(shelter_doc(&w, Tier::Clean));
        let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        cc.paste_example(doc, &first);
        cc.accept_suggested_rows();
        cc.name_column(0, "Name");
        cc.set_column_type(2, "PR-City"); // dropdown correction (see above)
        cc.commit_source("Shelters");
        cc.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
        let suggs = cc.column_suggestions();
        assert!(!suggs.is_empty(), "zip suggestion expected");
        let zip = suggs
            .iter()
            .find(|s| s.new_fields.iter().any(|f| f.name == "Zip"))
            .expect("zip column suggested");
        // Values are the true zips.
        for (i, v) in zip.values.iter().enumerate() {
            assert_eq!(v[0], w.venue_zip(&w.venues[i]), "row {i}");
        }
        let before_cols = cc.columns().len();
        cc.accept_column(zip);
        assert_eq!(cc.columns().len(), before_cols + 1);
        // Rows now carry provenance through the service.
        let tab = cc.workspace().active();
        let prov = tab.rows[0].provenance.as_ref().expect("provenance");
        assert!(prov.relations().contains(&"zip_resolver"));
    }

    #[test]
    fn rejecting_ad_rows_refines_wrapper() {
        let w = world();
        let rows = w.shelter_rows();
        let mut cc = CopyCat::new();
        let doc = cc.open(shelter_doc(&w, Tier::Noisy));
        let ex0: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        let ex1: Vec<&str> = rows[1].iter().map(String::as_str).collect();
        cc.paste_example(doc, &ex0);
        cc.paste_example(doc, &ex1);
        // Find any suggested row that is not a true shelter row and
        // reject it; the wrapper should refine.
        let bogus_idx = {
            let tab = cc.workspace().active();
            tab.rows
                .iter()
                .position(|r| {
                    r.state == crate::workspace::RowState::Suggested && !rows.contains(&r.cells)
                })
        };
        if let Some(i) = bogus_idx {
            assert!(cc.reject_suggested_row(i));
            // After refinement no suggested row is a known-bogus one.
            let tab = cc.workspace().active();
            let still_bogus = tab
                .rows
                .iter()
                .filter(|r| r.state == crate::workspace::RowState::Suggested)
                .filter(|r| !rows.contains(&r.cells))
                .count();
            assert_eq!(still_bogus, 0, "refinement should drop ad rows");
        }
        cc.accept_suggested_rows();
        let n = cc.commit_source("Shelters");
        assert!(n >= rows.len() - 1, "imported {n} of {}", rows.len());
    }

    #[test]
    fn rejecting_column_demotes_edge() {
        let w = world();
        let rows = w.shelter_rows();
        let mut cc = CopyCat::new();
        let doc = cc.open(shelter_doc(&w, Tier::Clean));
        let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        cc.paste_example(doc, &first);
        cc.accept_suggested_rows();
        cc.set_column_type(2, "PR-City");
        cc.commit_source("Shelters");
        cc.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
        let suggs = cc.column_suggestions();
        let zip = suggs[0].clone();
        cc.reject_column(&zip);
        let again = cc.column_suggestions();
        assert!(
            again.iter().all(|s| s.edge != zip.edge),
            "rejected edge must fall below the relevance threshold"
        );
    }

    /// Shelters + Contacts imported and committed (the Example 1 pair).
    fn two_source_engine() -> (Arc<World>, CopyCat) {
        let w = world();
        let rows = w.shelter_rows();
        let contacts = w.contact_rows();
        let mut cc = CopyCat::new();
        // Import shelters.
        let doc = cc.open(shelter_doc(&w, Tier::Clean));
        let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        cc.paste_example(doc, &first);
        cc.accept_suggested_rows();
        cc.name_column(0, "Venue");
        // Correct the city column (otherwise its auto-label "Person"
        // collides with the contacts' real Person column and the default
        // conjunction-of-all-predicates join matches nothing — the very
        // pitfall ablation A1 measures).
        cc.set_column_type(2, "PR-City");
        cc.commit_source("Shelters");
        // Import contacts from a spreadsheet.
        cc.start_import_tab("contacts");
        let sheet = contact_sheet(
            "contacts.xls",
            &["Person", "Phone", "Venue"],
            contacts.clone(),
        );
        let sheet_doc = cc.open(Document::Sheet(sheet));
        let c0: Vec<&str> = contacts[0].iter().map(String::as_str).collect();
        cc.paste_example(sheet_doc, &c0);
        cc.accept_suggested_rows();
        cc.name_column(2, "Venue");
        cc.commit_source("Contacts");
        (w, cc)
    }

    #[test]
    fn second_source_and_query_discovery() {
        let (w, cc) = two_source_engine();
        let rows = w.shelter_rows();
        let contacts = w.contact_rows();
        // A tuple mixing a shelter street (only in Shelters) and a
        // contact phone (only in Contacts) implies a join query across
        // the two sources.
        let queries = cc.discover_queries_for_tuple(
            &[rows[0][1].as_str(), contacts[0][1].as_str()],
            3,
        );
        assert!(!queries.is_empty());
        let top = &queries[0];
        assert!(top.plan.sources().contains(&"Shelters"));
        assert!(top.plan.sources().contains(&"Contacts"));
        assert!(!top.result.is_empty(), "join should produce rows");
    }

    #[test]
    fn query_cache_hits_repeats_and_invalidates_on_feedback() {
        let (w, mut cc) = two_source_engine();
        let rows = w.shelter_rows();
        let contacts = w.contact_rows();
        let values = [rows[0][1].as_str(), contacts[0][1].as_str()];
        let first = cc.discover_queries_for_tuple(&values, 3);
        assert!(!first.is_empty());
        assert_eq!(cc.query_cache_stats().misses, 1);
        // Same paste again: the Steiner search is served from the cache.
        let again = cc.discover_queries_for_tuple(&values, 3);
        assert_eq!(cc.query_cache_stats().hits, 1);
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(again.iter()) {
            assert_eq!(a.tree, b.tree);
        }
        if first.len() >= 2 {
            // Feedback on the ranking bumps the graph version …
            let updates = cc.prefer_query(&first[1], &[&first[0]]);
            assert!(updates > 0, "preferring a costlier query must adjust edges");
            // … so the next discovery recomputes and matches a cold search.
            let after = cc.discover_queries_for_tuple(&values, 3);
            assert_eq!(cc.query_cache_stats().invalidations, 1);
            // Cold search over the same terminals the engine derived.
            let terminals: Vec<NodeId> = ["Shelters", "Contacts"]
                .iter()
                .filter_map(|n| cc.graph.node_by_name(n))
                .collect();
            let cold = autocomplete::discover_queries(&cc.graph, &cc.catalog, &terminals, 3);
            assert_eq!(after.len(), cold.len());
            for (a, b) in after.iter().zip(cold.iter()) {
                assert_eq!(a.tree, b.tree);
            }
        }
    }

    fn imported_engine() -> (Arc<World>, CopyCat) {
        let w = world();
        let rows = w.shelter_rows();
        let mut cc = CopyCat::new();
        let doc = cc.open(shelter_doc(&w, Tier::Clean));
        let first: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        cc.paste_example(doc, &first);
        cc.accept_suggested_rows();
        cc.name_column(0, "Name");
        cc.set_column_type(2, "PR-City");
        cc.commit_source("Shelters");
        (w, cc)
    }

    #[test]
    fn transform_column_from_examples() {
        let (_, mut cc) = imported_engine();
        let rows = cc.workspace().active().committed_rows();
        // The user types "Name (City)" labels for two rows.
        let out0 = format!("{} ({})", rows[0][0], rows[0][2]);
        let out1 = format!("{} ({})", rows[1][0], rows[1][2]);
        let suggs = cc.suggest_transform(&[(0, &out0), (1, &out1)]);
        assert!(!suggs.is_empty(), "a label template is learnable");
        let top = suggs[0].clone();
        // Every other row is filled consistently.
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(top.values[i], format!("{} ({})", r[0], r[2]));
        }
        let before = cc.columns().len();
        cc.accept_transform("Label", &top);
        assert_eq!(cc.columns().len(), before + 1);
        assert_eq!(cc.columns().last().unwrap().name, "Label");
    }

    #[test]
    fn cleaning_mode_keeps_edits_local() {
        let (_, mut cc) = imported_engine();
        let rows = cc.workspace().active().committed_rows();
        let out0 = format!("{}!", rows[0][0]);
        let out1 = format!("{}!", rows[1][0]);
        let sugg = cc.suggest_transform(&[(0, &out0), (1, &out1)])[0].clone();
        let col = cc.columns().len();
        cc.accept_transform("Shout", &sugg);
        // Cleaning mode: a one-off fix does not re-teach the program.
        cc.set_cleaning(true);
        let effect = cc.edit_cell(2, col, "SPECIAL CASE");
        assert_eq!(effect, EditEffect::Local);
        let tab = cc.workspace().active();
        assert_eq!(tab.rows[2].cells[col], "SPECIAL CASE");
        assert_eq!(tab.rows[3].cells[col], format!("{}!", rows[3][0]));
    }

    #[test]
    fn edits_outside_cleaning_mode_generalize() {
        let (_, mut cc) = imported_engine();
        let rows = cc.workspace().active().committed_rows();
        let out0 = format!("{}!", rows[0][0]);
        let out1 = format!("{}!", rows[1][0]);
        let sugg = cc.suggest_transform(&[(0, &out0), (1, &out1)])[0].clone();
        let col = cc.columns().len();
        cc.accept_transform("Shout", &sugg);
        // The user edits row 2 to a *different but learnable* shape:
        // "Name?" instead of "Name!". Inconsistent with the old examples,
        // so the system falls back to a local edit.
        let effect = cc.edit_cell(2, col, &format!("{}?", rows[2][0]));
        assert_eq!(effect, EditEffect::Local);
        // But an edit consistent with a refinement generalizes: extend
        // the program's examples coherently.
        let (_, mut cc2) = imported_engine();
        let sugg2 = cc2.suggest_transform(&[(0, &out0)])[0].clone();
        let col2 = cc2.columns().len();
        cc2.accept_transform("Shout", &sugg2);
        let effect2 = cc2.edit_cell(1, col2, &format!("{}!", rows[1][0]));
        // Still consistent with the learned program: nothing else needed
        // changing, so zero or more cells updated — the point is it did
        // not corrupt other rows.
        match effect2 {
            EditEffect::Generalized(_) | EditEffect::Local => {}
        }
        let tab = cc2.workspace().active();
        assert_eq!(tab.rows[3].cells[col2], format!("{}!", rows[3][0]));
    }

    #[test]
    fn undo_restores_workspace_and_costs() {
        let (w, mut cc) = imported_engine();
        cc.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
        let cols_before = cc.columns().len();
        let suggs = cc.column_suggestions();
        let zip = suggs[0].clone();
        let cost_before = cc.graph().cost(zip.edge);
        cc.accept_column(&zip);
        assert_eq!(cc.columns().len(), cols_before + 1);
        assert!(cc.undo());
        assert_eq!(cc.columns().len(), cols_before, "column removed by undo");
        assert_eq!(cc.graph().cost(zip.edge), cost_before, "cost restored");
        // Undo stack unwinds further without panicking.
        while cc.undo() {}
        assert_eq!(cc.undo_depth(), 0);
    }

    #[test]
    fn reject_tuple_routes_feedback_to_source_wrapper() {
        let (w, mut cc) = imported_engine();
        cc.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
        let suggs = cc.column_suggestions();
        let zip = suggs[0].clone();
        cc.accept_column(&zip);
        let before = cc.catalog().relation("Shelters").unwrap().len();
        let rejection = cc.reject_tuple(0);
        assert!(
            rejection.queries.iter().any(|q| q.contains("zip_resolver")),
            "{rejection:?}"
        );
        assert!(
            rejection
                .refined_sources
                .iter()
                .any(|(s, _)| s == "Shelters"),
            "wrapper feedback should reach the Shelters source: {rejection:?}"
        );
        let after = cc.catalog().relation("Shelters").unwrap().len();
        assert_eq!(after, before - 1, "the offending source row is gone");
        // The workspace row is gone too.
        assert_eq!(cc.workspace().active().rows.len(), before - 1);
    }

    #[test]
    fn equivalent_services_identified_from_io_examples() {
        use copycat_semantic::IoExample;
        use copycat_services::AddressResolver;
        let (w, mut cc) = imported_engine();
        cc.register_service(Arc::new(ZipResolver::new(Arc::clone(&w))));
        cc.register_service(Arc::new(AddressResolver::new(Arc::clone(&w))));
        // I/O observed in the workspace: (street, city) -> zip.
        let examples: Vec<IoExample> = w
            .venues
            .iter()
            .take(4)
            .map(|v| {
                let st = w.venue_street(v);
                IoExample {
                    inputs: vec![st.address.clone(), w.street_city(st).name.clone()],
                    outputs: vec![st.zip.clone()],
                }
            })
            .collect();
        let descs = cc.find_equivalent_services(&examples);
        assert!(!descs.is_empty());
        assert_eq!(descs[0].expression, "zip_resolver");
        assert!((descs[0].similarity - 1.0).abs() < 1e-9);
        // And a (venue name) -> zip source is explained by composition.
        let name_examples: Vec<IoExample> = w
            .venues
            .iter()
            .take(3)
            .map(|v| IoExample {
                inputs: vec![v.name.clone()],
                outputs: vec![w.venue_zip(v).to_string()],
            })
            .collect();
        let descs = cc.find_equivalent_services(&name_examples);
        assert!(
            descs
                .iter()
                .any(|d| d.expression.contains("zip_resolver") && d.components.len() == 2),
            "composition expected: {descs:?}"
        );
    }

    #[test]
    fn flaky_service_degrades_gracefully() {
        use copycat_services::Flaky;
        let (w, mut cc) = imported_engine();
        // A zip resolver that drops roughly half its calls.
        let flaky = Flaky::new(
            Arc::new(ZipResolver::new(Arc::clone(&w))),
            0.5,
            50,
            42,
        );
        cc.register_service(Arc::new(flaky));
        let suggs = cc.column_suggestions();
        let zip = suggs
            .iter()
            .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"))
            .expect("still suggested (partial answers)");
        let answered = zip
            .values
            .iter()
            .filter(|v| v.iter().any(|x| !x.is_empty()))
            .count();
        assert!(answered > 0 && answered < 10, "partial coverage: {answered}/10");
        // The flaky service's cost hint demotes its edge vs a nominal one.
        let edge_cost = cc.graph().cost(zip.edge);
        assert!(edge_cost > 0.9, "flaky bind edge costs {edge_cost}");
    }
}
