//! The auto-complete generator (§2.2, §4.2).
//!
//! Two generation modes, as in the paper:
//!
//! 1. **Column completions** — "it discovers promising associations
//!    (edges in the source graph scoring above a relevance threshold)
//!    from the current query's nodes to other sources … For each such
//!    association, CopyCat defines a query." See [`column_suggestions`].
//! 2. **Query discovery from pasted tuples** — "the learner finds the
//!    most likely explanations for the tuples (queries) by discovering
//!    Steiner trees connecting the data sources in the source graph."
//!    See [`discover_queries`].

use copycat_graph::{EdgeId, EdgeKind, NodeId, NodeKind, SourceGraph, SteinerTree};
use copycat_linkage::{approximate_join, MatchLearner, Matcher, TfIdfIndex};
use copycat_provenance::Provenance;
use copycat_query::{
    execute_reported, Catalog, Field, Plan, Relation, Schema, Value,
};

/// A proposed column auto-completion (Figure 2's highlighted Zip column).
#[derive(Debug, Clone)]
pub struct ColumnSuggestion {
    /// The columns this completion would add.
    pub new_fields: Vec<Field>,
    /// Per current-tab row, the new columns' values (empty strings when
    /// the source had no answer for that row).
    pub values: Vec<Vec<String>>,
    /// Per current-tab row, the provenance of the completed tuple.
    pub provenance: Vec<Option<Provenance>>,
    /// The source-graph edge this completion uses.
    pub edge: EdgeId,
    /// The extended query.
    pub plan: Plan,
    /// Query label (for provenance and feedback).
    pub label: String,
    /// Edge cost (lower ranks first).
    pub cost: f64,
    /// Why this completion is degraded (`"service:kind"` of the first
    /// failure, or a failover note), `None` when the answer is
    /// complete. Degraded completions rank below healthy ones.
    pub degraded: Option<String>,
}

/// A query discovered from a pasted tuple, with its executed answers.
#[derive(Debug, Clone)]
pub struct ScoredQuery {
    /// The query plan.
    pub plan: Plan,
    /// The Steiner tree it came from.
    pub tree: SteinerTree,
    /// Tree cost (the ranking score; lower is better).
    pub cost: f64,
    /// Executed results.
    pub result: Relation,
    /// Why this query's answer is degraded (service failures during
    /// execution), `None` when complete.
    pub degraded: Option<String>,
}

/// Generate ranked column completions for the current query.
///
/// `current_plan` is the active tab's query; `current_nodes` the graph
/// nodes it spans; `current_rows` the tab's committed rows (for value
/// alignment). `max_cost` is the §4.1 relevance threshold.
pub fn column_suggestions(
    graph: &SourceGraph,
    catalog: &Catalog,
    current_plan: &Plan,
    current_nodes: &[NodeId],
    current_rows: &[Vec<String>],
    max_cost: f64,
    matcher: Option<&Matcher>,
) -> Vec<ColumnSuggestion> {
    let Ok(current) = copycat_query::execute(current_plan, catalog) else {
        return Vec::new();
    };
    let current_schema = current.schema().clone();
    let mut out = Vec::new();
    for edge_id in graph.associations_from(current_nodes, max_cost) {
        let edge = graph.edge(edge_id);
        let inside_is_a = current_nodes.contains(&edge.a);
        let (inside, outside) = if inside_is_a {
            (edge.a, edge.b)
        } else {
            (edge.b, edge.a)
        };
        let outside_node = graph.node(outside);
        let mut label = format!("Q:{}+{}", graph.node(inside).name, outside_node.name);
        let plan = match &edge.kind {
            EdgeKind::Transform { from, to, program } => {
                // Directional: the program maps a's `from` into b's
                // `to`, so only expand away from the source side.
                if !inside_is_a {
                    continue;
                }
                if current_schema.index_of(from).is_none() {
                    continue;
                }
                label = format!(
                    "T:{}+{} via {program}",
                    graph.node(inside).name,
                    outside_node.name
                );
                let derived = format!("{from}→{to}");
                current_plan
                    .clone()
                    .derive(from.clone(), derived.clone(), program.clone())
                    .join(
                        Plan::scan(outside_node.name.clone()),
                        &[(derived.as_str(), to.as_str())],
                    )
            }
            EdgeKind::Bind { bindings } => {
                if outside_node.kind != NodeKind::Service {
                    continue; // binds expand toward the service only
                }
                if bindings
                    .iter()
                    .any(|b| current_schema.index_of(b).is_none())
                {
                    continue; // the bound columns were projected away
                }
                let bindings: Vec<&str> = bindings.iter().map(String::as_str).collect();
                current_plan
                    .clone()
                    .dependent_join(outside_node.name.clone(), &bindings)
            }
            EdgeKind::Join { pairs } => {
                let oriented: Vec<(&str, &str)> = pairs
                    .iter()
                    .map(|(a, b)| {
                        if inside_is_a {
                            (a.as_str(), b.as_str())
                        } else {
                            (b.as_str(), a.as_str())
                        }
                    })
                    .collect();
                if oriented
                    .iter()
                    .any(|(l, _)| current_schema.index_of(l).is_none())
                {
                    continue;
                }
                current_plan
                    .clone()
                    .join(Plan::scan(outside_node.name.clone()), &oriented)
            }
            EdgeKind::Link { pairs } => {
                let Some((left_key, right_key)) = pairs.first().map(|(a, b)| {
                    if inside_is_a {
                        (a.clone(), b.clone())
                    } else {
                        (b.clone(), a.clone())
                    }
                }) else {
                    continue;
                };
                if current_schema.index_of(&left_key).is_none() {
                    continue;
                }
                let Some(aux) = materialize_link(
                    catalog,
                    &current,
                    &left_key,
                    &outside_node.name,
                    &right_key,
                    matcher,
                ) else {
                    continue;
                };
                let aux_name = aux.name().to_string();
                catalog.add_relation(aux);
                current_plan.clone().join(
                    Plan::scan(aux_name),
                    &[(left_key.as_str(), left_key.as_str())],
                )
            }
        };
        let Ok((result, report)) = execute_reported(&plan, catalog, &label) else {
            continue;
        };
        let degraded = degraded_note(&report);
        let new_fields: Vec<Field> = result.schema().fields()[current_schema.arity()..].to_vec();
        if new_fields.is_empty() {
            continue;
        }
        // Align the new columns' values with the current rows by matching
        // the shared prefix (the left side of joins/dependent joins keeps
        // its column order).
        let mut values = Vec::with_capacity(current_rows.len());
        let mut provenance = Vec::with_capacity(current_rows.len());
        let mut any = false;
        for row in current_rows {
            let hit = result.tuples().iter().find(|t| {
                row.iter()
                    .take(current_schema.arity())
                    .enumerate()
                    .all(|(i, v)| t.values.get(i).map(Value::as_text).as_deref() == Some(v))
            });
            match hit {
                Some(t) => {
                    any = true;
                    values.push(
                        t.values[current_schema.arity()..]
                            .iter()
                            .map(Value::as_text)
                            .collect(),
                    );
                    provenance.push(Some(annotate_degraded(t.provenance.clone(), &degraded)));
                }
                None => {
                    values.push(vec![String::new(); new_fields.len()]);
                    provenance.push(None);
                }
            }
        }
        if !any {
            continue; // a completion with no values is not worth showing
        }
        out.push(ColumnSuggestion {
            new_fields,
            values,
            provenance,
            edge: edge_id,
            plan,
            label,
            cost: edge.weight,
            degraded,
        });
    }
    sort_suggestions(&mut out);
    out
}

/// Ranking for column completions: healthy before degraded, then by
/// cost, then label for determinism. A healthy equivalent replacement
/// therefore outranks a degraded primary — §3.2's failover, expressed
/// as ranking.
pub fn sort_suggestions(out: &mut [ColumnSuggestion]) {
    out.sort_by(|a, b| {
        a.degraded
            .is_some()
            .cmp(&b.degraded.is_some())
            .then_with(|| a.cost.partial_cmp(&b.cost).expect("finite costs"))
            .then_with(|| a.label.cmp(&b.label))
    });
}

/// Compress an [`copycat_query::ExecReport`] into a one-line degraded
/// note (`None` when the execution was complete).
fn degraded_note(report: &copycat_query::ExecReport) -> Option<String> {
    if report.is_complete() {
        return None;
    }
    let f = &report.failures[0];
    Some(format!("{}:{}", f.service, f.kind))
}

/// Wrap a tuple's provenance in a `degraded:` label so `explain` can
/// say the answer may be incomplete and why.
fn annotate_degraded(p: Provenance, degraded: &Option<String>) -> Provenance {
    match degraded {
        Some(d) => Provenance::labeled(format!("degraded:{d}"), p),
        None => p,
    }
}

/// Materialize a record-link edge as an auxiliary relation
/// `{other}≈{left_key}` with schema `[left_key] ++ other's columns`, one
/// row per linked pair. The default matcher is the untrained uniform
/// combination; a trained one can be supplied (Example 1's learned
/// linkage).
fn materialize_link(
    catalog: &Catalog,
    current: &Relation,
    left_key: &str,
    other_name: &str,
    right_key: &str,
    matcher: Option<&Matcher>,
) -> Option<Relation> {
    let other = catalog.relation(other_name)?;
    let left_idx = current.schema().index_of(left_key)?;
    let right_idx = other.schema().index_of(right_key)?;
    let left_rows: Vec<Vec<String>> = current
        .tuples()
        .iter()
        .map(|t| t.as_texts())
        .collect();
    let right_rows: Vec<Vec<String>> = other.tuples().iter().map(|t| t.as_texts()).collect();
    let default_matcher;
    let m = match matcher {
        Some(m) => m,
        None => {
            let corpus: Vec<String> = left_rows
                .iter()
                .filter_map(|r| r.get(left_idx).cloned())
                .chain(right_rows.iter().filter_map(|r| r.get(right_idx).cloned()))
                .collect();
            default_matcher = MatchLearner::new(1).train(&[], TfIdfIndex::build(&corpus));
            &default_matcher
        }
    };
    let links = approximate_join(&left_rows, &right_rows, &[left_idx], &[right_idx], m);
    if links.is_empty() {
        return None;
    }
    // Schema: [left_key] ++ other's fields (renaming a clash with left_key).
    let mut fields = vec![Field::new(left_key)];
    for f in other.schema().fields() {
        let name = if f.name == left_key {
            format!("{}_linked", f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field { name, sem_type: f.sem_type.clone() });
    }
    let mut rows: Vec<Vec<String>> = links
        .iter()
        .map(|l| {
            let mut row = vec![left_rows[l.left][left_idx].clone()];
            row.extend(right_rows[l.right].iter().cloned());
            row
        })
        .collect();
    // Left-outer semantics: unlinked left keys keep a padding row so the
    // completion never drops existing workspace rows.
    let linked_left: std::collections::HashSet<usize> =
        links.iter().map(|l| l.left).collect();
    for (i, lr) in left_rows.iter().enumerate() {
        if !linked_left.contains(&i) {
            let mut row = vec![lr[left_idx].clone()];
            row.resize(fields.len(), String::new());
            rows.push(row);
        }
    }
    Some(Relation::from_strings(
        format!("{other_name}≈{left_key}"),
        Schema::new(fields),
        &rows,
    ))
}

/// Convert a Steiner tree into an executable plan. Returns `None` when
/// the tree cannot be rooted at a relation or a service's inputs cannot
/// be satisfied in any expansion order.
pub fn tree_to_plan(graph: &SourceGraph, tree: &SteinerTree) -> Option<Plan> {
    // Root: the first relation node of the tree.
    let root = *tree
        .nodes
        .iter()
        .find(|&&n| graph.node(n).kind == NodeKind::Relation)?;
    let plan = Plan::scan(graph.node(root).name.clone());
    expand_plan(graph, plan, vec![root], tree.edges.clone())
}

/// Extend an existing plan along a tree's edges, starting from the
/// nodes the plan already spans. Edges internal to the base node set
/// are dropped (already answered by the base plan); the rest are
/// expanded outward exactly as [`tree_to_plan`] would. This is the
/// failover path: the base plan is the user's current tab and the tree
/// is a banned-edge re-plan that reaches a replacement source.
pub fn extend_plan_along(
    graph: &SourceGraph,
    base_plan: &Plan,
    base_nodes: &[NodeId],
    tree: &SteinerTree,
) -> Option<Plan> {
    let remaining: Vec<EdgeId> = tree
        .edges
        .iter()
        .copied()
        .filter(|&e| {
            let edge = graph.edge(e);
            !(base_nodes.contains(&edge.a) && base_nodes.contains(&edge.b))
        })
        .collect();
    expand_plan(graph, base_plan.clone(), base_nodes.to_vec(), remaining)
}

/// The shared expansion loop: grow `plan` outward edge by edge until
/// every edge is consumed, deferring bind edges whose feeding relation
/// has not joined yet. `None` when no expansion order works.
fn expand_plan(
    graph: &SourceGraph,
    mut plan: Plan,
    mut in_plan: Vec<NodeId>,
    mut remaining: Vec<EdgeId>,
) -> Option<Plan> {
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut i = 0;
        while i < remaining.len() {
            let e = remaining[i];
            let edge = graph.edge(e);
            let a_in = in_plan.contains(&edge.a);
            let b_in = in_plan.contains(&edge.b);
            if a_in && b_in {
                remaining.swap_remove(i);
                progressed = true;
                continue;
            }
            if !a_in && !b_in {
                i += 1;
                continue;
            }
            let (inside, outside) = if a_in { (edge.a, edge.b) } else { (edge.b, edge.a) };
            let outside_node = graph.node(outside);
            let expanded = match &edge.kind {
                EdgeKind::Join { pairs } | EdgeKind::Link { pairs } => {
                    // Record links are approximated as equi-joins during
                    // discovery; the column-completion path performs true
                    // approximate linking.
                    let oriented: Vec<(&str, &str)> = pairs
                        .iter()
                        .map(|(pa, pb)| {
                            if inside == edge.a {
                                (pa.as_str(), pb.as_str())
                            } else {
                                (pb.as_str(), pa.as_str())
                            }
                        })
                        .collect();
                    plan = plan
                        .clone()
                        .join(Plan::scan(outside_node.name.clone()), &oriented);
                    true
                }
                EdgeKind::Bind { bindings } => {
                    if outside_node.kind == NodeKind::Service {
                        // Inside side provides the bindings.
                        let b: Vec<&str> = bindings.iter().map(String::as_str).collect();
                        plan = plan
                            .clone()
                            .dependent_join(outside_node.name.clone(), &b);
                        true
                    } else {
                        // The service is in the plan but its feeding
                        // relation is not: defer (another edge may bring
                        // the relation in); if nothing else progresses we
                        // give up below.
                        false
                    }
                }
                EdgeKind::Transform { from, to, program } => {
                    if inside == edge.a {
                        // Derive the transformed join key, then equi-join
                        // it against the target column.
                        let derived = format!("{from}→{to}");
                        plan = plan
                            .clone()
                            .derive(from.clone(), derived.clone(), program.clone())
                            .join(
                                Plan::scan(outside_node.name.clone()),
                                &[(derived.as_str(), to.as_str())],
                            );
                        true
                    } else {
                        // Programs are one-way: a tree reaching the
                        // source side through its target must wait for
                        // another edge to bring the source in.
                        false
                    }
                }
            };
            if expanded {
                in_plan.push(outside);
                remaining.swap_remove(i);
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            return None;
        }
    }
    Some(plan)
}

/// The Steiner search behind query discovery: exact top-k on small
/// graphs with few terminals, SPCSH on larger ones.
pub fn search_trees(graph: &SourceGraph, terminals: &[NodeId], k: usize) -> Vec<SteinerTree> {
    search_trees_banned(graph, terminals, k, &[])
}

/// [`search_trees`] with a set of banned edges no tree may use — the
/// failover search: a tripped service's edges are banned so the
/// explanations route through replacement sources instead.
pub fn search_trees_banned(
    graph: &SourceGraph,
    terminals: &[NodeId],
    k: usize,
    banned: &[EdgeId],
) -> Vec<SteinerTree> {
    const EXACT_NODE_LIMIT: usize = 64;
    if graph.node_count() <= EXACT_NODE_LIMIT
        && terminals.len() <= copycat_graph::MAX_EXACT_TERMINALS
    {
        copycat_graph::top_k_steiner_banned(graph, terminals, k, banned)
    } else {
        copycat_graph::spcsh(graph, terminals, 0.8)
            .into_iter()
            .filter(|t| !t.edges.iter().any(|e| banned.contains(e)))
            .collect()
    }
}

/// Plan and execute each tree, dropping unplannable or failing ones.
fn trees_to_queries(
    graph: &SourceGraph,
    catalog: &Catalog,
    trees: Vec<SteinerTree>,
) -> Vec<ScoredQuery> {
    let mut out = Vec::new();
    for tree in trees {
        let Some(plan) = tree_to_plan(graph, &tree) else {
            continue;
        };
        let label = format!("Q:{}", plan);
        let Ok((result, report)) = execute_reported(&plan, catalog, &label) else {
            continue;
        };
        let degraded = degraded_note(&report);
        let result = match &degraded {
            // Re-wrap every tuple so the degradation is provenance-visible.
            Some(_) => {
                let mut wrapped = Relation::empty(result.name(), result.schema().clone());
                for t in result.tuples() {
                    wrapped.push(copycat_query::Tuple::new(
                        t.values.clone(),
                        annotate_degraded(t.provenance.clone(), &degraded),
                    ));
                }
                wrapped
            }
            None => result,
        };
        out.push(ScoredQuery { plan, cost: tree.cost, tree, result, degraded });
    }
    out
}

/// Discover ranked queries whose sources cover `terminals` (§4.2 mode 2).
/// Uses the exact top-k search on small graphs, SPCSH on larger ones.
pub fn discover_queries(
    graph: &SourceGraph,
    catalog: &Catalog,
    terminals: &[NodeId],
    k: usize,
) -> Vec<ScoredQuery> {
    trees_to_queries(graph, catalog, search_trees(graph, terminals, k))
}

/// [`discover_queries`] with the Steiner search memoized in `cache`:
/// repeated pastes against an unchanged graph reuse the cached trees;
/// a graph change (feedback, new edges) invalidates via the version
/// stamp. Query execution always runs fresh — the catalog's contents
/// are not part of the cache key.
pub fn discover_queries_cached(
    graph: &SourceGraph,
    catalog: &Catalog,
    terminals: &[NodeId],
    k: usize,
    cache: &crate::cache::QueryCache,
) -> Vec<ScoredQuery> {
    discover_queries_cached_banned(graph, catalog, terminals, k, &[], cache)
}

/// [`discover_queries_cached`] with banned edges (tripped services'
/// edges during failover). The ban set is part of the cache key.
pub fn discover_queries_cached_banned(
    graph: &SourceGraph,
    catalog: &Catalog,
    terminals: &[NodeId],
    k: usize,
    banned: &[EdgeId],
    cache: &crate::cache::QueryCache,
) -> Vec<ScoredQuery> {
    let trees = cache.trees_for_banned(graph, terminals, k, banned, || {
        search_trees_banned(graph, terminals, k, banned)
    });
    trees_to_queries(graph, catalog, trees)
}

/// Output semantic types of a service node (its schema is inputs then
/// outputs; `input_arity` splits them). `None` when any output column
/// is untyped — equivalence needs types on both sides.
fn service_output_types(graph: &SourceGraph, n: NodeId) -> Option<Vec<String>> {
    let node = graph.node(n);
    let outs = &node.schema.fields()[node.input_arity..];
    if outs.is_empty() {
        return None;
    }
    let mut types = Vec::with_capacity(outs.len());
    for f in outs {
        types.push(f.sem_type.clone()?);
    }
    types.sort();
    Some(types)
}

/// Propose replacement-source completions when services have tripped
/// their circuit breakers (§3.2: "propose replacement sources if a
/// source is down"). For each tripped service with an *equivalent*
/// replacement — a healthy service producing the same output semantic
/// types — the top-k Steiner search is re-run with every tripped
/// service's edges banned, and the resulting trees are grafted onto
/// the current plan. Each proposal is annotated (provenance-visible)
/// with why the replacement was used.
pub fn failover_suggestions(
    graph: &SourceGraph,
    catalog: &Catalog,
    current_plan: &Plan,
    current_nodes: &[NodeId],
    current_rows: &[Vec<String>],
    tripped: &[String],
) -> Vec<ColumnSuggestion> {
    let mut out = Vec::new();
    if tripped.is_empty() || current_nodes.is_empty() {
        return out;
    }
    let Ok(current) = copycat_query::execute(current_plan, catalog) else {
        return out;
    };
    let current_schema = current.schema().clone();
    let tripped_nodes: Vec<NodeId> = tripped
        .iter()
        .filter_map(|name| graph.node_by_name(name))
        .filter(|&n| graph.node(n).kind == NodeKind::Service)
        .collect();
    if tripped_nodes.is_empty() {
        return out;
    }
    let mut banned: Vec<EdgeId> = tripped_nodes
        .iter()
        .flat_map(|&n| graph.incident(n).iter().copied())
        .collect();
    banned.sort_unstable();
    banned.dedup();
    for &t in &tripped_nodes {
        let Some(want) = service_output_types(graph, t) else {
            continue;
        };
        for r in graph.node_ids() {
            if r == t
                || graph.node(r).kind != NodeKind::Service
                || tripped_nodes.contains(&r)
                || current_nodes.contains(&r)
            {
                continue;
            }
            if service_output_types(graph, r).as_ref() != Some(&want) {
                continue; // not an equivalent source
            }
            let mut terminals: Vec<NodeId> = current_nodes.to_vec();
            terminals.push(r);
            for tree in search_trees_banned(graph, &terminals, 2, &banned) {
                let Some(plan) = extend_plan_along(graph, current_plan, current_nodes, &tree)
                else {
                    continue;
                };
                let t_name = &graph.node(t).name;
                let r_name = &graph.node(r).name;
                let note = format!("failover:{t_name}->{r_name}");
                let label = format!("Q:{}+{} ({note})", graph.node(current_nodes[0]).name, r_name);
                let Ok((result, _report)) = execute_reported(&plan, catalog, &label) else {
                    continue;
                };
                let new_fields: Vec<Field> =
                    result.schema().fields()[current_schema.arity()..].to_vec();
                if new_fields.is_empty() {
                    continue;
                }
                let degraded = Some(note);
                let mut values = Vec::with_capacity(current_rows.len());
                let mut provenance = Vec::with_capacity(current_rows.len());
                let mut any = false;
                for row in current_rows {
                    let hit = result.tuples().iter().find(|tu| {
                        row.iter()
                            .take(current_schema.arity())
                            .enumerate()
                            .all(|(i, v)| tu.values.get(i).map(Value::as_text).as_deref() == Some(v))
                    });
                    match hit {
                        Some(tu) => {
                            any = true;
                            values.push(
                                tu.values[current_schema.arity()..]
                                    .iter()
                                    .map(Value::as_text)
                                    .collect(),
                            );
                            provenance
                                .push(Some(annotate_degraded(tu.provenance.clone(), &degraded)));
                        }
                        None => {
                            values.push(vec![String::new(); new_fields.len()]);
                            provenance.push(None);
                        }
                    }
                }
                if !any {
                    continue;
                }
                // The suggestion's graph edge: the tree edge touching the
                // replacement service.
                let Some(edge) = tree.edges.iter().copied().find(|&e| {
                    let edge = graph.edge(e);
                    edge.a == r || edge.b == r
                }) else {
                    continue;
                };
                out.push(ColumnSuggestion {
                    new_fields,
                    values,
                    provenance,
                    edge,
                    plan,
                    label,
                    cost: tree.cost,
                    degraded,
                });
            }
        }
    }
    sort_suggestions(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_graph::{discover_associations, AssocOptions};
    use copycat_query::{FnService, Signature};
    use std::sync::Arc;

    /// Shelters relation + zip service + contacts relation, wired into a
    /// catalog and graph.
    fn setup() -> (SourceGraph, Catalog) {
        let catalog = Catalog::new();
        let shelters_schema = Schema::new(vec![
            Field::new("Name"),
            Field::typed("Street", "PR-Street"),
            Field::typed("City", "PR-City"),
        ]);
        catalog.add_relation(Relation::from_strings(
            "Shelters",
            shelters_schema.clone(),
            &[
                vec!["Creek HS".into(), "100 Oak St".into(), "Margate".into()],
                vec!["Rec Ctr".into(), "200 Elm Ave".into(), "Tamarac".into()],
            ],
        ));
        let contacts_schema = Schema::new(vec![
            Field::new("Venue"),
            Field::typed("Phone", "PR-Phone"),
        ]);
        catalog.add_relation(Relation::from_strings(
            "Contacts",
            contacts_schema.clone(),
            &[
                vec!["Creek High School".into(), "555-0101".into()],
                vec!["Rec Center".into(), "555-0102".into()],
            ],
        ));
        let zip_sig = Signature {
            inputs: Schema::new(vec![
                Field::typed("street", "PR-Street"),
                Field::typed("city", "PR-City"),
            ]),
            outputs: Schema::new(vec![Field::typed("Zip", "PR-Zip")]),
        };
        catalog.add_service(Arc::new(FnService::new(
            "ZipCodes",
            zip_sig.clone(),
            |inp: &[Value]| match inp[1].as_text().as_str() {
                "Margate" => vec![vec![Value::str("33063")]],
                "Tamarac" => vec![vec![Value::str("33321")]],
                _ => vec![],
            },
        )));
        let mut graph = SourceGraph::new();
        graph.add_relation("Shelters", shelters_schema);
        graph.add_relation("Contacts", contacts_schema);
        let mut svc_schema_fields = zip_sig.inputs.fields().to_vec();
        svc_schema_fields.extend(zip_sig.outputs.fields().iter().cloned());
        graph.add_service("ZipCodes", Schema::new(svc_schema_fields), 2);
        // Name–Venue record link (untyped columns): declare explicitly,
        // as a "known link" (§4.1 item 2).
        let s = graph.node_by_name("Shelters").unwrap();
        let c = graph.node_by_name("Contacts").unwrap();
        graph.add_edge_with_cost(
            s,
            c,
            EdgeKind::Link { pairs: vec![("Name".into(), "Venue".into())] },
            1.5,
        );
        discover_associations(&mut graph, &AssocOptions::default());
        (graph, catalog)
    }

    #[test]
    fn zip_column_is_suggested_first() {
        let (graph, catalog) = setup();
        let shelters = graph.node_by_name("Shelters").unwrap();
        let rows = catalog.relation("Shelters").unwrap().as_texts();
        let suggs = column_suggestions(
            &graph,
            &catalog,
            &Plan::scan("Shelters"),
            &[shelters],
            &rows,
            2.0,
            None,
        );
        assert!(!suggs.is_empty());
        let top = &suggs[0];
        assert_eq!(top.new_fields[0].name, "Zip");
        assert_eq!(top.values[0], vec!["33063"]);
        assert_eq!(top.values[1], vec!["33321"]);
        assert!(top.provenance[0].is_some());
    }

    #[test]
    fn link_suggestion_brings_contact_columns() {
        let (graph, catalog) = setup();
        let shelters = graph.node_by_name("Shelters").unwrap();
        let rows = catalog.relation("Shelters").unwrap().as_texts();
        let suggs = column_suggestions(
            &graph,
            &catalog,
            &Plan::scan("Shelters"),
            &[shelters],
            &rows,
            2.0,
            None,
        );
        let link = suggs
            .iter()
            .find(|s| s.new_fields.iter().any(|f| f.name == "Phone"))
            .expect("phone completion via record link");
        // Creek HS links to Creek High School.
        let creek_row = &link.values[0];
        assert!(creek_row.iter().any(|v| v == "555-0101"), "{creek_row:?}");
    }

    #[test]
    fn tree_to_plan_dependent_join() {
        let (graph, catalog) = setup();
        let shelters = graph.node_by_name("Shelters").unwrap();
        let zip = graph.node_by_name("ZipCodes").unwrap();
        let trees = copycat_graph::top_k_steiner(&graph, &[shelters, zip], 1);
        let plan = tree_to_plan(&graph, &trees[0]).expect("plannable");
        let r = copycat_query::execute(&plan, &catalog).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.schema().index_of("Zip").is_some());
    }

    #[test]
    fn discover_queries_ranks_by_cost() {
        let (graph, catalog) = setup();
        let shelters = graph.node_by_name("Shelters").unwrap();
        let contacts = graph.node_by_name("Contacts").unwrap();
        let queries = discover_queries(&graph, &catalog, &[shelters, contacts], 3);
        assert!(!queries.is_empty());
        for w in queries.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-9);
        }
    }

    #[test]
    fn cached_discovery_tracks_mira_feedback() {
        use crate::cache::QueryCache;
        let (mut graph, catalog) = setup();
        let shelters = graph.node_by_name("Shelters").unwrap();
        let contacts = graph.node_by_name("Contacts").unwrap();
        // The setup graph is a tree; add an alternative (costlier)
        // Shelters–Contacts join so the terminal pair has two distinct
        // explanations to rank.
        graph.add_edge_with_cost(
            shelters,
            contacts,
            EdgeKind::Join { pairs: vec![("Name".into(), "Venue".into())] },
            2.5,
        );
        let terminals = [shelters, contacts];
        let cache = QueryCache::default();
        let warm = discover_queries_cached(&graph, &catalog, &terminals, 3, &cache);
        assert!(warm.len() >= 2, "need alternatives to re-rank");
        // Second call: trees come from the cache and the answers match a
        // cold search exactly.
        let cached = discover_queries_cached(&graph, &catalog, &terminals, 3, &cache);
        let cold = discover_queries(&graph, &catalog, &terminals, 3);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cached.len(), cold.len());
        for (a, b) in cached.iter().zip(cold.iter()) {
            assert_eq!(a.tree, b.tree);
        }
        // MIRA feedback prefers the runner-up query; the version bump
        // must invalidate, and the cached path must agree with a cold
        // search on the new ranking.
        let tau = copycat_graph::Mira::default().apply(
            &mut graph,
            &warm[1].tree.edges,
            &warm[0].tree.edges,
        );
        assert!(tau > 0.0, "feedback must change the graph");
        let after = discover_queries_cached(&graph, &catalog, &terminals, 3, &cache);
        let after_cold = discover_queries(&graph, &catalog, &terminals, 3);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(after.len(), after_cold.len());
        for (a, b) in after.iter().zip(after_cold.iter()) {
            assert_eq!(a.tree, b.tree);
            assert!((a.cost - b.cost).abs() < 1e-12);
        }
        // MIRA guarantees preferred-now-cheaper-than-rejected; the
        // re-ranking must be visible through the cache.
        let pos = |qs: &[ScoredQuery], edges: &[copycat_graph::EdgeId]| {
            qs.iter().position(|q| q.tree.edges == edges)
        };
        let pref = pos(&after, &warm[1].tree.edges).expect("preferred query still discovered");
        if let Some(rej) = pos(&after, &warm[0].tree.edges) {
            assert!(pref < rej, "feedback must reorder through the cache");
        }
    }

    #[test]
    fn suggestions_skip_unanswerable_edges() {
        let (graph, catalog) = setup();
        let contacts = graph.node_by_name("Contacts").unwrap();
        let rows = catalog.relation("Contacts").unwrap().as_texts();
        // From Contacts, the zip service cannot bind (no street/city).
        let suggs = column_suggestions(
            &graph,
            &catalog,
            &Plan::scan("Contacts"),
            &[contacts],
            &rows,
            2.0,
            None,
        );
        assert!(suggs
            .iter()
            .all(|s| s.new_fields.iter().all(|f| f.name != "Zip")));
    }
}
