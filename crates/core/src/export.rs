//! Data export (§8: "Exporting data to common application formats,
//! including XML and, perhaps more interestingly, the Google Maps
//! interface. This capability makes it very easy to use CopyCat as a
//! mashup generator.")
//!
//! Formats: CSV, XML, JSON, and KML (the Google-Maps-compatible map
//! format; the simulated stand-in for the paper's live map view).

use crate::workspace::Tab;

/// Export the committed rows as CSV (header first, RFC-4180 quoting).
pub fn to_csv(tab: &Tab) -> String {
    let mut out = String::new();
    let quote = |cell: &str| -> String {
        if cell.contains([',', '"', '\n']) {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let header: Vec<String> = tab.columns.iter().map(|c| quote(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in tab.committed_rows() {
        let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn xml_tag(s: &str) -> String {
    let mut t: String = s
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if t.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        t.insert(0, '_');
    }
    t
}

/// Export as XML: one `<row>` per committed row, one element per column.
pub fn to_xml(tab: &Tab) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!("<table name=\"{}\">\n", xml_escape(&tab.title)));
    for row in tab.committed_rows() {
        out.push_str("  <row>\n");
        for (i, cell) in row.iter().enumerate() {
            let name = tab
                .columns
                .get(i)
                .map(|c| xml_tag(&c.name))
                .unwrap_or_else(|| format!("col{i}"));
            out.push_str(&format!("    <{name}>{}</{name}>\n", xml_escape(cell)));
        }
        out.push_str("  </row>\n");
    }
    out.push_str("</table>\n");
    out
}

/// Export as a JSON array of objects keyed by column name.
pub fn to_json(tab: &Tab) -> String {
    use copycat_util::Json;
    let rows: Vec<Json> = tab
        .committed_rows()
        .into_iter()
        .map(|row| {
            Json::obj(
                row.into_iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let key = tab
                            .columns
                            .get(i)
                            .map(|c| c.name.clone())
                            .unwrap_or_else(|| format!("col{i}"));
                        (key, Json::Str(cell))
                    })
                    .collect(),
            )
        })
        .collect();
    Json::Arr(rows).to_string_pretty()
}

/// Export as KML placemarks — the "plot the shelters on a map" output of
/// Example 1. `name_col` labels each placemark; `lat_col`/`lon_col` give
/// coordinates. Rows missing either coordinate are skipped; the number of
/// exported placemarks is returned alongside the document.
pub fn to_kml(tab: &Tab, name_col: usize, lat_col: usize, lon_col: usize) -> (String, usize) {
    let mut out = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <kml xmlns=\"http://www.opengis.net/kml/2.2\">\n<Document>\n",
    );
    out.push_str(&format!("  <name>{}</name>\n", xml_escape(&tab.title)));
    let mut count = 0;
    for row in tab.committed_rows() {
        let (Some(name), Some(lat), Some(lon)) =
            (row.get(name_col), row.get(lat_col), row.get(lon_col))
        else {
            continue;
        };
        if lat.parse::<f64>().is_err() || lon.parse::<f64>().is_err() {
            continue;
        }
        out.push_str("  <Placemark>\n");
        out.push_str(&format!("    <name>{}</name>\n", xml_escape(name)));
        out.push_str(&format!(
            "    <Point><coordinates>{lon},{lat},0</coordinates></Point>\n"
        ));
        out.push_str("  </Placemark>\n");
        count += 1;
    }
    out.push_str("</Document>\n</kml>\n");
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_query::Field;

    fn tab() -> Tab {
        let mut t = Tab::new("Shelters");
        t.paste_row(&["Creek, HS".to_string(), "26.25".to_string(), "-80.20".to_string()]);
        t.paste_row(&["Rec \"Ctr\"".to_string(), "26.21".to_string(), "-80.27".to_string()]);
        t.columns = vec![Field::new("Name"), Field::new("Lat"), Field::new("Lon")];
        t.user_named = vec![true, true, true];
        t
    }

    #[test]
    fn csv_quotes_properly() {
        let csv = to_csv(&tab());
        assert!(csv.starts_with("Name,Lat,Lon\n"));
        assert!(csv.contains("\"Creek, HS\""));
        assert!(csv.contains("\"Rec \"\"Ctr\"\"\""));
    }

    #[test]
    fn xml_escapes_and_tags() {
        let mut t = tab();
        t.columns[0].name = "Shelter Name".to_string();
        let xml = to_xml(&t);
        assert!(xml.contains("<Shelter_Name>Creek, HS</Shelter_Name>"));
        assert!(xml.contains("&quot;Ctr&quot;"));
    }

    #[test]
    fn json_roundtrips() {
        let json = to_json(&tab());
        let v = copycat_util::Json::parse(&json).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["Name"], "Creek, HS");
    }

    #[test]
    fn kml_plots_valid_coordinates_only() {
        let mut t = tab();
        t.paste_row(&["No Coords".to_string(), String::new(), String::new()]);
        let (kml, count) = to_kml(&t, 0, 1, 2);
        assert_eq!(count, 2);
        assert_eq!(kml.matches("<Placemark>").count(), 2);
        assert!(kml.contains("-80.20,26.25,0"));
    }

    #[test]
    fn suggested_rows_are_not_exported() {
        let mut t = tab();
        t.suggest_rows(vec![(vec!["Maybe".to_string()], None)]);
        assert_eq!(to_csv(&t).lines().count(), 3); // header + 2 rows
    }
}
