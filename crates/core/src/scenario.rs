//! The running hurricane-relief scenario (Example 1 / §8), packaged for
//! examples, integration tests and the experiment harness.
//!
//! One call builds a consistent bundle: the synthetic world, a shelter
//! Web site rendered from it (at a chosen complexity tier), a contacts
//! spreadsheet (optionally with perturbed venue names so record linking
//! is genuinely approximate), and an engine pre-wired with the simulated
//! services.

use crate::engine::CopyCat;
use copycat_document::corpus::{contact_sheet, perturb_string, render_list, ListSpec, Tier};
use copycat_document::{Document, DocumentId};
use copycat_services::{
    AddressResolver, Geocoder, ReversePhone, World, WorldConfig, ZipResolver,
};
use copycat_util::rng::{SeedableRng, StdRng};
use std::sync::Arc;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// World seed (drives everything downstream).
    pub seed: u64,
    /// Number of shelters.
    pub venues: usize,
    /// Shelter-page complexity tier.
    pub tier: Tier,
    /// Edits applied to each contact's venue name (0 = exact names; >0
    /// forces approximate record linking, as in Example 1).
    pub contact_name_edits: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self { seed: 2009, venues: 20, tier: Tier::Clean, contact_name_edits: 0 }
    }
}

/// The assembled scenario.
pub struct Scenario {
    /// The synthetic world (ground truth).
    pub world: Arc<World>,
    /// The engine, with services registered.
    pub engine: CopyCat,
    /// Handle to the shelter site opened in the engine.
    pub shelters_doc: DocumentId,
    /// Handle to the contacts spreadsheet opened in the engine.
    pub contacts_doc: DocumentId,
    /// Ground-truth shelter rows `[name, street, city]`.
    pub shelter_rows: Vec<Vec<String>>,
    /// Contact rows `[person, phone, venue-name]`, names possibly
    /// perturbed.
    pub contact_rows: Vec<Vec<String>>,
    /// For each contact row, the index of its true venue.
    pub contact_truth: Vec<usize>,
}

impl Scenario {
    /// Build a scenario.
    pub fn build(config: &ScenarioConfig) -> Scenario {
        let world = Arc::new(World::generate(&WorldConfig {
            seed: config.seed,
            venues: config.venues,
            ..WorldConfig::default()
        }));
        let shelter_rows = world.shelter_rows();
        let mut contact_rows = world.contact_rows();
        let contact_truth: Vec<usize> = (0..contact_rows.len()).collect();
        if config.contact_name_edits > 0 {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);
            for row in &mut contact_rows {
                row[2] = perturb_string(&mut rng, &row[2], config.contact_name_edits);
            }
        }

        let spec = ListSpec::new(
            "County Shelters",
            &["Name", "Street", "City"],
            config.tier,
            config.seed,
        );
        let site = render_list(&spec, &shelter_rows).site;
        let sheet = contact_sheet(
            "contacts.xls",
            &["Person", "Phone", "Venue"],
            contact_rows.clone(),
        );

        let mut engine = CopyCat::new();
        let shelters_doc = engine.open(Document::Site(site));
        let contacts_doc = engine.open(Document::Sheet(sheet));
        engine.register_service(Arc::new(ZipResolver::new(Arc::clone(&world))));
        engine.register_service(Arc::new(Geocoder::new(Arc::clone(&world))));
        engine.register_service(Arc::new(AddressResolver::new(Arc::clone(&world))));
        engine.register_service(Arc::new(ReversePhone::new(Arc::clone(&world))));

        Scenario {
            world,
            engine,
            shelters_doc,
            contacts_doc,
            shelter_rows,
            contact_rows,
            contact_truth,
        }
    }

    /// Drive the engine through the standard import of the shelter site:
    /// paste `examples` rows, accept the suggestions, commit as
    /// `Shelters`. Returns the imported row count.
    pub fn import_shelters(&mut self, examples: usize) -> usize {
        for row in self.shelter_rows.iter().take(examples.max(1)) {
            let vals: Vec<&str> = row.iter().map(String::as_str).collect();
            self.engine.paste_example(self.shelters_doc, &vals);
        }
        self.engine.accept_suggested_rows();
        self.engine.name_column(0, "Name");
        self.engine.commit_source("Shelters")
    }

    /// Import the county directory — the messy heterogeneous source
    /// (venue casing noise, dashed phones, mixed date styles) — in a new
    /// tab and commit it as `Directory`. Its phone format disagrees with
    /// the contacts sheet, so joining the two requires a learned
    /// transform.
    pub fn import_directory(&mut self) -> usize {
        let rows = self.world.directory_rows();
        let sheet = contact_sheet(
            "directory.xls",
            &["Venue", "Phone", "Registered"],
            rows.clone(),
        );
        let doc = self.engine.open(Document::Sheet(sheet));
        self.engine.start_import_tab("directory");
        let vals: Vec<&str> = rows[0].iter().map(String::as_str).collect();
        self.engine.paste_example(doc, &vals);
        self.engine.accept_suggested_rows();
        self.engine.name_column(0, "Venue");
        self.engine.name_column(1, "Phone");
        self.engine.name_column(2, "Registered");
        self.engine.commit_source("Directory")
    }

    /// Import the contacts spreadsheet in a new tab and commit it.
    pub fn import_contacts(&mut self) -> usize {
        self.engine.start_import_tab("contacts");
        let row = &self.contact_rows[0];
        let vals: Vec<&str> = row.iter().map(String::as_str).collect();
        self.engine.paste_example(self.contacts_doc, &vals);
        self.engine.accept_suggested_rows();
        self.engine.name_column(0, "Person");
        self.engine.name_column(2, "Venue");
        self.engine.commit_source("Contacts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_consistently() {
        let s = Scenario::build(&ScenarioConfig::default());
        assert_eq!(s.shelter_rows.len(), 20);
        assert_eq!(s.contact_rows.len(), 20);
        // Services are registered.
        assert!(s.engine.catalog().service("zip_resolver").is_some());
        assert!(s.engine.catalog().service("geocoder").is_some());
    }

    #[test]
    fn import_shelters_end_to_end() {
        let mut s = Scenario::build(&ScenarioConfig::default());
        let n = s.import_shelters(1);
        assert_eq!(n, s.shelter_rows.len());
        assert!(s.engine.catalog().relation("Shelters").is_some());
    }

    #[test]
    fn perturbed_contacts_differ_from_truth() {
        let s = Scenario::build(&ScenarioConfig {
            contact_name_edits: 2,
            ..ScenarioConfig::default()
        });
        let exact = s
            .contact_rows
            .iter()
            .enumerate()
            .filter(|(i, r)| r[2] == s.world.venues[s.contact_truth[*i]].name)
            .count();
        assert!(exact < s.contact_rows.len() / 2, "most names should be edited");
    }
}
