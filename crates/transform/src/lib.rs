//! Example-driven string-transform synthesis (the WebRelate-style
//! "join with transformation" step).
//!
//! A [`Program`] is a concatenation of [`Piece`]s — literal constants
//! and token extractions (split / substring selection with optional
//! case folding over the trimmed input) — that maps one input string
//! to one output string. The [`learn`] entry point induces the
//! lowest-cost program consistent with a set of `(input, output)`
//! example pairs by a version-space-style joint dynamic program: it
//! walks all examples' output positions in lockstep, so any piece it
//! admits reproduces its span in *every* example, and the returned
//! program reproduces 100% of the training pairs by construction.
//!
//! Enumeration is deterministic (fixed atom order, strict-improvement
//! tie-breaking) and bounded (memoized sub-programs over position
//! tuples with a hard state cap), so learning is replayable under the
//! serve journal: the same examples always yield byte-identical
//! programs, on any thread count.

use copycat_util::hash::FxHashMap;
use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// How an input string is tokenized before a piece selects one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tok {
    /// The whole trimmed input as a single token.
    Whole,
    /// Maximal runs of ASCII digits.
    Digits,
    /// Maximal runs of alphabetic characters.
    Alpha,
    /// Maximal runs of alphanumeric characters.
    Alnum,
    /// Split on whitespace (trimmed, empties dropped).
    Space,
    /// Split on `-`.
    Dash,
    /// Split on `.`.
    Dot,
    /// Split on `,`.
    Comma,
    /// Split on `/`.
    Slash,
}

/// Every tokenizer, in canonical enumeration order (learning order).
const ALL_TOKS: [Tok; 9] = [
    Tok::Whole,
    Tok::Digits,
    Tok::Alpha,
    Tok::Alnum,
    Tok::Space,
    Tok::Dash,
    Tok::Dot,
    Tok::Comma,
    Tok::Slash,
];

impl Tok {
    fn name(self) -> &'static str {
        match self {
            Tok::Whole => "input",
            Tok::Digits => "digits",
            Tok::Alpha => "alpha",
            Tok::Alnum => "alnum",
            Tok::Space => "word",
            Tok::Dash => "dash",
            Tok::Dot => "dot",
            Tok::Comma => "comma",
            Tok::Slash => "slash",
        }
    }

    fn parse(name: &str) -> Option<Tok> {
        ALL_TOKS.iter().copied().find(|t| t.name() == name)
    }

    /// Tokenize `input` (always over the trimmed string, so leading
    /// and trailing whitespace never leaks into any piece).
    fn tokenize(self, input: &str) -> Vec<String> {
        let input = input.trim();
        match self {
            Tok::Whole => {
                if input.is_empty() {
                    Vec::new()
                } else {
                    vec![input.to_string()]
                }
            }
            Tok::Digits => runs_of(input, |c| c.is_ascii_digit()),
            Tok::Alpha => runs_of(input, char::is_alphabetic),
            Tok::Alnum => runs_of(input, char::is_alphanumeric),
            Tok::Space => split_on(input, char::is_whitespace),
            Tok::Dash => split_on(input, |c| c == '-'),
            Tok::Dot => split_on(input, |c| c == '.'),
            Tok::Comma => split_on(input, |c| c == ','),
            Tok::Slash => split_on(input, |c| c == '/'),
        }
    }
}

/// Maximal runs of characters matching `pred`.
fn runs_of(input: &str, pred: impl Fn(char) -> bool) -> Vec<String> {
    let mut out = Vec::new();
    let mut run = String::new();
    for c in input.chars() {
        if pred(c) {
            run.push(c);
        } else if !run.is_empty() {
            out.push(std::mem::take(&mut run));
        }
    }
    if !run.is_empty() {
        out.push(run);
    }
    out
}

/// Split on separator characters, trimming pieces and dropping empties.
fn split_on(input: &str, sep: impl Fn(char) -> bool) -> Vec<String> {
    input
        .split(sep)
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

/// Optional case folding applied to an extracted token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// Leave the token as extracted.
    Keep,
    /// Uppercase.
    Upper,
    /// Lowercase.
    Lower,
    /// First letter of each word uppercased, the rest lowercased.
    Title,
}

const ALL_CASES: [Case; 4] = [Case::Keep, Case::Upper, Case::Lower, Case::Title];

impl Case {
    fn name(self) -> &'static str {
        match self {
            Case::Keep => "keep",
            Case::Upper => "upper",
            Case::Lower => "lower",
            Case::Title => "title",
        }
    }

    fn parse(name: &str) -> Option<Case> {
        ALL_CASES.iter().copied().find(|c| c.name() == name)
    }

    fn apply(self, s: &str) -> String {
        match self {
            Case::Keep => s.to_string(),
            Case::Upper => s.to_uppercase(),
            Case::Lower => s.to_lowercase(),
            Case::Title => s
                .split(' ')
                .map(|w| {
                    let mut cs = w.chars();
                    match cs.next() {
                        Some(f) => {
                            f.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase()
                        }
                        None => String::new(),
                    }
                })
                .collect::<Vec<_>>()
                .join(" "),
        }
    }
}

/// One concatenated piece of a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// A literal string.
    Const(String),
    /// The `index`-th token of the tokenized input (from the end when
    /// `rev`), with `case` folding applied.
    Extract { tok: Tok, index: usize, rev: bool, case: Case },
}

impl Piece {
    /// The piece's output on `input`, or `None` when the selected
    /// token does not exist.
    pub fn apply(&self, input: &str) -> Option<String> {
        match self {
            Piece::Const(s) => Some(s.clone()),
            Piece::Extract { tok, index, rev, case } => {
                let tokens = tok.tokenize(input);
                let i = if *rev {
                    tokens.len().checked_sub(index + 1)?
                } else {
                    *index
                };
                tokens.get(i).map(|t| case.apply(t))
            }
        }
    }

    /// Ranking cost: extractions are preferred over constants for long
    /// spans; deep token indices and case folds pay a small premium.
    pub fn cost(&self) -> f64 {
        match self {
            Piece::Const(s) => 0.5 + 0.1 * s.chars().count() as f64,
            Piece::Extract { index, case, .. } => {
                1.0 + 0.05 * *index as f64 + if *case == Case::Keep { 0.0 } else { 0.1 }
            }
        }
    }
}

impl fmt::Display for Piece {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Piece::Const(s) => write!(f, "{:?}", s),
            Piece::Extract { tok, index, rev, case } => {
                let idx = if *rev {
                    format!("-{}", index + 1)
                } else {
                    index.to_string()
                };
                let sel = if *tok == Tok::Whole {
                    tok.name().to_string()
                } else {
                    format!("{}[{idx}]", tok.name())
                };
                match case {
                    Case::Keep => write!(f, "{sel}"),
                    other => write!(f, "{}({sel})", other.name()),
                }
            }
        }
    }
}

/// A learned string transform: the concatenation of its pieces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Concatenated left to right.
    pub pieces: Vec<Piece>,
}

impl Program {
    /// Run the program, `None` when any extraction fails.
    pub fn apply(&self, input: &str) -> Option<String> {
        let mut out = String::new();
        for p in &self.pieces {
            out.push_str(&p.apply(input)?);
        }
        Some(out)
    }

    /// Piece count (the "size" term of edge costs).
    pub fn size(&self) -> usize {
        self.pieces.len()
    }

    /// Total ranking cost (lower learns first).
    pub fn cost(&self) -> f64 {
        self.pieces.iter().map(Piece::cost).sum()
    }

    /// Whether the program reproduces every `(input, output)` pair.
    pub fn consistent(&self, examples: &[(String, String)]) -> bool {
        examples
            .iter()
            .all(|(i, o)| self.apply(i).as_deref() == Some(o.as_str()))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pieces.len() == 1 {
            return write!(f, "{}", self.pieces[0]);
        }
        write!(f, "concat(")?;
        for (i, p) in self.pieces.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

impl ToJson for Piece {
    fn to_json(&self) -> Json {
        match self {
            Piece::Const(s) => Json::obj(vec![("const".to_string(), Json::str(s.clone()))]),
            Piece::Extract { tok, index, rev, case } => Json::obj(vec![
                ("tok".to_string(), Json::str(tok.name())),
                ("index".to_string(), Json::Num(*index as f64)),
                ("rev".to_string(), Json::Bool(*rev)),
                ("case".to_string(), Json::str(case.name())),
            ]),
        }
    }
}

impl FromJson for Piece {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        if let Some(s) = j.get("const").and_then(Json::as_str) {
            return Ok(Piece::Const(s.to_string()));
        }
        let tok = j
            .field("tok")?
            .as_str()
            .and_then(Tok::parse)
            .ok_or_else(|| JsonError::expected("tokenizer name", j))?;
        let index = j
            .field("index")?
            .as_f64()
            .ok_or_else(|| JsonError::expected("token index", j))? as usize;
        let rev = j.field("rev")?.as_bool().unwrap_or(false);
        let case = j
            .field("case")?
            .as_str()
            .and_then(Case::parse)
            .ok_or_else(|| JsonError::expected("case name", j))?;
        Ok(Piece::Extract { tok, index, rev, case })
    }
}

impl ToJson for Program {
    fn to_json(&self) -> Json {
        Json::obj(vec![(
            "pieces".to_string(),
            Json::Arr(self.pieces.iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for Program {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let pieces = j
            .field("pieces")?
            .as_array()
            .ok_or_else(|| JsonError::expected("pieces array", j))?
            .iter()
            .map(Piece::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program { pieces })
    }
}

/// The edge cost a learned transform contributes to the source graph:
/// small programs trained with high example coverage price well under
/// the suggestion threshold; low coverage pushes an edge toward it.
/// `coverage` is the fraction of source values the program maps into
/// the target column's value set, in `[0, 1]`.
pub fn edge_cost(program: &Program, coverage: f64) -> f64 {
    let coverage = coverage.clamp(0.0, 1.0);
    (0.3 + 0.08 * program.size() as f64 + 1.5 * (1.0 - coverage)).max(0.05)
}

/// Learner bounds. The defaults keep joint-DP state far below the cap
/// on realistic clipboard examples while guaranteeing termination on
/// adversarial ones.
#[derive(Debug, Clone, Copy)]
pub struct Learner {
    /// Highest token index enumerated (from either end).
    pub max_token_index: usize,
    /// Longest literal constant enumerated per step.
    pub max_const_len: usize,
    /// Hard cap on memoized joint states; exceeded → learning fails.
    pub max_states: usize,
}

impl Default for Learner {
    fn default() -> Self {
        Learner { max_token_index: 4, max_const_len: 16, max_states: 20_000 }
    }
}

/// One admissible atom at a joint state: the piece plus the per-example
/// span lengths it produces there.
struct Step {
    piece: Piece,
    advance: Vec<usize>,
}

impl Learner {
    /// Induce the lowest-cost program consistent with every example,
    /// or `None` when no bounded program exists. Duplicate pairs are
    /// tolerated; contradictory pairs (same input, different output)
    /// always fail.
    pub fn learn(&self, examples: &[(String, String)]) -> Option<Program> {
        if examples.is_empty() {
            return None;
        }
        // Dedup while preserving order: joint-DP cost is exponential in
        // the example count, not the pair multiset.
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for (i, o) in examples {
            if !pairs.contains(&(i.as_str(), o.as_str())) {
                pairs.push((i.as_str(), o.as_str()));
            }
        }
        // Pre-tokenize every input once per tokenizer.
        let tokens: Vec<FxHashMap<Tok, Vec<String>>> = pairs
            .iter()
            .map(|(i, _)| ALL_TOKS.iter().map(|&t| (t, t.tokenize(i))).collect())
            .collect();
        let outputs: Vec<&str> = pairs.iter().map(|(_, o)| *o).collect();
        let mut memo: FxHashMap<Vec<usize>, Option<(f64, Vec<Piece>)>> = FxHashMap::default();
        let start = vec![0usize; outputs.len()];
        let best = self.solve(&start, &outputs, &tokens, &mut memo)?;
        Some(Program { pieces: best.1 })
    }

    /// Memoized min-cost completion from a joint output-position state.
    fn solve(
        &self,
        state: &[usize],
        outputs: &[&str],
        tokens: &[FxHashMap<Tok, Vec<String>>],
        memo: &mut FxHashMap<Vec<usize>, Option<(f64, Vec<Piece>)>>,
    ) -> Option<(f64, Vec<Piece>)> {
        if state.iter().zip(outputs).all(|(&p, o)| p == o.len()) {
            return Some((0.0, Vec::new()));
        }
        if let Some(hit) = memo.get(state) {
            return hit.clone();
        }
        if memo.len() >= self.max_states {
            return None;
        }
        // Mark in-progress to cut (impossible) cycles and over-budget
        // recursion; overwritten with the real answer below.
        memo.insert(state.to_vec(), None);
        let mut best: Option<(f64, Vec<Piece>)> = None;
        for step in self.steps(state, outputs, tokens) {
            let next: Vec<usize> = state
                .iter()
                .zip(&step.advance)
                .map(|(&p, &a)| p + a)
                .collect();
            let Some((tail_cost, tail)) = self.solve(&next, outputs, tokens, memo) else {
                continue;
            };
            let cost = step.piece.cost() + tail_cost;
            // Strict improvement keeps the first atom in enumeration
            // order on ties — the determinism contract.
            if best.as_ref().is_none_or(|(c, _)| cost < *c - 1e-12) {
                let mut pieces = vec![step.piece];
                pieces.extend(tail);
                best = Some((cost, pieces));
            }
        }
        memo.insert(state.to_vec(), best.clone());
        best
    }

    /// Every atom admissible at `state`, canonical order: extractions
    /// by (tokenizer, direction, index, case), then literal constants
    /// by length.
    fn steps(
        &self,
        state: &[usize],
        outputs: &[&str],
        tokens: &[FxHashMap<Tok, Vec<String>>],
    ) -> Vec<Step> {
        let remaining: Vec<&str> = state
            .iter()
            .zip(outputs)
            .map(|(&p, o)| &o[p..])
            .collect();
        let mut steps = Vec::new();
        for &tok in &ALL_TOKS {
            for rev in [false, true] {
                if tok == Tok::Whole && rev {
                    continue;
                }
                for index in 0..=self.max_token_index {
                    for &case in &ALL_CASES {
                        let piece = Piece::Extract { tok, index, rev, case };
                        let mut advance = Vec::with_capacity(remaining.len());
                        let mut ok = true;
                        for (ex, rem) in remaining.iter().enumerate() {
                            let toks = &tokens[ex][&tok];
                            let i = if rev {
                                match toks.len().checked_sub(index + 1) {
                                    Some(i) => i,
                                    None => {
                                        ok = false;
                                        break;
                                    }
                                }
                            } else {
                                index
                            };
                            let Some(t) = toks.get(i) else {
                                ok = false;
                                break;
                            };
                            let v = case.apply(t);
                            if v.is_empty() || !rem.starts_with(&v) {
                                ok = false;
                                break;
                            }
                            advance.push(v.len());
                        }
                        if ok {
                            steps.push(Step { piece, advance });
                        }
                    }
                }
            }
        }
        // Literal constants: prefixes of the longest common prefix of
        // all remaining outputs, taken at char boundaries.
        let mut common = remaining.first().copied().unwrap_or("");
        for rem in &remaining[1..] {
            let shared = common
                .char_indices()
                .zip(rem.chars())
                .take_while(|((_, a), b)| a == b)
                .last()
                .map(|((i, a), _)| i + a.len_utf8())
                .unwrap_or(0);
            common = &common[..shared];
        }
        for (n, (i, c)) in common.char_indices().enumerate() {
            if n >= self.max_const_len {
                break;
            }
            let len = i + c.len_utf8();
            steps.push(Step {
                piece: Piece::Const(common[..len].to_string()),
                advance: vec![len; remaining.len()],
            });
        }
        steps
    }
}

/// [`Learner::learn`] with default bounds.
pub fn learn(examples: &[(String, String)]) -> Option<Program> {
    Learner::default().learn(examples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(i, o)| (i.to_string(), o.to_string()))
            .collect()
    }

    #[test]
    fn learns_phone_reformat() {
        let examples = ex(&[
            ("(954) 555-1234", "954-555-1234"),
            ("(305) 555-9876", "305-555-9876"),
        ]);
        let p = learn(&examples).expect("learnable");
        assert!(p.consistent(&examples));
        assert_eq!(p.apply("(212) 555-0000").as_deref(), Some("212-555-0000"));
    }

    #[test]
    fn learns_dotted_phone() {
        let examples = ex(&[
            ("954.555.1234", "(954) 555-1234"),
            ("305.555.9876", "(305) 555-9876"),
        ]);
        let p = learn(&examples).expect("learnable");
        assert_eq!(p.apply("212.555.0000").as_deref(), Some("(212) 555-0000"));
    }

    #[test]
    fn learns_case_fold() {
        let examples = ex(&[("ACME SHELTER", "Acme Shelter"), ("OAK HOUSE", "Oak House")]);
        let p = learn(&examples).expect("learnable");
        assert_eq!(p.apply("RED BARN").as_deref(), Some("Red Barn"));
    }

    #[test]
    fn learns_date_reorder() {
        let examples = ex(&[("2009/01/05", "05-01-2009"), ("2010/11/30", "30-11-2010")]);
        let p = learn(&examples).expect("learnable");
        assert_eq!(p.apply("1999/12/31").as_deref(), Some("31-12-1999"));
    }

    #[test]
    fn lowest_cost_prefers_extraction_over_constants() {
        // A single shared token must learn as an extraction, not as a
        // memorized constant (constants cannot generalize).
        let examples = ex(&[("alpha", "alpha"), ("beta", "beta")]);
        let p = learn(&examples).expect("learnable");
        assert!(
            matches!(p.pieces.as_slice(), [Piece::Extract { .. }]),
            "expected one extraction, got {p}"
        );
        assert_eq!(p.apply("gamma").as_deref(), Some("gamma"));
    }

    #[test]
    fn contradictory_examples_fail() {
        let examples = ex(&[("same input", "out a"), ("same input", "out b")]);
        assert!(learn(&examples).is_none());
    }

    #[test]
    fn determinism_across_runs() {
        let examples = ex(&[
            ("(954) 555-1234", "954.555.1234"),
            ("(305) 555-9876", "305.555.9876"),
        ]);
        let first = learn(&examples).expect("learnable");
        for _ in 0..10 {
            assert_eq!(learn(&examples), Some(first.clone()));
        }
    }

    #[test]
    fn json_round_trip_and_display() {
        let examples = ex(&[
            ("(954) 555-1234", "954-555-1234"),
            ("(305) 555-9876", "305-555-9876"),
        ]);
        let p = learn(&examples).expect("learnable");
        let j = p.to_json();
        let back = Program::from_json(&j).expect("parses");
        assert_eq!(p, back);
        let rendered = p.to_string();
        assert!(rendered.contains("digits"), "human-readable: {rendered}");
    }

    #[test]
    fn edge_cost_orders_by_coverage_and_size() {
        let small = learn(&ex(&[("a-b", "a")])).expect("learnable");
        assert!(edge_cost(&small, 1.0) < edge_cost(&small, 0.5));
        let bigger = Program {
            pieces: vec![
                small.pieces[0].clone(),
                Piece::Const("-".into()),
                small.pieces[0].clone(),
            ],
        };
        assert!(edge_cost(&small, 1.0) < edge_cost(&bigger, 1.0));
    }

    #[test]
    fn unlearnable_pairs_fail_bounded() {
        // Output characters that appear nowhere in the input must be
        // memorized; differing consts across examples are inconsistent.
        let examples = ex(&[("aaa", "xyz"), ("bbb", "qrs")]);
        assert!(learn(&examples).is_none());
    }
}
