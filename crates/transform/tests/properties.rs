//! Property tests for the transform learner.
//!
//! Two guarantees the rest of the system leans on: any program the
//! learner returns reproduces *every* training example (consistency is
//! by construction, so this doubles as a harness check), and learning
//! is a pure function of the example set — the same pairs produce the
//! same program on every run and on every thread.

use copycat_transform::{learn, Case, Piece, Program, Tok};
use copycat_util::check::{check, Gen};
use copycat_util::{prop_ensure, prop_ensure_eq};

/// A random ground-truth program over digit groups and short literal
/// separators — always within the learner's enumeration bounds, so a
/// consistent program is guaranteed to exist for examples it labels.
fn ground_truth(g: &mut Gen) -> Program {
    let pieces = g.vec_of(1..4, |g| {
        if g.bool_p(0.35) {
            Piece::Const(g.string_of("-./ x", 1..3))
        } else {
            Piece::Extract {
                tok: Tok::Digits,
                index: g.usize_in(0..3),
                rev: g.bool_p(0.3),
                case: Case::Keep,
            }
        }
    });
    Program { pieces }
}

/// Phone-shaped inputs with exactly three digit groups, so every
/// `digits[0..3]` extraction (forward or reversed) resolves.
fn inputs(g: &mut Gen) -> Vec<String> {
    g.vec_of(2..6, |g| {
        format!(
            "({:03}) {:03}-{:04}",
            g.usize_in(0..1000),
            g.usize_in(0..1000),
            g.usize_in(0..10000)
        )
    })
}

fn labeled_pairs(g: &mut Gen) -> Option<Vec<(String, String)>> {
    let truth = ground_truth(g);
    let mut pairs = Vec::new();
    for input in inputs(g) {
        let output = truth.apply(&input)?;
        pairs.push((input, output));
    }
    Some(pairs)
}

#[test]
fn learned_programs_reproduce_all_training_examples() {
    check("transform-reproduces-training-examples", 64, &[], |g| {
        let Some(pairs) = labeled_pairs(g) else {
            return Ok(()); // ground truth unsatisfiable on these inputs
        };
        let program = learn(&pairs)
            .ok_or_else(|| format!("no program found though ground truth exists: {pairs:?}"))?;
        for (input, expected) in &pairs {
            let got = program.apply(input);
            prop_ensure_eq!(
                got.as_deref(),
                Some(expected.as_str()),
                "program {program} fails its own training example {input:?}"
            );
        }
        prop_ensure!(program.consistent(&pairs));
        Ok(())
    });
}

#[test]
fn learning_is_deterministic_across_runs_and_threads() {
    check("transform-learning-deterministic", 24, &[], |g| {
        let Some(pairs) = labeled_pairs(g) else {
            return Ok(());
        };
        let reference = learn(&pairs);
        // Same pairs, same thread: identical program (or identical None).
        prop_ensure_eq!(learn(&pairs), reference);
        // Same pairs from several concurrent threads: no shared state,
        // no iteration-order dependence, identical results everywhere.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pairs = pairs.clone();
                std::thread::spawn(move || learn(&pairs))
            })
            .collect();
        for handle in handles {
            let threaded = handle.join().expect("learner thread panicked");
            prop_ensure_eq!(threaded, reference);
        }
        Ok(())
    });
}
