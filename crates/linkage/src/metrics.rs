//! String-similarity heuristics. All return a similarity in `[0, 1]`
//! (1 = identical). Comparisons are case-insensitive.

use copycat_util::hash::FxHashMap;

/// The metric inventory (feature identifiers for the learner and the E7
/// experiment table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Normalized Levenshtein similarity.
    Levenshtein,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (prefix-boosted Jaro).
    JaroWinkler,
    /// Jaccard overlap of word tokens.
    TokenJaccard,
    /// TF-IDF-weighted cosine over word tokens (needs a corpus index).
    TfIdfCosine,
    /// Exact (normalized) equality: 1.0 or 0.0.
    Exact,
    /// Numeric closeness when both parse as numbers, else exact match.
    Numeric,
}

impl Metric {
    /// All metrics in a stable order.
    pub const ALL: [Metric; 7] = [
        Metric::Levenshtein,
        Metric::Jaro,
        Metric::JaroWinkler,
        Metric::TokenJaccard,
        Metric::TfIdfCosine,
        Metric::Exact,
        Metric::Numeric,
    ];

    /// Stable lower-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Levenshtein => "levenshtein",
            Metric::Jaro => "jaro",
            Metric::JaroWinkler => "jaro-winkler",
            Metric::TokenJaccard => "token-jaccard",
            Metric::TfIdfCosine => "tfidf-cosine",
            Metric::Exact => "exact",
            Metric::Numeric => "numeric",
        }
    }

    /// Evaluate this metric on a pair (the TF-IDF metric consults `idx`).
    pub fn eval(&self, a: &str, b: &str, idx: &TfIdfIndex) -> f64 {
        match self {
            Metric::Levenshtein => levenshtein_sim(a, b),
            Metric::Jaro => jaro(a, b),
            Metric::JaroWinkler => jaro_winkler(a, b),
            Metric::TokenJaccard => token_jaccard(a, b),
            Metric::TfIdfCosine => idx.cosine(a, b),
            Metric::Exact => {
                if norm(a) == norm(b) {
                    1.0
                } else {
                    0.0
                }
            }
            Metric::Numeric => numeric_sim(a, b),
        }
    }
}

fn norm(s: &str) -> String {
    s.trim().to_lowercase()
}

fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Levenshtein distance normalized to a similarity:
/// `1 - dist / max(len)`. Two empty strings are identical (1.0).
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = norm(a).chars().collect();
    let b: Vec<char> = norm(b).chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    // Two-row dynamic program.
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let dist = prev[m];
    1.0 - dist as f64 / n.max(m) as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = norm(a).chars().collect();
    let b: Vec<char> = norm(b).chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_used = vec![false; m];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(n);
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push((i, j));
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched characters of `a` (in a-order)
    // against the matched characters of `b` (in b-order); half the number
    // of positional mismatches.
    let matched_b: Vec<char> = {
        let mut idx: Vec<usize> = a_matched.iter().map(|&(_, j)| j).collect();
        idx.sort_unstable();
        idx.into_iter().map(|j| b[j]).collect()
    };
    let matched_a: Vec<char> = a_matched.iter().map(|&(i, _)| a[i]).collect();
    let t = matched_a
        .iter()
        .zip(matched_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let mf = matches as f64;
    (mf / n as f64 + mf / m as f64 + (mf - t) / mf) / 3.0
}

/// Jaro-Winkler: Jaro boosted by shared prefix (up to 4 chars, p = 0.1).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let an = norm(a);
    let bn = norm(b);
    let prefix = an
        .chars()
        .zip(bn.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard overlap of word-token sets.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: std::collections::HashSet<String> = tokens(a).into_iter().collect();
    let tb: std::collections::HashSet<String> = tokens(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

fn numeric_sim(a: &str, b: &str) -> f64 {
    match (norm(a).parse::<f64>(), norm(b).parse::<f64>()) {
        (Ok(x), Ok(y)) => {
            let denom = x.abs().max(y.abs());
            if denom == 0.0 {
                1.0
            } else {
                (1.0 - (x - y).abs() / denom).max(0.0)
            }
        }
        _ => {
            if norm(a) == norm(b) {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Corpus-level token statistics for TF-IDF cosine similarity. Rare tokens
/// (street names) weigh more than ubiquitous ones (`St`, `Ave`).
#[derive(Debug, Clone, Default)]
pub struct TfIdfIndex {
    doc_freq: FxHashMap<String, usize>,
    docs: usize,
}

impl TfIdfIndex {
    /// An empty index: every token gets equal weight (cosine degrades to
    /// plain token cosine).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a corpus of strings (e.g. both join columns).
    pub fn build<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut idx = Self::new();
        for s in corpus {
            idx.add(s.as_ref());
        }
        idx
    }

    /// Add one document's tokens.
    pub fn add(&mut self, s: &str) {
        self.docs += 1;
        let mut seen = copycat_util::hash::FxHashSet::default();
        for t in tokens(s) {
            if seen.insert(t.clone()) {
                *self.doc_freq.entry(t).or_default() += 1;
            }
        }
    }

    fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        (((self.docs + 1) as f64) / ((df + 1) as f64)).ln() + 1.0
    }

    /// TF-IDF-weighted cosine similarity of two strings.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let weight = |s: &str| -> FxHashMap<String, f64> {
            let mut tf: FxHashMap<String, f64> = FxHashMap::default();
            for t in tokens(s) {
                *tf.entry(t).or_default() += 1.0;
            }
            for (t, w) in tf.iter_mut() {
                *w *= self.idf(t);
            }
            tf
        };
        let wa = weight(a);
        let wb = weight(b);
        if wa.is_empty() || wb.is_empty() {
            return f64::from(wa.is_empty() && wb.is_empty());
        }
        let dot: f64 = wa
            .iter()
            .filter_map(|(t, x)| wb.get(t).map(|y| x * y))
            .sum();
        let na: f64 = wa.values().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = wb.values().map(|x| x * x).sum::<f64>().sqrt();
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        let idx = TfIdfIndex::new();
        for m in Metric::ALL {
            assert!(
                (m.eval("Coconut Creek HS", "coconut creek hs", &idx) - 1.0).abs() < 1e-9,
                "{m:?}"
            );
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-9);
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_known_value() {
        // Classic example: MARTHA vs MARHTA = 0.961.
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.961).abs() < 0.005, "got {jw}");
        // DIXON vs DICKSONX ≈ 0.813.
        let jw2 = jaro_winkler("DIXON", "DICKSONX");
        assert!((jw2 - 0.813).abs() < 0.01, "got {jw2}");
    }

    #[test]
    fn jaro_disjoint_is_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn token_jaccard_word_overlap() {
        assert!((token_jaccard("Coconut Creek HS", "Coconut Creek High School") - 2.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn tfidf_downweights_common_suffixes() {
        // "St" appears everywhere; street names are rare.
        let corpus: Vec<String> = (0..50)
            .map(|i| format!("{} Name{} St", 100 + i % 5, i))
            .collect();
        let idx = TfIdfIndex::build(&corpus);
        // Same rare name, different (common) number: high.
        let same_name = idx.cosine("100 Name1 St", "103 Name1 St");
        // Same common number and suffix only: low.
        let suffix_only = idx.cosine("100 Name1 St", "100 Name2 St");
        assert!(same_name > suffix_only, "{same_name} vs {suffix_only}");
    }

    #[test]
    fn numeric_similarity() {
        assert!((numeric_sim("100", "110") - 0.909).abs() < 0.01);
        assert_eq!(numeric_sim("100", "abc"), 0.0);
        assert_eq!(numeric_sim("0", "0"), 1.0);
    }

    #[test]
    fn all_metrics_bounded() {
        let idx = TfIdfIndex::build(&["a b c", "d e f"]);
        let pairs = [("", "x"), ("x", ""), ("a b", "b a"), ("123", "abc")];
        for m in Metric::ALL {
            for (a, b) in pairs {
                let v = m.eval(a, b, &idx);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "{m:?}({a:?},{b:?}) = {v}");
            }
        }
    }
}
