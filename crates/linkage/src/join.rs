//! The approximate-join operator.
//!
//! Example 1: "the contact that best matches each shelter" — for each left
//! record, find the best-scoring right record above the matcher's
//! threshold, with a greedy one-to-one assignment so two shelters don't
//! claim the same contact.

use crate::blocking::candidate_pairs;
use crate::learn::Matcher;

/// One linkage result.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinMatch {
    /// Index into the left records.
    pub left: usize,
    /// Index into the right records.
    pub right: usize,
    /// The matcher score.
    pub score: f64,
}

/// Link `left` to `right` on the given key fields. `left_keys`/`right_keys`
/// select which columns of each record form the aligned match key (same
/// arity, in the matcher's field order). Returns a one-to-one assignment:
/// candidate pairs from blocking, scored by the matcher, greedily assigned
/// best-score-first. Ties break on (left, right) index for determinism.
pub fn approximate_join(
    left: &[Vec<String>],
    right: &[Vec<String>],
    left_keys: &[usize],
    right_keys: &[usize],
    matcher: &Matcher,
) -> Vec<JoinMatch> {
    let key_of = |row: &Vec<String>, keys: &[usize]| -> Vec<String> {
        keys.iter()
            .map(|&k| row.get(k).cloned().unwrap_or_default())
            .collect()
    };
    let left_block: Vec<String> = left
        .iter()
        .map(|r| key_of(r, left_keys).join(" "))
        .collect();
    let right_block: Vec<String> = right
        .iter()
        .map(|r| key_of(r, right_keys).join(" "))
        .collect();

    let mut scored: Vec<JoinMatch> = candidate_pairs(&left_block, &right_block)
        .into_iter()
        .filter_map(|(i, j)| {
            let lk = key_of(&left[i], left_keys);
            let rk = key_of(&right[j], right_keys);
            let score = matcher.score(&lk, &rk);
            (score >= matcher.threshold()).then_some(JoinMatch { left: i, right: j, score })
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
    });

    let mut left_used = vec![false; left.len()];
    let mut right_used = vec![false; right.len()];
    let mut out = Vec::new();
    for m in scored {
        if !left_used[m.left] && !right_used[m.right] {
            left_used[m.left] = true;
            right_used[m.right] = true;
            out.push(m);
        }
    }
    out.sort_by_key(|m| m.left);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::{LabeledPair, MatchLearner};
    use crate::metrics::TfIdfIndex;

    fn shelters() -> Vec<Vec<String>> {
        vec![
            vec!["Coconut Creek High School".into(), "x".into()],
            vec!["Pompano Recreation Center".into(), "y".into()],
            vec!["Margate Civic Center".into(), "z".into()],
        ]
    }

    fn contacts() -> Vec<Vec<String>> {
        vec![
            vec!["Ann".into(), "Margate Civic Ctr".into()],
            vec!["Bob".into(), "Coconut Creek HS".into()],
            vec!["Cy".into(), "Pompano Rec Ctr".into()],
            vec!["Dee".into(), "Unrelated Venue".into()],
        ]
    }

    fn matcher() -> Matcher {
        let train = vec![
            LabeledPair {
                left: vec!["Tamarac Community Center".into()],
                right: vec!["Tamarac Comm Ctr".into()],
                matched: true,
            },
            LabeledPair {
                left: vec!["Tamarac Community Center".into()],
                right: vec!["Sunrise Civic".into()],
                matched: false,
            },
        ];
        MatchLearner::new(1).train(&train, TfIdfIndex::new())
    }

    #[test]
    fn links_each_shelter_to_best_contact() {
        let links = approximate_join(&shelters(), &contacts(), &[0], &[1], &matcher());
        assert_eq!(links.len(), 3);
        assert_eq!(links[0], JoinMatch { left: 0, right: 1, score: links[0].score });
        assert_eq!(links[1].right, 2);
        assert_eq!(links[2].right, 0);
    }

    #[test]
    fn one_to_one_assignment() {
        // Two identical lefts compete for one right; only one wins.
        let left = vec![
            vec!["Creek HS".to_string()],
            vec!["Creek HS".to_string()],
        ];
        let right = vec![vec!["Creek HS".to_string()]];
        let links = approximate_join(&left, &right, &[0], &[0], &matcher());
        assert_eq!(links.len(), 1);
    }

    #[test]
    fn no_links_below_threshold() {
        let left = vec![vec!["alpha beta".to_string()]];
        let right = vec![vec!["gamma delta".to_string()]];
        assert!(approximate_join(&left, &right, &[0], &[0], &matcher()).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<Vec<String>> = Vec::new();
        assert!(approximate_join(&empty, &contacts(), &[0], &[1], &matcher()).is_empty());
        assert!(approximate_join(&shelters(), &empty, &[0], &[1], &matcher()).is_empty());
    }
}
