//! Record linking for CopyCat (Example 1 and §2.2 of the CIDR 2009 paper).
//!
//! "Here the match might not be a direct lookup, but rather the result of
//! approximate record linking techniques … CopyCat learns the best
//! combination of heuristics for this case of record linking, via a
//! combination of generalizing examples … and accepting feedback."
//!
//! * [`metrics`] — the individual similarity heuristics (edit distance,
//!   Jaro/Jaro-Winkler, token overlap, TF-IDF cosine, numeric closeness);
//! * [`blocking`] — cheap candidate-pair generation so linkage does not
//!   compare all `n × m` pairs;
//! * [`learn`] — an online-learned weighted combination of the heuristics
//!   (the "best combination" the paper refers to), trained from example
//!   matches and feedback;
//! * [`join`] — the approximate-join operator the integration learner
//!   invokes.

pub mod blocking;
pub mod join;
pub mod learn;
pub mod metrics;

pub use join::{approximate_join, JoinMatch};
pub use learn::{LabeledPair, MatchLearner, Matcher};
pub use metrics::{jaro, jaro_winkler, levenshtein_sim, token_jaccard, Metric, TfIdfIndex};
