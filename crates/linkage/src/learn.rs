//! Learning the "best combination of heuristics" for a linkage task.
//!
//! A [`Matcher`] scores a candidate pair as a weighted sum of the metric
//! features over each aligned field pair. [`MatchLearner`] trains the
//! weights online with a passive-aggressive update (the same family as the
//! MIRA learner used by the integration learner, [Crammer et al. 2006]),
//! from labeled pairs that come from the user's pasted examples (positives)
//! and feedback rejections (negatives).

use crate::metrics::{Metric, TfIdfIndex};

/// A labeled training pair: the aligned key fields of a left and right
/// record plus whether they refer to the same entity.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// Key fields from the left record.
    pub left: Vec<String>,
    /// Key fields from the right record (same arity as `left`).
    pub right: Vec<String>,
    /// True when the records match.
    pub matched: bool,
}

/// A trained (or hand-weighted) linkage scorer.
#[derive(Debug, Clone)]
pub struct Matcher {
    /// Per-(field, metric) weights, row-major: `weights[f * M + m]`.
    weights: Vec<f64>,
    /// Decision threshold on the weighted score.
    threshold: f64,
    /// Number of aligned key fields.
    fields: usize,
    /// TF-IDF statistics shared by the cosine metric.
    index: TfIdfIndex,
}

impl Matcher {
    /// A matcher using a single metric with weight 1 on every field —
    /// the per-heuristic baselines of experiment E7.
    pub fn single_metric(metric: Metric, fields: usize, index: TfIdfIndex) -> Self {
        let m = Metric::ALL.len();
        let mut weights = vec![0.0; fields * m];
        let mi = Metric::ALL
            .iter()
            .position(|x| *x == metric)
            .expect("metric in inventory");
        for f in 0..fields {
            weights[f * m + mi] = 1.0;
        }
        Self { weights, threshold: 0.5 * fields as f64, fields, index }
    }

    /// Feature vector of a pair.
    fn features(&self, left: &[String], right: &[String]) -> Vec<f64> {
        let m = Metric::ALL.len();
        let mut out = vec![0.0; self.fields * m];
        for f in 0..self.fields {
            let (a, b) = (
                left.get(f).map(String::as_str).unwrap_or(""),
                right.get(f).map(String::as_str).unwrap_or(""),
            );
            for (mi, metric) in Metric::ALL.iter().enumerate() {
                out[f * m + mi] = metric.eval(a, b, &self.index);
            }
        }
        out
    }

    /// The raw weighted score of a pair.
    pub fn score(&self, left: &[String], right: &[String]) -> f64 {
        self.features(left, right)
            .iter()
            .zip(self.weights.iter())
            .map(|(x, w)| x * w)
            .sum()
    }

    /// Whether the pair scores at or above the decision threshold.
    pub fn is_match(&self, left: &[String], right: &[String]) -> bool {
        self.score(left, right) >= self.threshold
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The learned weights (for inspection / explanations).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Online passive-aggressive trainer for [`Matcher`] weights.
#[derive(Debug, Clone)]
pub struct MatchLearner {
    fields: usize,
    epochs: usize,
    aggressiveness: f64,
}

impl MatchLearner {
    /// A learner for `fields` aligned key fields.
    pub fn new(fields: usize) -> Self {
        Self { fields, epochs: 12, aggressiveness: 0.5 }
    }

    /// Override the number of training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Train a matcher from labeled pairs. The TF-IDF index should be
    /// built over the values the matcher will see at join time.
    pub fn train(&self, pairs: &[LabeledPair], index: TfIdfIndex) -> Matcher {
        let m = Metric::ALL.len();
        let dim = self.fields * m;
        // Start from uniform small positive weights: with no training at
        // all the matcher behaves like an unweighted metric average.
        let mut matcher = Matcher {
            weights: vec![1.0 / m as f64; dim],
            threshold: 0.5 * self.fields as f64,
            fields: self.fields,
            index,
        };
        if pairs.is_empty() {
            // Untrained: a permissive threshold, so the uniform metric
            // average still links obvious near-matches out of the box.
            matcher.threshold = 0.35 * self.fields as f64;
            return matcher;
        }
        // Passive-aggressive I with margin 1 around the threshold:
        // positives must score >= threshold + 0.5, negatives <= threshold - 0.5.
        for _ in 0..self.epochs {
            for p in pairs {
                let x = matcher.features(&p.left, &p.right);
                let s: f64 = x
                    .iter()
                    .zip(matcher.weights.iter())
                    .map(|(xi, wi)| xi * wi)
                    .sum();
                let y = if p.matched { 1.0 } else { -1.0 };
                let margin = y * (s - matcher.threshold);
                let loss = (0.5 - margin).max(0.0);
                if loss > 0.0 {
                    let norm2: f64 = x.iter().map(|xi| xi * xi).sum();
                    if norm2 > 0.0 {
                        let tau = (loss / norm2).min(self.aggressiveness);
                        for (wi, xi) in matcher.weights.iter_mut().zip(x.iter()) {
                            *wi += tau * y * xi;
                        }
                    }
                }
            }
        }
        // Calibrate the threshold to the midpoint between the lowest
        // positive and highest negative scores, when both classes exist.
        let mut pos: Vec<f64> = Vec::new();
        let mut neg: Vec<f64> = Vec::new();
        for p in pairs {
            let s = matcher.score(&p.left, &p.right);
            if p.matched {
                pos.push(s);
            } else {
                neg.push(s);
            }
        }
        if let (Some(pmin), Some(nmax)) = (
            pos.iter().cloned().reduce(f64::min),
            neg.iter().cloned().reduce(f64::max),
        ) {
            if pmin > nmax {
                matcher.threshold = (pmin + nmax) / 2.0;
            }
        } else if let Some(pmin) = pos.iter().cloned().reduce(f64::min) {
            // Positives only (the common SCP case: user pasted matches).
            matcher.threshold = pmin * 0.9;
        }
        matcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: &str, r: &str, matched: bool) -> LabeledPair {
        LabeledPair {
            left: vec![l.to_string()],
            right: vec![r.to_string()],
            matched,
        }
    }

    fn training() -> Vec<LabeledPair> {
        vec![
            pair("Coconut Creek High School", "Coconut Creek HS", true),
            pair("Pompano Recreation Center", "Pompano Rec Ctr", true),
            pair("Margate Civic Center", "Margate Civic Ctr", true),
            pair("Coconut Creek High School", "Margate Civic Ctr", false),
            pair("Pompano Recreation Center", "Coconut Creek HS", false),
            pair("Margate Civic Center", "Tamarac Comm Ctr", false),
        ]
    }

    #[test]
    fn learned_matcher_separates_training_data() {
        let m = MatchLearner::new(1).train(&training(), TfIdfIndex::new());
        for p in training() {
            assert_eq!(
                m.is_match(&p.left, &p.right),
                p.matched,
                "{:?} vs {:?} score={}",
                p.left,
                p.right,
                m.score(&p.left, &p.right)
            );
        }
    }

    #[test]
    fn learned_matcher_generalizes() {
        let m = MatchLearner::new(1).train(&training(), TfIdfIndex::new());
        assert!(m.is_match(
            &["Tamarac Community Center".to_string()],
            &["Tamarac Comm Ctr".to_string()]
        ));
        assert!(!m.is_match(
            &["Tamarac Community Center".to_string()],
            &["Coconut Creek HS".to_string()]
        ));
    }

    #[test]
    fn positives_only_training_sets_permissive_threshold() {
        let pos: Vec<LabeledPair> = training().into_iter().filter(|p| p.matched).collect();
        let m = MatchLearner::new(1).train(&pos, TfIdfIndex::new());
        assert!(m.is_match(
            &["Coconut Creek High School".to_string()],
            &["Coconut Creek HS".to_string()]
        ));
    }

    #[test]
    fn untrained_matcher_is_sane() {
        let m = MatchLearner::new(1).train(&[], TfIdfIndex::new());
        assert!(m.is_match(&["same".to_string()], &["same".to_string()]));
        assert!(!m.is_match(&["same".to_string()], &["utterly different".to_string()]));
    }

    #[test]
    fn single_metric_baseline() {
        let m = Matcher::single_metric(Metric::Exact, 1, TfIdfIndex::new());
        assert!(m.is_match(&["X".to_string()], &["x".to_string()]));
        assert!(!m.is_match(&["X".to_string()], &["X Y".to_string()]));
    }

    #[test]
    fn multi_field_matching() {
        let pairs = vec![
            LabeledPair {
                left: vec!["Creek HS".into(), "100 Oak St".into()],
                right: vec!["Creek High School".into(), "100 Oak Street".into()],
                matched: true,
            },
            LabeledPair {
                left: vec!["Creek HS".into(), "100 Oak St".into()],
                right: vec!["Margate Civic".into(), "77 Elm Rd".into()],
                matched: false,
            },
        ];
        let m = MatchLearner::new(2).train(&pairs, TfIdfIndex::new());
        assert!(m.is_match(
            &["Margate Civic Ctr".to_string(), "77 Elm Road".to_string()],
            &["Margate Civic".to_string(), "77 Elm Rd".to_string()]
        ));
    }
}
