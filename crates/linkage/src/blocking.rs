//! Candidate-pair generation (blocking).
//!
//! Comparing every left record against every right record is quadratic;
//! blocking emits only pairs that share at least one word token (or a
//! 4-character prefix of one), which is cheap and loses essentially no
//! true matches on name/address data.

use copycat_util::hash::{FxHashMap, FxHashSet};

fn block_keys(s: &str) -> Vec<String> {
    let mut keys = Vec::new();
    for t in s
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
    {
        let t = t.to_lowercase();
        let prefix: String = t.chars().take(4).collect();
        keys.push(prefix);
        keys.push(t);
    }
    keys.sort();
    keys.dedup();
    keys
}

/// All `(left index, right index)` pairs sharing a block key, in sorted
/// order. Pass the string that should drive blocking for each record
/// (typically the concatenated key fields).
pub fn candidate_pairs<S: AsRef<str>, T: AsRef<str>>(left: &[S], right: &[T]) -> Vec<(usize, usize)> {
    let mut by_key: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (j, r) in right.iter().enumerate() {
        for k in block_keys(r.as_ref()) {
            by_key.entry(k).or_default().push(j);
        }
    }
    let mut pairs = FxHashSet::default();
    for (i, l) in left.iter().enumerate() {
        for k in block_keys(l.as_ref()) {
            if let Some(js) = by_key.get(&k) {
                for &j in js {
                    pairs.insert((i, j));
                }
            }
        }
    }
    let mut out: Vec<(usize, usize)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_token_pairs_are_kept() {
        let left = ["Coconut Creek HS", "Margate Civic"];
        let right = ["Creek High School", "Totally Unrelated"];
        let pairs = candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0)), "shares 'creek': {pairs:?}");
        assert!(!pairs.contains(&(1, 1)));
    }

    #[test]
    fn prefix_blocking_catches_abbreviations() {
        // "Pompano" vs "Pomp." share the 4-char prefix "pomp".
        let pairs = candidate_pairs(&["Pompano Rec"], &["Pomp. Recreation"]);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn disjoint_strings_produce_no_pairs() {
        let pairs = candidate_pairs(&["aaa bbb"], &["ccc ddd"]);
        assert!(pairs.is_empty());
    }

    #[test]
    fn blocking_is_subquadratic_in_output() {
        // 100 x 100 records, all distinct tokens: zero pairs.
        let left: Vec<String> = (0..100).map(|i| format!("unique{i}left")).collect();
        let right: Vec<String> = (0..100).map(|i| format!("unique{i}right")).collect();
        // They share 4-char prefix "uniq" — so this *does* pair; use
        // genuinely distinct names instead.
        let left2: Vec<String> = (0..100).map(|i| format!("alpha{i}")).collect();
        let right2: Vec<String> = (0..100).map(|i| format!("omega{i}")).collect();
        assert!(!candidate_pairs(&left, &right).is_empty());
        assert!(candidate_pairs(&left2, &right2).is_empty());
    }

    #[test]
    fn deterministic_order() {
        let left = ["a b", "b c"];
        let right = ["b", "c"];
        assert_eq!(candidate_pairs(&left, &right), candidate_pairs(&left, &right));
    }
}
