//! Generational session snapshots.
//!
//! A snapshot is one JSON file inside the session directory, named by
//! its generation — `snapshot-00000007.json` — holding:
//!
//! ```json
//! {"version": 1, "seq": 42, "crc": 123456789, "payload": "…"}
//! ```
//!
//! `seq` is the last WAL sequence number the payload covers — recovery
//! replays only WAL records *after* it, which is what makes a crash
//! between "snapshot renamed into place" and "WAL compacted" harmless.
//! `crc` is the CRC-32 of the payload bytes, so a half-written or
//! bit-rotted snapshot is detected rather than replayed.
//!
//! Each install is atomic: write `snapshot.tmp`, fsync it, then
//! `rename` into the generation's name (POSIX rename atomicity), then
//! fsync the directory so the rename survives a power cut. At every
//! instant the directory holds only complete snapshot files.
//!
//! **Why generations instead of one file:** a checksummed single
//! snapshot detects its own corruption but has nowhere to fall back
//! to — a lying fsync on the tmp file, followed by a crash, or plain
//! bit rot at rest, would strand the session. So the newest
//! [`KEEP_GENERATIONS`] files are retained, and [`read_best`] walks
//! them newest-first, skipping (and reporting) corrupt ones. The WAL
//! compaction in [`crate::store`] keeps every record *after the
//! previous generation's seq*, so falling back one generation just
//! means a longer — but complete — replay.

use crate::io::Fs;
use copycat_util::checksum::crc32;
use copycat_util::json::{FromJson, Json, JsonError};
use std::path::{Path, PathBuf};

/// Snapshot generations retained on disk (newest N).
pub const KEEP_GENERATIONS: usize = 2;
/// Scratch name every install writes before its rename.
pub const TMP_FILE: &str = "snapshot.tmp";
const PREFIX: &str = "snapshot-";
const SUFFIX: &str = ".json";
const VERSION: u64 = 1;

/// A checkpoint: an opaque payload plus the WAL position it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Last WAL sequence number folded into the payload (0 = none).
    pub seq: u64,
    /// The serialized session (opaque to this crate).
    pub payload: String,
}

/// What walking the generations found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The newest snapshot that verified, if any.
    pub snapshot: Option<Snapshot>,
    /// Generation number of the chosen snapshot (0 = none chosen).
    pub generation: u64,
    /// Newer generations skipped because they failed verification.
    pub skipped: u64,
    /// Files that failed verification (recovery quarantines these so
    /// they stop occupying retention slots).
    pub corrupt: Vec<PathBuf>,
}

/// File name for generation `g`.
pub fn generation_file(g: u64) -> String {
    format!("{PREFIX}{g:08}{SUFFIX}")
}

fn parse_generation(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
    digits.parse().ok()
}

fn envelope(snap: &Snapshot) -> Json {
    Json::obj(vec![
        ("version".into(), Json::Num(VERSION as f64)),
        ("seq".into(), Json::Num(snap.seq as f64)),
        ("crc".into(), Json::Num(f64::from(crc32(snap.payload.as_bytes())))),
        ("payload".into(), Json::str(snap.payload.clone())),
    ])
}

fn open_envelope(j: &Json) -> Result<Snapshot, JsonError> {
    let version = u64::from_json(j.field("version")?)?;
    if version != VERSION {
        return Err(JsonError::new(format!("unknown snapshot version {version}")));
    }
    let seq = u64::from_json(j.field("seq")?)?;
    let stored_crc = u32::from_json(j.field("crc")?)?;
    let payload = j
        .field("payload")?
        .as_str()
        .ok_or_else(|| JsonError::new("snapshot payload is not a string"))?
        .to_string();
    if crc32(payload.as_bytes()) != stored_crc {
        return Err(JsonError::new("snapshot payload checksum mismatch"));
    }
    Ok(Snapshot { seq, payload })
}

/// Generation numbers present in `dir`, ascending.
pub fn list_generations(fs: &Fs, dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut gens: Vec<u64> = fs
        .list_files(dir)?
        .iter()
        .filter_map(|p| parse_generation(p))
        .collect();
    gens.sort_unstable();
    Ok(gens)
}

/// Atomically install `snap` as generation `generation`, then prune
/// generations older than the newest [`KEEP_GENERATIONS`] (prune
/// failures are tolerated — an extra old file costs space, not
/// correctness).
pub fn write(fs: &Fs, dir: &Path, snap: &Snapshot, generation: u64) -> std::io::Result<()> {
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(generation_file(generation));
    fs.write_sync(&tmp, envelope(snap).to_string().as_bytes())?;
    fs.rename(&tmp, &dst)?;
    // Persist the rename: fsync the containing directory.
    fs.sync_dir(dir)?;
    if let Ok(gens) = list_generations(fs, dir) {
        for g in gens.iter().rev().skip(KEEP_GENERATIONS) {
            let _ = fs.remove_file(&dir.join(generation_file(*g)));
        }
    }
    Ok(())
}

/// Verify one generation file, distinguishing I/O errors from
/// corruption (corruption is fall-back-able; an I/O error is not).
fn try_read(fs: &Fs, path: &Path) -> std::io::Result<Result<Snapshot, String>> {
    let bytes = match fs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Err("missing".into()));
        }
        Err(e) => return Err(e),
    };
    let Ok(text) = String::from_utf8(bytes) else {
        return Ok(Err("not utf-8".into()));
    };
    let j = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return Ok(Err(e.to_string())),
    };
    Ok(open_envelope(&j).map_err(|e| e.to_string()))
}

/// Load the newest snapshot that verifies, walking generations
/// newest-first and skipping corrupt ones. No generations at all is a
/// clean `None`; generations present but all corrupt is also `None`
/// with `skipped` accounting — the caller's recovery report turns that
/// into explicit loss, never a silent one.
pub fn read_best(fs: &Fs, dir: &Path) -> std::io::Result<ReadOutcome> {
    let mut out = ReadOutcome { snapshot: None, generation: 0, skipped: 0, corrupt: Vec::new() };
    for g in list_generations(fs, dir)?.into_iter().rev() {
        let path = dir.join(generation_file(g));
        match try_read(fs, &path)? {
            Ok(snap) => {
                out.snapshot = Some(snap);
                out.generation = g;
                break;
            }
            Err(_) => {
                out.skipped += 1;
                out.corrupt.push(path);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimFs;
    use std::sync::Arc;

    fn sim() -> (Arc<SimFs>, Fs, PathBuf) {
        let sim = Arc::new(SimFs::new(0x5EED));
        let fs = Fs::sim(Arc::clone(&sim));
        let dir = PathBuf::from("/snap-test");
        fs.create_dir_all(&dir).unwrap();
        (sim, fs, dir)
    }

    #[test]
    fn write_read_round_trips_and_newest_wins() {
        let (_sim, fs, dir) = sim();
        assert_eq!(read_best(&fs, &dir).unwrap().snapshot, None);
        let first = Snapshot { seq: 7, payload: "[\"line one\"]".into() };
        write(&fs, &dir, &first, 1).unwrap();
        let out = read_best(&fs, &dir).unwrap();
        assert_eq!(out.snapshot, Some(first));
        assert_eq!(out.generation, 1);
        let second = Snapshot { seq: 19, payload: "[\"line one\",\"línea dos\"]".into() };
        write(&fs, &dir, &second, 2).unwrap();
        let out = read_best(&fs, &dir).unwrap();
        assert_eq!(out.snapshot, Some(second));
        assert_eq!(out.generation, 2);
        assert_eq!(out.skipped, 0);
        // No tmp residue after a clean install.
        assert!(!fs.exists(&dir.join(TMP_FILE)));
    }

    #[test]
    fn retention_keeps_the_newest_two_generations() {
        let (_sim, fs, dir) = sim();
        for g in 1..=5u64 {
            let snap = Snapshot { seq: g * 10, payload: format!("gen-{g}") };
            write(&fs, &dir, &snap, g).unwrap();
        }
        assert_eq!(list_generations(&fs, &dir).unwrap(), vec![4, 5]);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_generation() {
        let (sim, fs, dir) = sim();
        write(&fs, &dir, &Snapshot { seq: 10, payload: "older-good".into() }, 1).unwrap();
        write(&fs, &dir, &Snapshot { seq: 20, payload: "newer-doomed".into() }, 2).unwrap();
        assert!(sim.corrupt_file(&dir.join(generation_file(2))));
        let out = read_best(&fs, &dir).unwrap();
        assert_eq!(out.snapshot, Some(Snapshot { seq: 10, payload: "older-good".into() }));
        assert_eq!(out.generation, 1);
        assert_eq!(out.skipped, 1);
        assert_eq!(out.corrupt, vec![dir.join(generation_file(2))]);
    }

    #[test]
    fn all_generations_corrupt_reports_rather_than_lies() {
        let (sim, fs, dir) = sim();
        write(&fs, &dir, &Snapshot { seq: 10, payload: "one".into() }, 1).unwrap();
        write(&fs, &dir, &Snapshot { seq: 20, payload: "two".into() }, 2).unwrap();
        assert!(sim.corrupt_file(&dir.join(generation_file(1))));
        assert!(sim.corrupt_file(&dir.join(generation_file(2))));
        let out = read_best(&fs, &dir).unwrap();
        assert_eq!(out.snapshot, None);
        assert_eq!(out.skipped, 2);
        assert_eq!(out.corrupt.len(), 2);
    }

    #[test]
    fn future_versions_are_refused_not_misread() {
        let (_sim, fs, dir) = sim();
        write(&fs, &dir, &Snapshot { seq: 1, payload: "p".into() }, 1).unwrap();
        let path = dir.join(generation_file(1));
        let bumped = String::from_utf8(fs.read(&path).unwrap())
            .unwrap()
            .replace("\"version\":1", "\"version\":2");
        fs.write(&path, bumped.as_bytes()).unwrap();
        let out = read_best(&fs, &dir).unwrap();
        assert_eq!(out.snapshot, None);
        assert_eq!(out.skipped, 1);
    }
}
