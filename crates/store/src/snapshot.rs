//! Atomic session snapshots.
//!
//! A snapshot is one JSON file inside the session directory:
//!
//! ```json
//! {"version": 1, "seq": 42, "crc": 123456789, "payload": "…"}
//! ```
//!
//! `seq` is the last WAL sequence number the payload covers — recovery
//! replays only WAL records *after* it, which is what makes a crash
//! between "snapshot renamed into place" and "WAL truncated" harmless.
//! `crc` is the CRC-32 of the payload bytes, so a half-written or
//! bit-rotted snapshot is detected rather than replayed.
//!
//! Replacement is atomic: write `snapshot.tmp`, fsync it, then
//! `rename` over `snapshot.json` (POSIX rename atomicity), then fsync
//! the directory so the rename itself survives a power cut. At every
//! instant the directory holds either the old complete snapshot or the
//! new complete snapshot, never a torn one.

use copycat_util::checksum::crc32;
use copycat_util::json::{FromJson, Json, JsonError};
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File name of the current snapshot inside a session directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
const TMP_FILE: &str = "snapshot.tmp";
const VERSION: u64 = 1;

/// A checkpoint: an opaque payload plus the WAL position it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Last WAL sequence number folded into the payload (0 = none).
    pub seq: u64,
    /// The serialized session (opaque to this crate).
    pub payload: String,
}

fn envelope(snap: &Snapshot) -> Json {
    Json::obj(vec![
        ("version".into(), Json::Num(VERSION as f64)),
        ("seq".into(), Json::Num(snap.seq as f64)),
        ("crc".into(), Json::Num(f64::from(crc32(snap.payload.as_bytes())))),
        ("payload".into(), Json::str(snap.payload.clone())),
    ])
}

fn open_envelope(j: &Json) -> Result<Snapshot, JsonError> {
    let version = u64::from_json(j.field("version")?)?;
    if version != VERSION {
        return Err(JsonError::new(format!("unknown snapshot version {version}")));
    }
    let seq = u64::from_json(j.field("seq")?)?;
    let stored_crc = u32::from_json(j.field("crc")?)?;
    let payload = j
        .field("payload")?
        .as_str()
        .ok_or_else(|| JsonError::new("snapshot payload is not a string"))?
        .to_string();
    if crc32(payload.as_bytes()) != stored_crc {
        return Err(JsonError::new("snapshot payload checksum mismatch"));
    }
    Ok(Snapshot { seq, payload })
}

/// Atomically install `snap` as the directory's current snapshot.
pub fn write(dir: &Path, snap: &Snapshot) -> std::io::Result<()> {
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(SNAPSHOT_FILE);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(envelope(snap).to_string().as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &dst)?;
    // Persist the rename: fsync the containing directory.
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Load the current snapshot, if any. A missing file is `None`; a
/// present-but-unreadable one (torn write that dodged the tmp+rename
/// protocol, bit rot, future version) is an error — recovering from a
/// *wrong* checkpoint would be worse than failing loudly.
pub fn read(dir: &Path) -> std::io::Result<Option<Snapshot>> {
    let bytes = match std::fs::read(dir.join(SNAPSHOT_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| std::io::Error::other("snapshot is not utf-8"))?;
    let j = Json::parse(&text).map_err(std::io::Error::other)?;
    open_envelope(&j).map(Some).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copycat-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trips_and_replaces() {
        let dir = temp_dir("roundtrip");
        assert_eq!(read(&dir).unwrap(), None);
        let first = Snapshot { seq: 7, payload: "[\"line one\"]".into() };
        write(&dir, &first).unwrap();
        assert_eq!(read(&dir).unwrap(), Some(first));
        let second = Snapshot { seq: 19, payload: "[\"line one\",\"línea dos\"]".into() };
        write(&dir, &second).unwrap();
        assert_eq!(read(&dir).unwrap(), Some(second));
        // No tmp residue after a clean install.
        assert!(!dir.join(TMP_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let dir = temp_dir("corrupt");
        write(&dir, &Snapshot { seq: 1, payload: "payload-bytes".into() }).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mangled = std::fs::read_to_string(&path)
            .unwrap()
            .replace("payload-bytes", "payload-byteZ");
        std::fs::write(&path, mangled).unwrap();
        assert!(read(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_versions_are_refused_not_misread() {
        let dir = temp_dir("version");
        write(&dir, &Snapshot { seq: 1, payload: "p".into() }).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let bumped = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"version\":1", "\"version\":2");
        std::fs::write(&path, bumped).unwrap();
        assert!(read(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
