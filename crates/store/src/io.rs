//! The storage I/O layer: every byte the store reads or writes goes
//! through a [`StoreFs`], so the *same* WAL/snapshot/recovery code runs
//! against the real filesystem in production and against a seeded,
//! fault-injecting simulation in tests and benches.
//!
//! Two implementations:
//!
//! - [`RealFs`] — a passthrough to `std::fs`. Every method is a single
//!   delegated call; the indirection is one vtable hop on operations
//!   that end in a syscall (µs–ms), so the production path costs
//!   nothing measurable (the `recovery_under_fault` bench sweep pins
//!   this with a raw-`std::fs` comparison).
//! - [`SimFs`] — a deterministic in-memory filesystem with a seeded
//!   fault plan. It models the failure surface a disk actually has:
//!   **short writes** (a `write` persists only a prefix and errors),
//!   **torn appends** (the process dies mid-`write`; a prefix of the
//!   batch lands), **failed fsyncs** (`fsync` errors, durability does
//!   not advance), **lying fsyncs** (`fsync` reports success but the
//!   data never becomes durable — the firmware-cache lie), **post-fsync
//!   bit flips** (durable bytes rot), **partial reads**, and **ENOSPC**.
//!   [`SimFs::crash`] replaces every file's contents with its *crash
//!   image*: the durable prefix plus a seeded partial retention of the
//!   unsynced suffix (real disks persist un-fsynced pages at their
//!   whim — recovery may not rely on either outcome).
//!
//! Determinism model: a `SimFs` is a pure function of its seed, its
//! fault plan, and the sequence of operations issued against it.
//! Mutating and reading operations are numbered (the *op index*); a
//! [`FaultPlan`] arms a fault at an index, and the fault fires at the
//! first *eligible* operation at or after that index (a fsync fault
//! waits for the next fsync, and so on). Every random draw — torn-cut
//! points, flipped bits, crash retention — comes from the seeded
//! generator, so a failing injection point replays exactly.
//!
//! Rename durability is modeled as immediate (a journaling filesystem's
//! metadata guarantee); what the simulation *does* exercise is the
//! window where a renamed file's **contents** were never fsynced — a
//! lying or failed fsync on `snapshot.tmp` leaves the renamed-in
//! generation corrupt after a crash, which is exactly the case the
//! generational fallback in [`crate::snapshot`] exists for.
//!
//! The `fs-discipline` lint rule pins the boundary: outside this module
//! (and the lint/bench tooling), nothing in the workspace may touch
//! `std::fs` directly, so no future code can bypass fault injection.

use copycat_util::rng::{Rng, SeedableRng, StdRng};
use copycat_util::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open, append-only file handle.
pub trait StoreFile: Send + fmt::Debug {
    /// Append `bytes` at the end of the file.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flush file contents to durable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface the store is allowed to use.
pub trait StoreFs: Send + Sync + fmt::Debug {
    /// Open (creating if absent) `path` for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;
    /// Read the whole file. Missing files are `ErrorKind::NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create/overwrite `path` with `bytes`, no fsync (sidecar files
    /// whose loss is tolerable).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Create/overwrite `path` with `bytes` and fsync it (the tmp half
    /// of every write-temp-rename).
    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically rename `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Fsync the directory so renames inside it survive a power cut.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Remove one file; missing is an error (callers decide tolerance).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Remove `dir` and everything under it; missing is `NotFound`.
    fn remove_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Size of the file at `path` in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Immediate subdirectories of `dir`, sorted. Missing dir = empty.
    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Files directly inside `dir`, sorted. Missing dir = empty.
    fn list_files(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// A cheap-to-clone handle to one [`StoreFs`] implementation — the
/// value threaded through `Wal`, `SessionStore`, and the serve router.
#[derive(Clone)]
pub struct Fs(Arc<dyn StoreFs>);

impl fmt::Debug for Fs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fs({:?})", self.0)
    }
}

impl Fs {
    /// The production filesystem.
    pub fn real() -> Fs {
        Fs(Arc::new(RealFs))
    }

    /// Wrap a simulation (keep your own `Arc<SimFs>` to drive faults
    /// and crashes).
    pub fn sim(sim: Arc<SimFs>) -> Fs {
        // `StoreFs` is implemented on `Arc<SimFs>` (handles need a way
        // back to shared state), so the trait object wraps the Arc.
        Fs(Arc::new(sim))
    }

    /// The underlying implementation.
    pub fn inner(&self) -> &dyn StoreFs {
        &*self.0
    }
}

impl std::ops::Deref for Fs {
    type Target = dyn StoreFs;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

// ---------------------------------------------------------------------------
// RealFs: the std::fs passthrough.
// ---------------------------------------------------------------------------

/// The production implementation: every method is one `std::fs` call.
#[derive(Debug)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl StoreFile for RealFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(bytes)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom};
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl StoreFs for RealFs {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        std::fs::metadata(path).map(|m| m.len())
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        list_real(dir, true)
    }

    fn list_files(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        list_real(dir, false)
    }
}

fn list_real(dir: &Path, dirs: bool) -> io::Result<Vec<PathBuf>> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out: Vec<PathBuf> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| if dirs { p.is_dir() } else { p.is_file() })
        .collect();
    out.sort();
    Ok(out)
}

// ---------------------------------------------------------------------------
// SimFs: the deterministic fault-injecting simulation.
// ---------------------------------------------------------------------------

/// The injectable fault taxonomy. Each fault fires **once**, at the
/// first eligible operation at or after its armed op index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A `write` persists only a seeded prefix and reports an error.
    ShortWrite,
    /// The process dies mid-`write`: a seeded prefix of the batch
    /// lands, the call errors, and every later operation fails — the
    /// harness must [`crash`](SimFs::crash) and recover.
    TornAppend,
    /// `fsync` reports an error; durability does not advance.
    FailedFsync,
    /// `fsync` reports success but durability does not advance — the
    /// ack-then-drop lie. Only a later honest fsync (or nothing)
    /// persists the data.
    LyingFsync,
    /// `fsync` succeeds, then one seeded bit of the durable image rots.
    BitFlip,
    /// A read returns only a seeded prefix of the file.
    PartialRead,
    /// A `write` fails with "no space left on device"; nothing lands.
    Enospc,
}

impl FaultKind {
    /// Every kind, in a stable order (the sweep iterates this).
    pub const ALL: [FaultKind; 7] = [
        FaultKind::ShortWrite,
        FaultKind::TornAppend,
        FaultKind::FailedFsync,
        FaultKind::LyingFsync,
        FaultKind::BitFlip,
        FaultKind::PartialRead,
        FaultKind::Enospc,
    ];

    /// Stable lower-case name (bench tables, smoke output).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortWrite => "short_write",
            FaultKind::TornAppend => "torn_append",
            FaultKind::FailedFsync => "failed_fsync",
            FaultKind::LyingFsync => "lying_fsync",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::PartialRead => "partial_read",
            FaultKind::Enospc => "enospc",
        }
    }

    /// Which operation category this fault can fire on.
    fn eligible(self, op: OpCat) -> bool {
        match self {
            FaultKind::ShortWrite | FaultKind::TornAppend | FaultKind::Enospc => {
                op == OpCat::Write
            }
            FaultKind::FailedFsync | FaultKind::LyingFsync | FaultKind::BitFlip => {
                op == OpCat::Sync
            }
            FaultKind::PartialRead => op == OpCat::Read,
        }
    }
}

/// One armed fault: fires at the first eligible operation whose index
/// is `>= at_op` (indices start at 1).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Operation index at which the fault arms.
    pub at_op: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpCat {
    Write,
    Sync,
    Read,
}

#[derive(Debug, Default, Clone)]
struct SimFile {
    /// Contents as the running process observes them.
    visible: Vec<u8>,
    /// Prefix image guaranteed to survive a crash (last honest fsync).
    durable: Vec<u8>,
}

#[derive(Debug)]
struct SimState {
    rng: StdRng,
    files: BTreeMap<PathBuf, SimFile>,
    dirs: std::collections::BTreeSet<PathBuf>,
    plan: Vec<FaultPlan>,
    /// Names of faults that actually fired, in order.
    fired: Vec<FaultKind>,
    /// Operation counter (writes, fsyncs, reads).
    ops: u64,
    /// Set once a [`FaultKind::TornAppend`] fires: the simulated
    /// process is dead mid-write; everything fails until `crash()`.
    dead: bool,
}

/// The deterministic fault-injecting filesystem. Wrap it in an `Arc`
/// and hand [`Fs::sim`] a clone; keep your copy to drive
/// [`crash`](SimFs::crash) and inspect [`fired`](SimFs::fired).
#[derive(Debug)]
pub struct SimFs {
    state: Mutex<SimState>,
}

fn err(msg: &str) -> io::Error {
    io::Error::other(format!("simfs: {msg}"))
}

impl SimFs {
    /// A fault-free simulation (used to count a workload's ops).
    pub fn new(seed: u64) -> SimFs {
        SimFs::with_faults(seed, Vec::new())
    }

    /// A simulation with an armed fault plan.
    pub fn with_faults(seed: u64, plan: Vec<FaultPlan>) -> SimFs {
        SimFs {
            state: Mutex::new(SimState {
                rng: StdRng::seed_from_u64(seed ^ 0x51D_FAu64),
                files: BTreeMap::new(),
                dirs: std::collections::BTreeSet::new(),
                plan,
                fired: Vec::new(),
                ops: 0,
                dead: false,
            }),
        }
    }

    /// Total countable operations issued so far (the sweep's domain).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// The faults that actually fired, in firing order.
    pub fn fired(&self) -> Vec<FaultKind> {
        self.state.lock().fired.clone()
    }

    /// Whether a torn append killed the simulated process.
    pub fn dead(&self) -> bool {
        self.state.lock().dead
    }

    /// Simulate the machine dying and rebooting: every file's contents
    /// become its crash image — the durable prefix plus a seeded
    /// partial retention of whatever was written but never fsynced.
    /// Open handles from before the crash must not be used again (drop
    /// the pre-crash store/router first).
    pub fn crash(&self) {
        let mut s = self.state.lock();
        s.dead = false;
        // The fault plan describes the pre-crash run; whatever is still
        // armed dies with the process, so recovery runs fault-free.
        s.plan.clear();
        let paths: Vec<PathBuf> = s.files.keys().cloned().collect();
        for path in paths {
            // Decide retention with split borrows: draw first, then mutate.
            let (durable, visible) = {
                let f = &s.files[&path];
                (f.durable.clone(), f.visible.clone())
            };
            let image = if visible.len() > durable.len() && visible.starts_with(&durable) {
                // The unsynced suffix survives to a seeded torn cut —
                // anywhere from nothing to all of it.
                let suffix = visible.len() - durable.len();
                let keep = s.rng.gen_range(0..suffix + 1);
                let mut img = durable.clone();
                img.extend_from_slice(&visible[durable.len()..durable.len() + keep]);
                img
            } else {
                durable.clone()
            };
            let f = s.files.get_mut(&path).expect("file existed above");
            f.visible = image.clone();
            f.durable = image;
        }
    }

    /// Arm one more fault (tests composing plans incrementally).
    pub fn arm(&self, plan: FaultPlan) {
        self.state.lock().plan.push(plan);
    }

    /// Flip one seeded bit somewhere in `path`'s durable *and* visible
    /// image — out-of-band corruption for tests that rot a file at
    /// rest rather than mid-operation.
    pub fn corrupt_file(&self, path: &Path) -> bool {
        let mut s = self.state.lock();
        let Some(f) = s.files.get(path).cloned() else { return false };
        if f.durable.is_empty() && f.visible.is_empty() {
            return false;
        }
        let len = f.visible.len().max(f.durable.len());
        let byte = s.rng.gen_range(0..len);
        let bit = 1u8 << s.rng.gen_range(0..8usize);
        let f = s.files.get_mut(path).expect("checked above");
        if byte < f.visible.len() {
            f.visible[byte] ^= bit;
        }
        if byte < f.durable.len() {
            f.durable[byte] ^= bit;
        }
        true
    }

    /// Bytes currently visible at `path` (test introspection).
    pub fn visible(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.lock().files.get(path).map(|f| f.visible.clone())
    }
}

impl SimState {
    /// Count one operation and pop the armed fault if it fires here.
    fn tick(&mut self, cat: OpCat) -> io::Result<Option<FaultKind>> {
        if self.dead {
            return Err(err("process dead after torn append"));
        }
        self.ops += 1;
        let ops = self.ops;
        if let Some(i) = self
            .plan
            .iter()
            .position(|p| p.at_op <= ops && p.kind.eligible(cat))
        {
            let p = self.plan.remove(i);
            self.fired.push(p.kind);
            return Ok(Some(p.kind));
        }
        Ok(None)
    }

    fn file_mut(&mut self, path: &Path) -> &mut SimFile {
        self.files.entry(path.to_path_buf()).or_default()
    }

    /// Apply one write of `bytes` to `path` under fault `fault`.
    fn apply_write(
        &mut self,
        path: &Path,
        bytes: &[u8],
        fault: Option<FaultKind>,
        truncate: bool,
    ) -> io::Result<()> {
        if truncate {
            self.file_mut(path).visible.clear();
        }
        match fault {
            None => {
                self.file_mut(path).visible.extend_from_slice(bytes);
                Ok(())
            }
            Some(FaultKind::Enospc) => Err(err("no space left on device (ENOSPC)")),
            Some(FaultKind::ShortWrite) => {
                let keep = self.rng.gen_range(0..bytes.len().max(1));
                self.file_mut(path).visible.extend_from_slice(&bytes[..keep]);
                Err(err("short write: device error mid-transfer"))
            }
            Some(FaultKind::TornAppend) => {
                let keep = self.rng.gen_range(0..bytes.len().max(1));
                self.file_mut(path).visible.extend_from_slice(&bytes[..keep]);
                self.dead = true;
                Err(err("process killed mid-write (torn append)"))
            }
            Some(other) => {
                // An armed fault of a different category can't fire on
                // a write; tick() already filtered, so this is a bug.
                Err(err(&format!("internal: {other:?} fired on a write")))
            }
        }
    }

    /// Apply one fsync of `path` under fault `fault`.
    fn apply_sync(&mut self, path: &Path, fault: Option<FaultKind>) -> io::Result<()> {
        match fault {
            None => {
                let f = self.file_mut(path);
                f.durable = f.visible.clone();
                Ok(())
            }
            Some(FaultKind::FailedFsync) => Err(err("fsync failed (EIO)")),
            Some(FaultKind::LyingFsync) => Ok(()), // acked, never persisted
            Some(FaultKind::BitFlip) => {
                let (len, _) = {
                    let f = self.file_mut(path);
                    f.durable = f.visible.clone();
                    (f.durable.len(), ())
                };
                if len > 0 {
                    let byte = self.rng.gen_range(0..len);
                    let bit = 1u8 << self.rng.gen_range(0..8usize);
                    let f = self.file_mut(path);
                    f.durable[byte] ^= bit;
                    // The rot is on the platter: the running process
                    // keeps its clean page cache (visible unchanged),
                    // the corruption surfaces after the crash.
                }
                Ok(())
            }
            Some(other) => Err(err(&format!("internal: {other:?} fired on a sync"))),
        }
    }
}

#[derive(Debug)]
struct SimHandle {
    sim: Arc<SimFs>,
    path: PathBuf,
}

impl StoreFile for SimHandle {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.sim.state.lock();
        let fault = s.tick(OpCat::Write)?;
        s.apply_write(&self.path, bytes, fault, false)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = self.sim.state.lock();
        let fault = s.tick(OpCat::Sync)?;
        s.apply_sync(&self.path, fault)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.sim.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        let f = s.file_mut(&self.path);
        f.visible.truncate(len as usize);
        Ok(())
    }
}

/// `impl StoreFs` glue: `Fs::sim` hands out `Arc<SimFs>` directly, so
/// the trait is implemented on the `Arc` (handles need a way back to
/// the shared state).
impl StoreFs for Arc<SimFs> {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let mut s = self.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        s.file_mut(path);
        Ok(Box::new(SimHandle { sim: Arc::clone(self), path: path.to_path_buf() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock();
        let fault = s.tick(OpCat::Read)?;
        let Some(f) = s.files.get(path) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "simfs: no such file"));
        };
        let content = f.visible.clone();
        match fault {
            Some(FaultKind::PartialRead) => {
                let keep = s.rng.gen_range(0..content.len().max(1));
                Ok(content[..keep].to_vec())
            }
            _ => Ok(content),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let fault = s.tick(OpCat::Write)?;
        s.apply_write(path, bytes, fault, true)
    }

    fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        {
            let mut s = self.state.lock();
            let fault = s.tick(OpCat::Write)?;
            s.apply_write(path, bytes, fault, true)?;
        }
        let mut s = self.state.lock();
        let fault = s.tick(OpCat::Sync)?;
        s.apply_sync(path, fault)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        let Some(f) = s.files.remove(from) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "simfs: rename source missing"));
        };
        s.files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        // Renames are modeled metadata-durable (see module docs); the
        // directory fsync is a no-op that must still fail once dead.
        if self.state.lock().dead {
            return Err(err("process dead after torn append"));
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        if s.files.remove(path).is_none() {
            return Err(io::Error::new(io::ErrorKind::NotFound, "simfs: no such file"));
        }
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        let mut d = dir.to_path_buf();
        loop {
            s.dirs.insert(d.clone());
            match d.parent() {
                Some(p) if p != Path::new("") => d = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.dead {
            return Err(err("process dead after torn append"));
        }
        let existed = s.dirs.contains(dir)
            || s.files.keys().any(|p| p.starts_with(dir))
            || s.dirs.iter().any(|d| d.starts_with(dir));
        if !existed {
            return Err(io::Error::new(io::ErrorKind::NotFound, "simfs: no such directory"));
        }
        s.files.retain(|p, _| !p.starts_with(dir));
        s.dirs.retain(|d| !d.starts_with(dir));
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock();
        s.files.contains_key(path) || s.dirs.contains(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let s = self.state.lock();
        s.files
            .get(path)
            .map(|f| f.visible.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "simfs: no such file"))
    }

    fn list_dirs(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock();
        let mut out: Vec<PathBuf> = s
            .dirs
            .iter()
            .filter(|d| d.parent() == Some(dir))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }

    fn list_files(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock();
        let mut out: Vec<PathBuf> = s
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_and_sync(fs: &Fs, path: &Path, chunks: &[&[u8]], sync_after: usize) -> Vec<u8> {
        let mut f = fs.open_append(path).unwrap();
        let mut all = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            f.write_all(c).unwrap();
            all.extend_from_slice(c);
            if i + 1 == sync_after {
                f.sync_data().unwrap();
            }
        }
        all
    }

    #[test]
    fn sim_round_trips_and_crash_drops_unsynced_suffix_prefixwise() {
        let sim = Arc::new(SimFs::new(7));
        let fs = Fs::sim(Arc::clone(&sim));
        let all = write_and_sync(&fs, &p("/d/wal"), &[b"aaaa", b"bbbb", b"cccc"], 2);
        assert_eq!(fs.read(&p("/d/wal")).unwrap(), all);
        sim.crash();
        let after = fs.read(&p("/d/wal")).unwrap();
        // The synced 8 bytes survive; the torn tail is a prefix of the
        // unsynced 4.
        assert!(after.len() >= 8 && after.len() <= 12, "{}", after.len());
        assert_eq!(&after[..8], b"aaaabbbb");
        assert!(all.starts_with(&after));
    }

    #[test]
    fn sim_is_deterministic_for_a_seed() {
        let run = |seed| {
            let sim = Arc::new(SimFs::with_faults(
                seed,
                vec![FaultPlan { at_op: 2, kind: FaultKind::ShortWrite }],
            ));
            let fs = Fs::sim(Arc::clone(&sim));
            let mut f = fs.open_append(&p("/w")).unwrap();
            f.write_all(b"first-record").unwrap();
            let e = f.write_all(b"second-record").unwrap_err().to_string();
            sim.crash();
            (fs.read(&p("/w")).unwrap(), e, sim.op_count())
        };
        assert_eq!(run(41), run(41));
        // Different seed, different torn cut (with overwhelming
        // probability for these lengths; pinned seeds avoid flakes).
        assert_ne!(run(41).0, run(43).0);
    }

    #[test]
    fn lying_fsync_acks_then_drops_on_crash() {
        let sim = Arc::new(SimFs::with_faults(
            9,
            vec![FaultPlan { at_op: 1, kind: FaultKind::LyingFsync }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        f.write_all(b"doomed").unwrap();
        f.sync_data().unwrap(); // the lie: Ok, but nothing persisted
        assert_eq!(sim.fired(), vec![FaultKind::LyingFsync]);
        sim.crash();
        // Crash retention may keep a prefix (unsynced pages), but the
        // bytes were never durable — rerun crash images across seeds
        // must be allowed to be empty. With seed 9 the cut is partial.
        let img = fs.read(&p("/w")).unwrap();
        assert!(b"doomed".starts_with(img.as_slice()));
    }

    #[test]
    fn failed_fsync_errors_and_does_not_advance_durability() {
        let sim = Arc::new(SimFs::with_faults(
            5,
            vec![FaultPlan { at_op: 1, kind: FaultKind::FailedFsync }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        f.write_all(b"data").unwrap();
        assert!(f.sync_data().is_err());
        // A later honest fsync persists everything.
        f.sync_data().unwrap();
        sim.crash();
        assert_eq!(fs.read(&p("/w")).unwrap(), b"data");
    }

    #[test]
    fn bit_flip_rots_the_durable_image_only() {
        let sim = Arc::new(SimFs::with_faults(
            11,
            vec![FaultPlan { at_op: 2, kind: FaultKind::BitFlip }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        f.write_all(b"pristine-bytes").unwrap();
        f.sync_data().unwrap();
        // Pre-crash reads see the clean page cache.
        assert_eq!(fs.read(&p("/w")).unwrap(), b"pristine-bytes");
        sim.crash();
        let rotten = fs.read(&p("/w")).unwrap();
        assert_eq!(rotten.len(), b"pristine-bytes".len());
        assert_ne!(rotten, b"pristine-bytes");
        let diff: usize = rotten
            .iter()
            .zip(b"pristine-bytes".iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
    }

    #[test]
    fn torn_append_kills_the_process_until_crash() {
        let sim = Arc::new(SimFs::with_faults(
            3,
            vec![FaultPlan { at_op: 1, kind: FaultKind::TornAppend }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        assert!(f.write_all(b"abcdef").is_err());
        assert!(sim.dead());
        assert!(f.write_all(b"more").is_err());
        assert!(fs.read(&p("/w")).is_err());
        sim.crash();
        let img = fs.read(&p("/w")).unwrap();
        assert!(b"abcdef".starts_with(img.as_slice()));
    }

    #[test]
    fn enospc_persists_nothing_and_is_transient() {
        let sim = Arc::new(SimFs::with_faults(
            13,
            vec![FaultPlan { at_op: 1, kind: FaultKind::Enospc }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        let e = f.write_all(b"wont-fit").unwrap_err();
        assert!(e.to_string().contains("ENOSPC"), "{e}");
        assert_eq!(fs.read(&p("/w")).unwrap(), b"");
        f.write_all(b"fits-now").unwrap();
        f.sync_data().unwrap();
        assert_eq!(fs.read(&p("/w")).unwrap(), b"fits-now");
    }

    #[test]
    fn partial_read_returns_a_prefix() {
        let sim = Arc::new(SimFs::new(17));
        let fs = Fs::sim(Arc::clone(&sim));
        let mut f = fs.open_append(&p("/w")).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.sync_data().unwrap();
        sim.arm(FaultPlan { at_op: 0, kind: FaultKind::PartialRead });
        let short = fs.read(&p("/w")).unwrap();
        assert!(short.len() < 10);
        assert!(b"0123456789".starts_with(short.as_slice()));
        // Single-shot: the next read is whole.
        assert_eq!(fs.read(&p("/w")).unwrap(), b"0123456789");
    }

    #[test]
    fn rename_and_namespace_ops_work() {
        let sim = Arc::new(SimFs::new(1));
        let fs = Fs::sim(Arc::clone(&sim));
        fs.create_dir_all(&p("/root/sess-a")).unwrap();
        fs.write(&p("/root/sess-a/name"), b"a").unwrap();
        fs.write_sync(&p("/root/sess-a/snap.tmp"), b"payload").unwrap();
        fs.rename(&p("/root/sess-a/snap.tmp"), &p("/root/sess-a/snap-1.json")).unwrap();
        fs.sync_dir(&p("/root/sess-a")).unwrap();
        assert!(fs.exists(&p("/root/sess-a/snap-1.json")));
        assert!(!fs.exists(&p("/root/sess-a/snap.tmp")));
        assert_eq!(fs.list_dirs(&p("/root")).unwrap(), vec![p("/root/sess-a")]);
        assert_eq!(
            fs.list_files(&p("/root/sess-a")).unwrap(),
            vec![p("/root/sess-a/name"), p("/root/sess-a/snap-1.json")]
        );
        assert_eq!(fs.file_len(&p("/root/sess-a/snap-1.json")).unwrap(), 7);
        sim.crash();
        // write_sync'd content survives the crash under the new name.
        assert_eq!(fs.read(&p("/root/sess-a/snap-1.json")).unwrap(), b"payload");
        fs.remove_dir_all(&p("/root/sess-a")).unwrap();
        assert!(!fs.exists(&p("/root/sess-a/name")));
        assert!(fs.remove_dir_all(&p("/root/sess-a")).is_err());
    }

    #[test]
    fn real_fs_round_trips() {
        let fs = Fs::real();
        let dir = std::env::temp_dir().join(format!(
            "copycat-io-real-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs.remove_dir_all(&dir);
        fs.create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut f = fs.open_append(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        assert_eq!(fs.file_len(&path).unwrap(), 11);
        fs.write_sync(&dir.join("s.tmp"), b"snap").unwrap();
        fs.rename(&dir.join("s.tmp"), &dir.join("s.json")).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.list_files(&dir).unwrap().len(), 2);
        assert_eq!(fs.list_dirs(&dir).unwrap().len(), 0);
        assert!(fs.exists(&path));
        fs.remove_dir_all(&dir).unwrap();
        assert!(!fs.exists(&dir));
    }
}
