//! The append-only write-ahead log.
//!
//! On-disk format, per record:
//!
//! ```text
//! [seq: varint u64] [len: varint u64] [crc: 4 bytes LE] [payload: len bytes]
//! ```
//!
//! The CRC-32 covers the seq prefix *and* the payload, so a corrupted
//! header is as detectable as a corrupted body. Records carry their own
//! sequence number (assigned by the caller, monotonically) because the
//! log's lifetime is decoupled from the snapshot's: a crash after a
//! snapshot lands but before the log is truncated leaves records the
//! snapshot already covers, and recovery must be able to skip them.
//!
//! Appends go through a **group-commit buffer**: [`Wal::append`] only
//! encodes into memory, and [`Wal::sync`] writes the whole batch with
//! one `write` + one `fsync`. A caller that acknowledges after `sync`
//! gets classic WAL durability; a caller that batches N appends per
//! sync trades a bounded tail of acknowledged-but-volatile records for
//! an N-fold cut in fsyncs (the bench sweep measures exactly this).
//!
//! Reading is torn-tail tolerant: decoding stops at the first
//! truncated or checksum-failed record and reports how many bytes were
//! discarded, because a machine dying mid-`write` is the expected
//! failure this layer exists to survive — not an error.

use copycat_util::checksum::Crc32;
use copycat_util::varint;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the log inside a session directory.
pub const WAL_FILE: &str = "wal.log";

/// Cumulative fsync accounting for one log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `fsync` calls issued (empty-buffer syncs are skipped).
    pub syncs: u64,
    /// Records made durable across all syncs.
    pub records_synced: u64,
    /// Bytes made durable across all syncs.
    pub bytes_synced: u64,
    /// Total wall time spent in write+fsync, microseconds.
    pub sync_micros: u64,
}

/// What a full read of a log file found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReadOutcome {
    /// Every intact record, in append order.
    pub records: Vec<(u64, String)>,
    /// Bytes of torn/corrupt tail discarded (0 on a clean log).
    pub torn_bytes: u64,
    /// File offset where the valid prefix ends (safe truncation point).
    pub valid_len: u64,
}

/// An open, appendable log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Encoded-but-unwritten records: the group-commit buffer.
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buffered: u64,
    stats: SyncStats,
}

fn encode_record(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let mut seq_bytes = Vec::with_capacity(varint::MAX_LEN);
    varint::encode_u64(seq, &mut seq_bytes);
    let mut crc = Crc32::new();
    crc.update(&seq_bytes);
    crc.update(payload);
    out.extend_from_slice(&seq_bytes);
    varint::encode_u64(payload.len() as u64, out);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode one record from `buf`, returning `(seq, payload, consumed)`,
/// or `None` when the bytes at the front are torn/corrupt/truncated.
fn decode_record(buf: &[u8]) -> Option<(u64, String, usize)> {
    let (seq, seq_len) = varint::decode_u64(buf).ok()?;
    let (len, len_len) = varint::decode_u64(&buf[seq_len..]).ok()?;
    let len = usize::try_from(len).ok()?;
    let header = seq_len + len_len + 4;
    let total = header.checked_add(len)?;
    if buf.len() < total {
        return None;
    }
    let crc_stored = u32::from_le_bytes(buf[seq_len + len_len..header].try_into().ok()?);
    let payload = &buf[header..total];
    let mut crc = Crc32::new();
    crc.update(&buf[..seq_len]);
    crc.update(payload);
    if crc.finish() != crc_stored {
        return None;
    }
    let text = String::from_utf8(payload.to_vec()).ok()?;
    Some((seq, text, total))
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            buf: Vec::new(),
            buffered: 0,
            stats: SyncStats::default(),
        })
    }

    /// Buffer one record. Nothing touches the disk until [`sync`].
    ///
    /// [`sync`]: Wal::sync
    pub fn append(&mut self, seq: u64, payload: &str) {
        encode_record(seq, payload.as_bytes(), &mut self.buf);
        self.buffered += 1;
    }

    /// Records sitting in the group-commit buffer.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Write the buffered batch and `fsync`. A no-op (no fsync) when
    /// the buffer is empty — the group-commit fast path for a follower
    /// whose records the leader already flushed.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        self.stats.syncs += 1;
        self.stats.records_synced += self.buffered;
        self.stats.bytes_synced += self.buf.len() as u64;
        self.stats.sync_micros += start.elapsed().as_micros() as u64;
        self.buf.clear();
        self.buffered = 0;
        Ok(())
    }

    /// Drop everything — buffered and durable — after a snapshot has
    /// made the log's contents redundant.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.buf.clear();
        self.buffered = 0;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the durable file to `len` bytes (used by recovery to
    /// cut a torn tail so new appends don't follow garbage).
    pub fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Cumulative sync accounting.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every intact record from the log at `path`. A missing file
    /// reads as an empty, untorn log.
    pub fn read(path: &Path) -> std::io::Result<WalReadOutcome> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            match decode_record(&bytes[pos..]) {
                Some((seq, payload, consumed)) => {
                    records.push((seq, payload));
                    pos += consumed;
                }
                None => break,
            }
        }
        Ok(WalReadOutcome {
            records,
            torn_bytes: (bytes.len() - pos) as u64,
            valid_len: pos as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_util::check::{check, Gen};
    use copycat_util::{prop_ensure, prop_ensure_eq};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copycat-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_read_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, r#"{"op":"ping"}"#);
        wal.append(2, "second record with unicode: café 😀");
        wal.sync().unwrap();
        wal.append(3, "");
        wal.sync().unwrap();
        let out = Wal::read(&path).unwrap();
        assert_eq!(out.torn_bytes, 0);
        assert_eq!(
            out.records,
            vec![
                (1, r#"{"op":"ping"}"#.to_string()),
                (2, "second record with unicode: café 😀".to_string()),
                (3, String::new()),
            ]
        );
        assert_eq!(wal.stats().syncs, 2);
        assert_eq!(wal.stats().records_synced, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_appends_are_not_durable() {
        let dir = temp_dir("volatile");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, "durable");
        wal.sync().unwrap();
        wal.append(2, "lost with the process");
        drop(wal); // crash: buffered batch never written
        let out = Wal::read(&path).unwrap();
        assert_eq!(out.records, vec![(1, "durable".to_string())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_sync_skips_the_fsync() {
        let dir = temp_dir("emptysync");
        let mut wal = Wal::open(&dir.join(WAL_FILE)).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = temp_dir("missing");
        let out = Wal::read(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(out.records, vec![]);
        assert_eq!(out.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prop_torn_tail_loses_only_the_tail() {
        check("wal_torn_tail", 60, &[], |g: &mut Gen| {
            let dir = temp_dir("torn");
            let path = dir.join(WAL_FILE);
            let mut wal = Wal::open(&path).unwrap();
            let payloads = g.vec_of(1..8, |g| {
                g.string_of("abcdefghij{}:\",", 0..40)
            });
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u64, p);
            }
            wal.sync().map_err(|e| e.to_string())?;
            drop(wal);
            let full = std::fs::read(&path).map_err(|e| e.to_string())?;
            // Cut the file at an arbitrary byte: a torn final write.
            let cut = g.usize_in(0..full.len() + 1);
            std::fs::write(&path, &full[..cut]).map_err(|e| e.to_string())?;
            let out = Wal::read(&path).map_err(|e| e.to_string())?;
            prop_ensure!(out.records.len() <= payloads.len());
            // Whatever survives is an exact prefix.
            for (i, (seq, p)) in out.records.iter().enumerate() {
                prop_ensure_eq!(*seq, i as u64);
                prop_ensure_eq!(p, &payloads[i]);
            }
            prop_ensure_eq!(out.valid_len + out.torn_bytes, cut as u64);
            // A full, uncut file loses nothing.
            if cut == full.len() {
                prop_ensure_eq!(out.records.len(), payloads.len());
                prop_ensure_eq!(out.torn_bytes, 0);
            }
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        });
    }

    #[test]
    fn prop_corrupt_byte_never_yields_a_wrong_record() {
        check("wal_corrupt_byte", 40, &[], |g: &mut Gen| {
            let dir = temp_dir("corrupt");
            let path = dir.join(WAL_FILE);
            let mut wal = Wal::open(&path).unwrap();
            let payloads: Vec<String> =
                (0..4).map(|i| format!("record-number-{i}-payload")).collect();
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u64, p);
            }
            wal.sync().map_err(|e| e.to_string())?;
            drop(wal);
            let mut bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
            let victim = g.usize_in(0..bytes.len());
            let flip = 1u8 << g.usize_in(0..8);
            bytes[victim] ^= flip;
            std::fs::write(&path, &bytes).map_err(|e| e.to_string())?;
            let out = Wal::read(&path).map_err(|e| e.to_string())?;
            // Every record that *does* decode must be a clean prefix —
            // corruption may cost records, never invent or alter them.
            for (i, (seq, p)) in out.records.iter().enumerate() {
                prop_ensure_eq!(*seq, i as u64);
                prop_ensure_eq!(p, &payloads[i]);
            }
            prop_ensure!(out.records.len() < payloads.len(), "flip undetected");
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        });
    }
}
