//! The append-only write-ahead log.
//!
//! On-disk format, per record:
//!
//! ```text
//! [seq: varint u64] [len: varint u64] [crc: 4 bytes LE] [payload: len bytes]
//! ```
//!
//! The CRC-32 covers the seq prefix *and* the payload, so a corrupted
//! header is as detectable as a corrupted body. Records carry their own
//! sequence number (assigned by the caller, monotonically) because the
//! log's lifetime is decoupled from the snapshot's: a crash after a
//! snapshot lands but before the log is compacted leaves records the
//! snapshot already covers, and recovery must be able to skip them.
//!
//! Appends go through a **group-commit buffer**: [`Wal::append`] only
//! encodes into memory, and [`Wal::sync`] writes the whole batch with
//! one `write` + one `fsync`. A caller that acknowledges after `sync`
//! gets classic WAL durability; a caller that batches N appends per
//! sync trades a bounded tail of acknowledged-but-volatile records for
//! an N-fold cut in fsyncs (the bench sweep measures exactly this).
//! When `sync` fails the batch stays buffered: a retry re-writes the
//! *whole* batch, and the duplicate-after-partial garbage that leaves
//! on disk is exactly what the resynchronizing reader below absorbs.
//!
//! Reading quarantines corruption instead of stopping at it. The
//! decoder walks records; when bytes fail to decode it scans forward
//! for the next record whose CRC verifies *and* whose sequence number
//! extends the monotonic run (random garbage passing a CRC-32 and
//! landing on the right seq is a ~2⁻³² event per offset). Interior
//! garbage — a bit-rotted record, a short write's stub, a retried
//! batch's partial duplicate — is skipped and counted as
//! `quarantined_bytes`; garbage with no decodable successor is the torn
//! tail. Either way the reader reports exactly what it discarded; it
//! never panics, never silently truncates, and never yields an invented
//! or altered record.
//!
//! All I/O goes through [`crate::io::Fs`], so the same code path runs
//! against the real filesystem and the fault-injecting simulation.

use crate::io::{Fs, StoreFile};
use copycat_util::checksum::Crc32;
use copycat_util::varint;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the log inside a session directory.
pub const WAL_FILE: &str = "wal.log";
/// Scratch name used when rewriting the log (compaction, quarantine
/// cleanup); installed over [`WAL_FILE`] by rename.
pub const WAL_TMP_FILE: &str = "wal.tmp";

/// Cumulative fsync accounting for one log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// `fsync` calls issued (empty-buffer syncs are skipped).
    pub syncs: u64,
    /// Records made durable across all syncs.
    pub records_synced: u64,
    /// Bytes made durable across all syncs.
    pub bytes_synced: u64,
    /// Total wall time spent in write+fsync, microseconds.
    pub sync_micros: u64,
}

/// What a full read of a log file found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReadOutcome {
    /// Every intact record, in append order (seq strictly increasing —
    /// duplicate seqs from retried batches are dropped).
    pub records: Vec<(u64, String)>,
    /// Bytes of torn/corrupt tail discarded (0 on a clean log).
    pub torn_bytes: u64,
    /// Interior bytes skipped to resynchronize past corruption
    /// (bit rot, short-write stubs, retried-batch duplicates).
    pub quarantined_bytes: u64,
    /// File offset where decodable content ends (`file len -
    /// torn_bytes`).
    pub valid_len: u64,
}

impl WalReadOutcome {
    /// Whether the log needs a cleanup rewrite before further appends
    /// (garbage anywhere means new records would follow it).
    pub fn dirty(&self) -> bool {
        self.torn_bytes > 0 || self.quarantined_bytes > 0
    }
}

/// An open, appendable log.
#[derive(Debug)]
pub struct Wal {
    fs: Fs,
    file: Box<dyn StoreFile>,
    path: PathBuf,
    /// Encoded-but-unwritten records: the group-commit buffer.
    buf: Vec<u8>,
    /// Records currently in `buf`.
    buffered: u64,
    stats: SyncStats,
}

fn encode_record(seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    let mut seq_bytes = Vec::with_capacity(varint::MAX_LEN);
    varint::encode_u64(seq, &mut seq_bytes);
    let mut crc = Crc32::new();
    crc.update(&seq_bytes);
    crc.update(payload);
    out.extend_from_slice(&seq_bytes);
    varint::encode_u64(payload.len() as u64, out);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode one record from `buf`, returning `(seq, payload, consumed)`,
/// or `None` when the bytes at the front are torn/corrupt/truncated.
fn decode_record(buf: &[u8]) -> Option<(u64, String, usize)> {
    let (seq, seq_len) = varint::decode_u64(buf).ok()?;
    let (len, len_len) = varint::decode_u64(&buf[seq_len..]).ok()?;
    let len = usize::try_from(len).ok()?;
    let header = seq_len + len_len + 4;
    let total = header.checked_add(len)?;
    if buf.len() < total {
        return None;
    }
    let crc_stored = u32::from_le_bytes(buf[seq_len + len_len..header].try_into().ok()?);
    let payload = &buf[header..total];
    let mut crc = Crc32::new();
    crc.update(&buf[..seq_len]);
    crc.update(payload);
    if crc.finish() != crc_stored {
        return None;
    }
    let text = String::from_utf8(payload.to_vec()).ok()?;
    Some((seq, text, total))
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    pub fn open(fs: &Fs, path: &Path) -> std::io::Result<Wal> {
        let file = fs.open_append(path)?;
        Ok(Wal {
            fs: fs.clone(),
            file,
            path: path.to_path_buf(),
            buf: Vec::new(),
            buffered: 0,
            stats: SyncStats::default(),
        })
    }

    /// Buffer one record. Nothing touches the disk until [`sync`].
    ///
    /// [`sync`]: Wal::sync
    pub fn append(&mut self, seq: u64, payload: &str) {
        encode_record(seq, payload.as_bytes(), &mut self.buf);
        self.buffered += 1;
    }

    /// Records sitting in the group-commit buffer.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Write the buffered batch and `fsync`. A no-op (no fsync) when
    /// the buffer is empty — the group-commit fast path for a follower
    /// whose records the leader already flushed.
    ///
    /// On error the batch stays buffered so the caller can retry; a
    /// retry re-writes the whole batch, and the resynchronizing reader
    /// tolerates the partial-then-duplicate bytes that can leave
    /// behind.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        self.stats.syncs += 1;
        self.stats.records_synced += self.buffered;
        self.stats.bytes_synced += self.buf.len() as u64;
        self.stats.sync_micros += start.elapsed().as_micros() as u64;
        self.buf.clear();
        self.buffered = 0;
        Ok(())
    }

    /// Truncate the durable file to `len` bytes (used by recovery to
    /// cut a torn tail so new appends don't follow garbage).
    pub fn truncate_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Atomically replace the log's contents with `records`, re-encoded
    /// clean, and reopen for appending. This is both the compaction
    /// primitive (drop records a fallback snapshot generation no longer
    /// needs) and the quarantine cleanup (rewrite a log whose interior
    /// held garbage). Crash-safe: the new image is written to
    /// [`WAL_TMP_FILE`], fsynced, renamed over [`WAL_FILE`], and the
    /// directory fsynced — at every instant the directory holds either
    /// the complete old log or the complete new one.
    ///
    /// The group-commit buffer must be empty (sync first); rewriting
    /// under unflushed appends would reorder durability.
    pub fn rewrite(&mut self, records: &[(u64, String)]) -> std::io::Result<()> {
        assert_eq!(self.buffered, 0, "rewrite with a non-empty group-commit buffer");
        let mut image = Vec::new();
        for (seq, payload) in records {
            encode_record(*seq, payload.as_bytes(), &mut image);
        }
        let dir = self
            .path
            .parent()
            .ok_or_else(|| std::io::Error::other("wal path has no parent directory"))?
            .to_path_buf();
        let tmp = dir.join(WAL_TMP_FILE);
        self.fs.write_sync(&tmp, &image)?;
        self.fs.rename(&tmp, &self.path)?;
        self.fs.sync_dir(&dir)?;
        // The old handle points at the replaced file; reopen on the
        // installed one so future appends land after the new image.
        self.file = self.fs.open_append(&self.path)?;
        Ok(())
    }

    /// Cumulative sync accounting.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durable size of the log in bytes (buffered appends excluded).
    pub fn file_len(&self) -> std::io::Result<u64> {
        self.fs.file_len(&self.path)
    }

    /// Read every intact record from the log at `path`, quarantining
    /// corruption (see module docs). A missing file reads as an empty,
    /// untorn log.
    pub fn read(fs: &Fs, path: &Path) -> std::io::Result<WalReadOutcome> {
        let bytes = match fs.read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut records: Vec<(u64, String)> = Vec::new();
        let mut quarantined_bytes = 0u64;
        let mut torn_bytes = 0u64;
        let mut pos = 0usize;
        let mut last_seq: Option<u64> = None;
        while pos < bytes.len() {
            // A record decodes *and* extends the monotonic seq run:
            // accept it. A decodable record with a stale seq is a
            // retried batch's duplicate: quarantine its bytes, keep
            // walking.
            if let Some((seq, payload, consumed)) = decode_record(&bytes[pos..]) {
                if last_seq.is_none_or(|l| seq > l) {
                    records.push((seq, payload));
                    last_seq = Some(seq);
                } else {
                    quarantined_bytes += consumed as u64;
                }
                pos += consumed;
                continue;
            }
            // Garbage at `pos`: resynchronize by scanning for the next
            // offset that decodes to a monotonic record.
            let mut next = None;
            for q in pos + 1..bytes.len() {
                if let Some((seq, _, _)) = decode_record(&bytes[q..]) {
                    if last_seq.is_none_or(|l| seq > l) {
                        next = Some(q);
                        break;
                    }
                }
            }
            match next {
                Some(q) => {
                    quarantined_bytes += (q - pos) as u64;
                    pos = q;
                }
                None => {
                    torn_bytes = (bytes.len() - pos) as u64;
                    break;
                }
            }
        }
        Ok(WalReadOutcome {
            records,
            torn_bytes,
            quarantined_bytes,
            valid_len: (bytes.len() as u64) - torn_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimFs;
    use copycat_util::check::{check, Gen};
    use copycat_util::{prop_ensure, prop_ensure_eq};
    use std::sync::Arc;

    fn sim() -> (Arc<SimFs>, Fs, PathBuf) {
        sim_seeded(0xA11CE)
    }

    fn sim_seeded(seed: u64) -> (Arc<SimFs>, Fs, PathBuf) {
        let sim = Arc::new(SimFs::new(seed));
        let fs = Fs::sim(Arc::clone(&sim));
        let dir = PathBuf::from("/wal-test");
        fs.create_dir_all(&dir).unwrap();
        (sim, fs, dir.join(WAL_FILE))
    }

    #[test]
    fn append_sync_read_round_trips() {
        let (_sim, fs, path) = sim();
        let mut wal = Wal::open(&fs, &path).unwrap();
        wal.append(1, r#"{"op":"ping"}"#);
        wal.append(2, "second record with unicode: café 😀");
        wal.sync().unwrap();
        wal.append(3, "");
        wal.sync().unwrap();
        let out = Wal::read(&fs, &path).unwrap();
        assert_eq!(out.torn_bytes, 0);
        assert_eq!(out.quarantined_bytes, 0);
        assert_eq!(
            out.records,
            vec![
                (1, r#"{"op":"ping"}"#.to_string()),
                (2, "second record with unicode: café 😀".to_string()),
                (3, String::new()),
            ]
        );
        assert_eq!(wal.stats().syncs, 2);
        assert_eq!(wal.stats().records_synced, 3);
    }

    #[test]
    fn unsynced_appends_are_not_durable() {
        let (sim, fs, path) = sim();
        let mut wal = Wal::open(&fs, &path).unwrap();
        wal.append(1, "durable");
        wal.sync().unwrap();
        wal.append(2, "lost with the process");
        drop(wal); // crash: buffered batch never written
        sim.crash();
        let out = Wal::read(&fs, &path).unwrap();
        assert_eq!(out.records, vec![(1, "durable".to_string())]);
    }

    #[test]
    fn empty_sync_skips_the_fsync() {
        let (_sim, fs, path) = sim();
        let mut wal = Wal::open(&fs, &path).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 0);
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let (_sim, fs, _path) = sim();
        let out = Wal::read(&fs, Path::new("/wal-test/nonexistent.log")).unwrap();
        assert_eq!(out.records, vec![]);
        assert_eq!(out.torn_bytes, 0);
    }

    #[test]
    fn failed_sync_retains_the_batch_and_a_retry_lands_it() {
        use crate::io::{FaultKind, FaultPlan};
        let sim = Arc::new(SimFs::with_faults(
            21,
            vec![FaultPlan { at_op: 1, kind: FaultKind::FailedFsync }],
        ));
        let fs = Fs::sim(Arc::clone(&sim));
        fs.create_dir_all(Path::new("/d")).unwrap();
        let path = Path::new("/d").join(WAL_FILE);
        let mut wal = Wal::open(&fs, &path).unwrap();
        wal.append(1, "first");
        wal.append(2, "second");
        assert!(wal.sync().is_err());
        assert_eq!(wal.buffered(), 2, "failed batch stays buffered");
        wal.sync().unwrap(); // retry: whole batch re-written + fsynced
        sim.crash();
        let out = Wal::read(&fs, &path).unwrap();
        // The retry duplicated the batch bytes; the reader quarantines
        // the duplicates and yields each record exactly once.
        assert_eq!(out.records, vec![(1, "first".into()), (2, "second".into())]);
        assert!(out.quarantined_bytes > 0 || out.torn_bytes > 0);
    }

    #[test]
    fn rewrite_compacts_and_appending_continues() {
        let (sim, fs, path) = sim();
        let mut wal = Wal::open(&fs, &path).unwrap();
        for i in 1..=6u64 {
            wal.append(i, &format!("rec-{i}"));
        }
        wal.sync().unwrap();
        let keep: Vec<(u64, String)> =
            (4..=6).map(|i| (i, format!("rec-{i}"))).collect();
        wal.rewrite(&keep).unwrap();
        wal.append(7, "rec-7");
        wal.sync().unwrap();
        sim.crash();
        let out = Wal::read(&fs, &path).unwrap();
        assert_eq!(
            out.records,
            (4..=7).map(|i| (i, format!("rec-{i}"))).collect::<Vec<_>>()
        );
        assert_eq!(out.torn_bytes, 0);
        assert!(!fs.exists(&path.with_file_name(WAL_TMP_FILE)));
    }

    #[test]
    fn prop_torn_tail_loses_only_the_tail() {
        check("wal_torn_tail", 60, &[], |g: &mut Gen| {
            let (_sim, fs, path) = sim_seeded(g.u64_in(0..u64::MAX));
            let mut wal = Wal::open(&fs, &path).unwrap();
            let payloads = g.vec_of(1..8, |g| {
                g.string_of("abcdefghij{}:\",", 0..40)
            });
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u64 + 1, p);
            }
            wal.sync().map_err(|e| e.to_string())?;
            drop(wal);
            let full = fs.read(&path).map_err(|e| e.to_string())?;
            // Cut the file at an arbitrary byte: a torn final write.
            let cut = g.usize_in(0..full.len() + 1);
            fs.write(&path, &full[..cut]).map_err(|e| e.to_string())?;
            let out = Wal::read(&fs, &path).map_err(|e| e.to_string())?;
            prop_ensure!(out.records.len() <= payloads.len());
            // Whatever survives is an exact prefix.
            for (i, (seq, p)) in out.records.iter().enumerate() {
                prop_ensure_eq!(*seq, i as u64 + 1);
                prop_ensure_eq!(p, &payloads[i]);
            }
            prop_ensure_eq!(out.valid_len + out.torn_bytes, cut as u64);
            // A full, uncut file loses nothing.
            if cut == full.len() {
                prop_ensure_eq!(out.records.len(), payloads.len());
                prop_ensure_eq!(out.torn_bytes, 0);
            }
            Ok(())
        });
    }

    #[test]
    fn prop_corrupt_byte_quarantines_exactly_the_hit_record() {
        check("wal_corrupt_byte", 40, &[], |g: &mut Gen| {
            let (_sim, fs, path) = sim_seeded(g.u64_in(0..u64::MAX));
            let mut wal = Wal::open(&fs, &path).unwrap();
            let payloads: Vec<String> =
                (0..4).map(|i| format!("record-number-{i}-payload")).collect();
            for (i, p) in payloads.iter().enumerate() {
                wal.append(i as u64 + 1, p);
            }
            wal.sync().map_err(|e| e.to_string())?;
            drop(wal);
            let mut bytes = fs.read(&path).map_err(|e| e.to_string())?;
            let victim = g.usize_in(0..bytes.len());
            let flip = 1u8 << g.usize_in(0..8);
            bytes[victim] ^= flip;
            fs.write(&path, &bytes).map_err(|e| e.to_string())?;
            let out = Wal::read(&fs, &path).map_err(|e| e.to_string())?;
            // The CRC covers seq + payload and the length varint shifts
            // the checksum window, so the record holding the flipped
            // byte is always detected and quarantined — and resync
            // recovers every record after it. Never invent or alter.
            for (seq, p) in &out.records {
                prop_ensure!(*seq >= 1 && *seq <= 4);
                prop_ensure_eq!(p, &payloads[*seq as usize - 1]);
            }
            prop_ensure_eq!(out.records.len(), payloads.len() - 1, "exactly one record lost");
            let seqs: Vec<u64> = out.records.iter().map(|(s, _)| *s).collect();
            prop_ensure!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs monotonic");
            prop_ensure!(out.quarantined_bytes > 0 || out.torn_bytes > 0);
            Ok(())
        });
    }

    #[test]
    fn interior_corruption_resyncs_to_later_records() {
        let (_sim, fs, path) = sim();
        let mut wal = Wal::open(&fs, &path).unwrap();
        for i in 1..=5u64 {
            wal.append(i, &format!("payload-for-record-{i}"));
        }
        wal.sync().unwrap();
        drop(wal);
        // Zero out a span inside record 2 — bit rot wider than a flip.
        let mut bytes = fs.read(&path).unwrap();
        let start = bytes.len() / 4;
        for b in &mut bytes[start..start + 8] {
            *b = 0;
        }
        fs.write(&path, &bytes).unwrap();
        let out = Wal::read(&fs, &path).unwrap();
        let seqs: Vec<u64> = out.records.iter().map(|(s, _)| *s).collect();
        assert!(seqs.contains(&5), "records after the rot are recovered: {seqs:?}");
        assert!(out.quarantined_bytes > 0);
        for (seq, p) in &out.records {
            assert_eq!(p, &format!("payload-for-record-{seq}"));
        }
    }
}
