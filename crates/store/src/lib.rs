//! Session durability for the serving layer.
//!
//! The line-delimited request protocol is already a replayable command
//! stream, and copycat-lint pins the engine deterministic — so crash
//! recovery can be *replay*: persist the acknowledged requests, and
//! rebuilding a session is re-running them. This crate owns the disk
//! half of that story:
//!
//! - [`wal`] — a per-session append-only log of request payloads.
//!   Records are LEB128 length-prefixed and CRC-32 checksummed
//!   ([`copycat_util::varint`], [`copycat_util::checksum`]), appended
//!   through a group-commit buffer so one `fsync` can cover a batch.
//!   Reading tolerates a torn tail: the machine dying mid-write costs
//!   at most the unacknowledged suffix.
//! - [`snapshot`] — an atomically-replaced (`tmp` + rename) checkpoint
//!   of the session, written so the WAL can be truncated instead of
//!   growing without bound.
//! - [`store`] — [`store::SessionStore`], the pairing of the two: an
//!   append/sync/snapshot API on the write side and a
//!   snapshot-plus-WAL-tail [`store::Recovery`] on the read side, with
//!   the sequence-number bookkeeping that makes a crash *between*
//!   snapshot and WAL truncation harmless (replay skips records the
//!   snapshot already covers).
//!
//! The crate is payload-agnostic: callers log UTF-8 lines (protocol
//! requests) and snapshot opaque strings. What those strings mean —
//! and the proof that replaying them reproduces the pre-crash session
//! byte-for-byte — lives in copycat-serve's durable layer and its
//! kill-and-recover property test.

pub mod io;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use io::{FaultKind, FaultPlan, Fs, RealFs, SimFs, StoreFile, StoreFs};
pub use snapshot::Snapshot;
pub use store::{Recovery, RecoveryReport, SessionStore, StoreStats};
pub use wal::{SyncStats, Wal, WalReadOutcome};
