//! [`SessionStore`]: one session's durable state — a snapshot plus the
//! WAL tail behind it — with the sequencing that ties the two files
//! together.
//!
//! Write path: [`append`](SessionStore::append) assigns the next
//! sequence number and buffers the record,
//! [`sync`](SessionStore::sync) group-commits the batch, and
//! [`snapshot`](SessionStore::snapshot) checkpoints everything up to
//! the last appended record and truncates the log.
//!
//! Read path: [`SessionStore::recover`] loads the snapshot (if any),
//! replays the log, *skips* records the snapshot already covers (a
//! crash can land between snapshot install and log truncation),
//! truncates any torn tail, and hands back a store positioned to
//! continue appending exactly where the crash left off.

use crate::snapshot::{self, Snapshot};
use crate::wal::{SyncStats, Wal, WAL_FILE};
use std::path::{Path, PathBuf};

/// Observable accounting for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended over this store's lifetime (not the on-disk
    /// count — snapshots truncate the log).
    pub appends: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// WAL fsync accounting.
    pub sync: SyncStats,
}

/// What [`SessionStore::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The snapshot payload, when one was installed.
    pub snapshot: Option<String>,
    /// WAL records after the snapshot, in append order.
    pub tail: Vec<String>,
    /// Bytes of torn WAL tail discarded (0 on a clean shutdown).
    pub torn_bytes: u64,
    /// WAL records skipped because the snapshot already covered them
    /// (non-zero only after a crash between snapshot and truncation).
    pub already_snapshotted: u64,
}

/// One session's durable snapshot + WAL pair.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    wal: Wal,
    /// Sequence number of the last appended record (0 = none yet).
    seq: u64,
    /// Sequence number the current snapshot covers (0 = no snapshot).
    snapshot_seq: u64,
    appends: u64,
    snapshots: u64,
}

impl SessionStore {
    /// Open a fresh store in `dir` (created if needed). Fails if the
    /// directory already holds session state — use
    /// [`recover`](SessionStore::recover) for that.
    pub fn create(dir: &Path) -> std::io::Result<SessionStore> {
        std::fs::create_dir_all(dir)?;
        if dir.join(snapshot::SNAPSHOT_FILE).exists()
            || std::fs::metadata(dir.join(WAL_FILE)).map(|m| m.len() > 0).unwrap_or(false)
        {
            return Err(std::io::Error::other(format!(
                "session store at {} already has state; recover it instead",
                dir.display()
            )));
        }
        let wal = Wal::open(&dir.join(WAL_FILE))?;
        Ok(SessionStore {
            dir: dir.to_path_buf(),
            wal,
            seq: 0,
            snapshot_seq: 0,
            appends: 0,
            snapshots: 0,
        })
    }

    /// Buffer one record, returning its assigned sequence number. Not
    /// durable until [`sync`](SessionStore::sync) returns.
    pub fn append(&mut self, payload: &str) -> u64 {
        self.seq += 1;
        self.appends += 1;
        self.wal.append(self.seq, payload);
        self.seq
    }

    /// Group-commit everything appended so far.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Records appended since the last snapshot (the compaction
    /// trigger the durable layer polls).
    pub fn records_since_snapshot(&self) -> u64 {
        self.seq - self.snapshot_seq
    }

    /// Install `payload` as the checkpoint covering every record
    /// appended so far, then truncate the log. Unsynced appends are
    /// flushed first so a crash mid-snapshot still recovers them from
    /// the old log.
    pub fn snapshot(&mut self, payload: &str) -> std::io::Result<()> {
        self.wal.sync()?;
        snapshot::write(&self.dir, &Snapshot { seq: self.seq, payload: payload.to_string() })?;
        self.wal.reset()?;
        self.snapshot_seq = self.seq;
        self.snapshots += 1;
        Ok(())
    }

    /// Rebuild from whatever `dir` holds. Returns the store (ready to
    /// append) and what was found.
    pub fn recover(dir: &Path) -> std::io::Result<(SessionStore, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let snap = snapshot::read(dir)?;
        let snapshot_seq = snap.as_ref().map_or(0, |s| s.seq);
        let read = Wal::read(&dir.join(WAL_FILE))?;
        let mut wal = Wal::open(&dir.join(WAL_FILE))?;
        if read.torn_bytes > 0 {
            wal.truncate_to(read.valid_len)?;
        }
        let total = read.records.len() as u64;
        let tail: Vec<String> = read
            .records
            .into_iter()
            .filter(|(seq, _)| *seq > snapshot_seq)
            .map(|(_, payload)| payload)
            .collect();
        let already_snapshotted = total - tail.len() as u64;
        let seq = snapshot_seq + tail.len() as u64;
        let recovery = Recovery {
            snapshot: snap.map(|s| s.payload),
            tail,
            torn_bytes: read.torn_bytes,
            already_snapshotted,
        };
        Ok((
            SessionStore {
                dir: dir.to_path_buf(),
                wal,
                seq,
                snapshot_seq,
                appends: 0,
                snapshots: 0,
            },
            recovery,
        ))
    }

    /// Remove the session's directory and everything in it (a durably
    /// *closed* session, as opposed to a crashed one).
    pub fn destroy(dir: &Path) -> std::io::Result<()> {
        match std::fs::remove_dir_all(dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> StoreStats {
        StoreStats { appends: self.appends, snapshots: self.snapshots, sync: self.wal.stats() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copycat_util::check::{check, Gen};
    use copycat_util::{prop_ensure, prop_ensure_eq};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copycat-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recover_replays_snapshot_plus_tail() {
        let dir = temp_dir("snaptail");
        let mut s = SessionStore::create(&dir).unwrap();
        s.append("a");
        s.append("b");
        s.snapshot("SNAP[a,b]").unwrap();
        s.append("c");
        s.append("d");
        s.sync().unwrap();
        drop(s);
        let (recovered, r) = SessionStore::recover(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some("SNAP[a,b]"));
        assert_eq!(r.tail, vec!["c".to_string(), "d".to_string()]);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.already_snapshotted, 0);
        // Appending continues past the crash point.
        assert_eq!(recovered.records_since_snapshot(), 2);
        let _ = SessionStore::destroy(&dir);
    }

    #[test]
    fn crash_between_snapshot_and_truncate_skips_covered_records() {
        let dir = temp_dir("skipcovered");
        let mut s = SessionStore::create(&dir).unwrap();
        s.append("a");
        s.append("b");
        s.sync().unwrap();
        // A snapshot that covers both records, installed *without* the
        // log truncation that normally follows (the crash window).
        snapshot::write(&dir, &Snapshot { seq: 2, payload: "SNAP[a,b]".into() }).unwrap();
        drop(s);
        let (_, r) = SessionStore::recover(&dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some("SNAP[a,b]"));
        assert_eq!(r.tail, Vec::<String>::new());
        assert_eq!(r.already_snapshotted, 2);
        let _ = SessionStore::destroy(&dir);
    }

    #[test]
    fn create_refuses_a_dirty_directory() {
        let dir = temp_dir("dirty");
        let mut s = SessionStore::create(&dir).unwrap();
        s.append("a");
        s.sync().unwrap();
        drop(s);
        assert!(SessionStore::create(&dir).is_err());
        let _ = SessionStore::destroy(&dir);
        // Destroyed = clean slate.
        assert!(SessionStore::create(&dir).is_ok());
        let _ = SessionStore::destroy(&dir);
    }

    #[test]
    fn destroy_is_idempotent() {
        let dir = temp_dir("destroy");
        SessionStore::destroy(&dir).unwrap();
        let _ = SessionStore::create(&dir).unwrap();
        SessionStore::destroy(&dir).unwrap();
        SessionStore::destroy(&dir).unwrap();
        assert!(!dir.exists());
    }

    /// The seeded kill-and-recover property at the store level: a
    /// random interleaving of appends, syncs, snapshots and a crash at
    /// an arbitrary point recovers exactly the synced history — the
    /// snapshot payload plus tail always reconstructs a prefix of the
    /// appended sequence no shorter than the last synced point, with
    /// nothing reordered, altered, or invented.
    #[test]
    fn prop_kill_and_recover_preserves_synced_history() {
        check("store_kill_recover", 80, &[], |g: &mut Gen| {
            let dir = temp_dir("prop");
            let mut s = SessionStore::create(&dir).map_err(|e| e.to_string())?;
            let mut appended: Vec<String> = Vec::new();
            // What a snapshot covers, by count, at snapshot time.
            let mut snapshot_upto = 0usize;
            let mut synced_upto = 0usize;
            let steps = g.usize_in(1..25);
            for i in 0..steps {
                match g.usize_in(0..10) {
                    0..=5 => {
                        let line = format!("req-{i}-{}", g.string_of("xyz01", 0..12));
                        s.append(&line);
                        appended.push(line);
                    }
                    6 | 7 => {
                        s.sync().map_err(|e| e.to_string())?;
                        synced_upto = appended.len();
                    }
                    _ => {
                        // Snapshot payload encodes the full history so
                        // the test can reconstruct it on recovery.
                        let payload = appended.join("\n");
                        s.snapshot(&payload).map_err(|e| e.to_string())?;
                        snapshot_upto = appended.len();
                        synced_upto = appended.len();
                    }
                }
            }
            drop(s); // crash: unsynced group-commit buffer is lost
            let (_, r) = SessionStore::recover(&dir).map_err(|e| e.to_string())?;
            let mut rebuilt: Vec<String> = match &r.snapshot {
                None => Vec::new(),
                Some(p) if p.is_empty() => Vec::new(),
                Some(p) => p.split('\n').map(str::to_string).collect(),
            };
            if r.snapshot.is_some() {
                prop_ensure_eq!(rebuilt.len(), snapshot_upto);
            }
            rebuilt.extend(r.tail.iter().cloned());
            // Everything acknowledged (synced) survives; nothing past
            // the append history appears; order and bytes are exact.
            prop_ensure!(
                rebuilt.len() >= synced_upto,
                "lost synced records: {} < {synced_upto}",
                rebuilt.len()
            );
            prop_ensure!(rebuilt.len() <= appended.len());
            prop_ensure_eq!(rebuilt[..], appended[..rebuilt.len()]);
            prop_ensure_eq!(r.torn_bytes, 0);
            let _ = SessionStore::destroy(&dir);
            Ok(())
        });
    }
}
