//! [`SessionStore`]: one session's durable state — generational
//! snapshots plus the WAL tail behind them — with the sequencing that
//! ties the files together.
//!
//! Write path: [`append`](SessionStore::append) assigns the next
//! sequence number and buffers the record,
//! [`sync`](SessionStore::sync) group-commits the batch, and
//! [`snapshot`](SessionStore::snapshot) installs the next snapshot
//! generation and *compacts* the log: every record at or before the
//! **previous** generation's seq is dropped (write-temp-rename, so a
//! crash at any cut point leaves a complete log). Keeping one
//! generation's worth of extra records is what makes snapshot fallback
//! sound — if the newest generation is corrupt, the previous one plus
//! the longer retained tail still reconstructs the full session.
//!
//! Read path: [`SessionStore::recover`] walks snapshot generations
//! newest-first (skipping corrupt ones), replays the log with
//! corruption quarantine, skips records the chosen snapshot already
//! covers, and reports everything it discarded in a typed
//! [`RecoveryReport`] — lost interior sequence numbers are *listed*,
//! never silently absent. Corrupt snapshot files and WAL garbage are
//! cleaned out of the directory so the next crash starts from a
//! verified-good state.

use crate::io::Fs;
use crate::snapshot::{self, Snapshot};
use crate::wal::{SyncStats, Wal, WAL_FILE};
use std::path::{Path, PathBuf};

/// Observable accounting for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended over this store's lifetime (not the on-disk
    /// count — snapshots compact the log).
    pub appends: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// WAL fsync accounting.
    pub sync: SyncStats,
}

/// Typed loss accounting for one recovery. Every byte the recovery
/// discarded is attributed here; "recovered cleanly" and "recovered
/// with explicit, enumerated loss" are the only two outcomes — silent
/// truncation is not one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Bytes of torn WAL tail discarded (0 on a clean shutdown).
    pub torn_tail_bytes: u64,
    /// Sequence numbers lost to interior WAL corruption: they fall
    /// between the snapshot and the newest surviving record but no
    /// intact copy exists. Empty on a healthy log.
    pub quarantined: Vec<u64>,
    /// Interior WAL bytes skipped to resynchronize past corruption.
    pub quarantined_bytes: u64,
    /// WAL records skipped because the snapshot already covered them
    /// (the crash-between-snapshot-and-compaction window, plus the
    /// fallback cushion generational retention keeps on purpose).
    pub already_snapshotted: u64,
    /// Generation number of the snapshot recovered from (0 = none).
    pub snapshot_generation: u64,
    /// Newer snapshot generations skipped as corrupt.
    pub generations_skipped: u64,
    /// Highest sequence number the recovered state covers. Acked
    /// records beyond this were lost with the tail (and are countable
    /// by the caller, who knows what it acked).
    pub last_seq: u64,
}

impl RecoveryReport {
    /// Whether recovery had to discard anything at all.
    pub fn lossless(&self) -> bool {
        self.torn_tail_bytes == 0
            && self.quarantined.is_empty()
            && self.quarantined_bytes == 0
            && self.generations_skipped == 0
    }
}

/// What [`SessionStore::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The snapshot payload, when one was recovered.
    pub snapshot: Option<String>,
    /// WAL records after the snapshot, in append order.
    pub tail: Vec<String>,
    /// Loss accounting for this recovery.
    pub report: RecoveryReport,
}

/// One session's durable snapshot + WAL pair.
#[derive(Debug)]
pub struct SessionStore {
    fs: Fs,
    dir: PathBuf,
    wal: Wal,
    /// Sequence number of the last appended record (0 = none yet).
    seq: u64,
    /// Sequence number the current snapshot covers (0 = no snapshot).
    snapshot_seq: u64,
    /// Newest installed snapshot generation (0 = none).
    generation: u64,
    /// `wal.stats().bytes_synced` as of the last snapshot — the zero
    /// point for [`wal_bytes_since_snapshot`](Self::wal_bytes_since_snapshot).
    synced_at_snapshot: u64,
    appends: u64,
    snapshots: u64,
}

impl SessionStore {
    /// Open a fresh store in `dir` (created if needed). Fails if the
    /// directory already holds session state — use
    /// [`recover`](SessionStore::recover) for that.
    pub fn create(fs: &Fs, dir: &Path) -> std::io::Result<SessionStore> {
        fs.create_dir_all(dir)?;
        let has_snapshot = !snapshot::list_generations(fs, dir)?.is_empty();
        let has_wal = fs.file_len(&dir.join(WAL_FILE)).map(|l| l > 0).unwrap_or(false);
        if has_snapshot || has_wal {
            return Err(std::io::Error::other(format!(
                "session store at {} already has state; recover it instead",
                dir.display()
            )));
        }
        let wal = Wal::open(fs, &dir.join(WAL_FILE))?;
        Ok(SessionStore {
            fs: fs.clone(),
            dir: dir.to_path_buf(),
            wal,
            seq: 0,
            snapshot_seq: 0,
            generation: 0,
            synced_at_snapshot: 0,
            appends: 0,
            snapshots: 0,
        })
    }

    /// Buffer one record, returning its assigned sequence number. Not
    /// durable until [`sync`](SessionStore::sync) returns.
    pub fn append(&mut self, payload: &str) -> u64 {
        self.seq += 1;
        self.appends += 1;
        self.wal.append(self.seq, payload);
        self.seq
    }

    /// Group-commit everything appended so far.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Records appended since the last snapshot (one compaction
    /// trigger the durable layer polls).
    pub fn records_since_snapshot(&self) -> u64 {
        self.seq - self.snapshot_seq
    }

    /// Durable WAL size in bytes (test/bench introspection; costs a
    /// stat).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.file_len().unwrap_or(0)
    }

    /// Bytes group-committed to the WAL since the last snapshot — the
    /// compaction trigger that bounds log growth even when individual
    /// records are huge. Pure arithmetic on sync accounting: no
    /// syscall on the journaling hot path.
    pub fn wal_bytes_since_snapshot(&self) -> u64 {
        self.wal.stats().bytes_synced - self.synced_at_snapshot
    }

    /// Install `payload` as the next snapshot generation covering every
    /// record appended so far, then compact the log down to the records
    /// the *previous* generation doesn't cover (its fallback cushion).
    /// Unsynced appends are flushed first so a crash mid-snapshot still
    /// recovers them from the old log; every subsequent cut point is a
    /// complete-old-or-complete-new rename.
    pub fn snapshot(&mut self, payload: &str) -> std::io::Result<()> {
        self.wal.sync()?;
        // The outgoing snapshot becomes the fallback generation; its
        // seq is the new compaction floor.
        let fallback_floor = self.snapshot_seq;
        let generation = self.generation + 1;
        snapshot::write(
            &self.fs,
            &self.dir,
            &Snapshot { seq: self.seq, payload: payload.to_string() },
            generation,
        )?;
        self.generation = generation;
        self.snapshot_seq = self.seq;
        self.snapshots += 1;
        self.synced_at_snapshot = self.wal.stats().bytes_synced;
        // Compact: drop records the fallback generation already covers.
        // A crash before (or during) the rewrite leaves extra records
        // that recovery skips as `already_snapshotted`.
        let on_disk = Wal::read(&self.fs, self.wal.path())?;
        let retained: Vec<(u64, String)> = on_disk
            .records
            .into_iter()
            .filter(|(seq, _)| *seq > fallback_floor)
            .collect();
        // Rewrite only from a read proven whole: every record the
        // fallback generation doesn't cover must be present. A short
        // or corrupted read here must not launder acked records out of
        // the log — skipping compaction just defers it; the on-disk
        // bytes stay authoritative for recovery's quarantine
        // accounting.
        let contiguous = retained.len() as u64 == self.seq - fallback_floor
            && retained.iter().zip(fallback_floor + 1..).all(|((s, _), want)| *s == want);
        if contiguous {
            self.wal.rewrite(&retained)?;
        }
        Ok(())
    }

    /// Rebuild from whatever `dir` holds. Returns the store (ready to
    /// append) and what was found — including a typed report of
    /// anything that had to be discarded. Corrupt snapshot generations
    /// and WAL garbage are removed from the directory on the way out.
    pub fn recover(fs: &Fs, dir: &Path) -> std::io::Result<(SessionStore, Recovery)> {
        fs.create_dir_all(dir)?;
        let snaps = snapshot::read_best(fs, dir)?;
        let snapshot_seq = snaps.snapshot.as_ref().map_or(0, |s| s.seq);
        let read = Wal::read(fs, &dir.join(WAL_FILE))?;

        // Interior losses are enumerable because seqs are assigned
        // contiguously: any seq between the snapshot and the newest
        // surviving record that has no intact copy was quarantined.
        // Surviving seqs are strictly increasing, so one linear walk
        // lists every gap.
        let last_seq = read.records.last().map_or(0, |(s, _)| *s).max(snapshot_seq);
        let mut quarantined: Vec<u64> = Vec::new();
        let mut expect = snapshot_seq + 1;
        for &(s, _) in read.records.iter().filter(|(s, _)| *s > snapshot_seq) {
            quarantined.extend(expect..s);
            expect = s + 1;
        }

        let mut wal = Wal::open(fs, &dir.join(WAL_FILE))?;
        if read.dirty() {
            // Rewrite the log clean (every intact record, garbage
            // excised) so future appends never follow junk. Keep even
            // already-covered records: they are the next fallback
            // cushion.
            wal.rewrite(&read.records)?;
        }
        // Quarantine corrupt snapshot generations off the retention
        // ladder; read_best already chose the newest good one.
        for path in &snaps.corrupt {
            let _ = fs.remove_file(path);
        }

        let total = read.records.len() as u64;
        let tail: Vec<String> = read
            .records
            .into_iter()
            .filter(|(seq, _)| *seq > snapshot_seq)
            .map(|(_, payload)| payload)
            .collect();
        let already_snapshotted = total - tail.len() as u64;
        let report = RecoveryReport {
            records_replayed: tail.len() as u64,
            torn_tail_bytes: read.torn_bytes,
            quarantined,
            quarantined_bytes: read.quarantined_bytes,
            already_snapshotted,
            snapshot_generation: snaps.generation,
            generations_skipped: snaps.skipped,
            last_seq,
        };
        let recovery = Recovery {
            snapshot: snaps.snapshot.map(|s| s.payload),
            tail,
            report,
        };
        Ok((
            SessionStore {
                fs: fs.clone(),
                dir: dir.to_path_buf(),
                wal,
                seq: last_seq,
                snapshot_seq,
                generation: snaps.generation,
                synced_at_snapshot: 0,
                appends: 0,
                snapshots: 0,
            },
            recovery,
        ))
    }

    /// Remove the session's directory and everything in it (a durably
    /// *closed* session, as opposed to a crashed one).
    pub fn destroy(fs: &Fs, dir: &Path) -> std::io::Result<()> {
        match fs.remove_dir_all(dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> StoreStats {
        StoreStats { appends: self.appends, snapshots: self.snapshots, sync: self.wal.stats() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimFs;
    use copycat_util::check::{check, Gen};
    use copycat_util::{prop_ensure, prop_ensure_eq};
    use std::sync::Arc;

    fn sim() -> (Arc<SimFs>, Fs, PathBuf) {
        sim_seeded(0xD1CE)
    }

    fn sim_seeded(seed: u64) -> (Arc<SimFs>, Fs, PathBuf) {
        let sim = Arc::new(SimFs::new(seed));
        let fs = Fs::sim(Arc::clone(&sim));
        (sim, fs, PathBuf::from("/store-test"))
    }

    #[test]
    fn recover_replays_snapshot_plus_tail() {
        let (_sim, fs, dir) = sim();
        let mut s = SessionStore::create(&fs, &dir).unwrap();
        s.append("a");
        s.append("b");
        s.snapshot("SNAP[a,b]").unwrap();
        s.append("c");
        s.append("d");
        s.sync().unwrap();
        drop(s);
        let (recovered, r) = SessionStore::recover(&fs, &dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some("SNAP[a,b]"));
        assert_eq!(r.tail, vec!["c".to_string(), "d".to_string()]);
        assert!(r.report.lossless());
        assert_eq!(r.report.records_replayed, 2);
        assert_eq!(r.report.snapshot_generation, 1);
        assert_eq!(r.report.last_seq, 4);
        // The first snapshot has no fallback generation below it, so
        // compaction dropped nothing: both covered records remain.
        assert_eq!(r.report.already_snapshotted, 2);
        // Appending continues past the crash point.
        assert_eq!(recovered.records_since_snapshot(), 2);
    }

    #[test]
    fn compaction_drops_only_what_the_fallback_generation_covers() {
        let (_sim, fs, dir) = sim();
        let mut s = SessionStore::create(&fs, &dir).unwrap();
        s.append("a");
        s.append("b");
        s.snapshot("SNAP1[a,b]").unwrap(); // gen 1, floor 0: keeps 1,2
        s.append("c");
        s.snapshot("SNAP2[a,b,c]").unwrap(); // gen 2, floor 2: keeps 3
        s.append("d");
        s.sync().unwrap();
        drop(s);
        let out = Wal::read(&fs, &dir.join(WAL_FILE)).unwrap();
        let seqs: Vec<u64> = out.records.iter().map(|(q, _)| *q).collect();
        assert_eq!(seqs, vec![3, 4], "records ≤ gen-1 seq compacted away");
        let (_, r) = SessionStore::recover(&fs, &dir).unwrap();
        assert_eq!(r.snapshot.as_deref(), Some("SNAP2[a,b,c]"));
        assert_eq!(r.tail, vec!["d".to_string()]);
        assert_eq!(r.report.already_snapshotted, 1); // seq 3, gen-2 cushion
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_a_generation() {
        let (sim, fs, dir) = sim();
        let mut s = SessionStore::create(&fs, &dir).unwrap();
        s.append("a");
        s.append("b");
        s.snapshot("SNAP1[a,b]").unwrap();
        s.append("c");
        s.snapshot("SNAP2[a,b,c]").unwrap();
        s.append("d");
        s.sync().unwrap();
        drop(s);
        assert!(sim.corrupt_file(&dir.join(snapshot::generation_file(2))));
        let (_, r) = SessionStore::recover(&fs, &dir).unwrap();
        // Fallback: gen 1 + the longer retained tail reconstructs all.
        assert_eq!(r.snapshot.as_deref(), Some("SNAP1[a,b]"));
        assert_eq!(r.tail, vec!["c".to_string(), "d".to_string()]);
        assert_eq!(r.report.generations_skipped, 1);
        assert_eq!(r.report.snapshot_generation, 1);
        assert!(r.report.quarantined.is_empty(), "no data loss on fallback");
        assert_eq!(r.report.last_seq, 4);
        // The corrupt file was quarantined off the retention ladder.
        assert!(!fs.exists(&dir.join(snapshot::generation_file(2))));
    }

    #[test]
    fn interior_wal_rot_is_reported_as_quarantined_seqs() {
        let (_sim, fs, dir) = sim();
        let mut s = SessionStore::create(&fs, &dir).unwrap();
        for i in 1..=5 {
            s.append(&format!("payload-number-{i}"));
        }
        s.sync().unwrap();
        drop(s);
        // Zero a span inside record 2.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = fs.read(&wal_path).unwrap();
        let start = bytes.len() / 4;
        for b in &mut bytes[start..start + 6] {
            *b = 0xFF;
        }
        fs.write(&wal_path, &bytes).unwrap();
        let (_, r) = SessionStore::recover(&fs, &dir).unwrap();
        assert!(!r.report.lossless());
        assert!(!r.report.quarantined.is_empty(), "lost seqs are listed");
        assert!(r.report.quarantined_bytes > 0);
        // Records after the rot were resynced and replayed.
        assert!(r.tail.iter().any(|p| p == "payload-number-5"));
        // The rewritten log is clean: a second recovery is lossless
        // (the quarantined seqs are gone for good, and say so once).
        let (_, r2) = SessionStore::recover(&fs, &dir).unwrap();
        assert_eq!(r2.report.quarantined_bytes, 0);
        assert_eq!(r2.report.torn_tail_bytes, 0);
        assert_eq!(r2.tail, r.tail);
    }

    #[test]
    fn create_refuses_a_dirty_directory() {
        let (_sim, fs, dir) = sim();
        let mut s = SessionStore::create(&fs, &dir).unwrap();
        s.append("a");
        s.sync().unwrap();
        drop(s);
        assert!(SessionStore::create(&fs, &dir).is_err());
        SessionStore::destroy(&fs, &dir).unwrap();
        // Destroyed = clean slate.
        assert!(SessionStore::create(&fs, &dir).is_ok());
    }

    #[test]
    fn destroy_is_idempotent() {
        let (_sim, fs, dir) = sim();
        SessionStore::destroy(&fs, &dir).unwrap();
        let _ = SessionStore::create(&fs, &dir).unwrap();
        SessionStore::destroy(&fs, &dir).unwrap();
        SessionStore::destroy(&fs, &dir).unwrap();
        assert!(!fs.exists(&dir));
    }

    /// The seeded kill-and-recover property at the store level: a
    /// random interleaving of appends, syncs, snapshots and a crash at
    /// an arbitrary point recovers exactly the synced history — the
    /// snapshot payload plus tail always reconstructs a prefix of the
    /// appended sequence no shorter than the last synced point, with
    /// nothing reordered, altered, or invented.
    #[test]
    fn prop_kill_and_recover_preserves_synced_history() {
        check("store_kill_recover", 80, &[], |g: &mut Gen| {
            let (sim, fs, dir) = sim_seeded(g.u64_in(0..u64::MAX));
            let mut s = SessionStore::create(&fs, &dir).map_err(|e| e.to_string())?;
            let mut appended: Vec<String> = Vec::new();
            // What a snapshot covers, by count, at snapshot time.
            let mut snapshot_upto = 0usize;
            let mut synced_upto = 0usize;
            let steps = g.usize_in(1..25);
            for i in 0..steps {
                match g.usize_in(0..10) {
                    0..=5 => {
                        let line = format!("req-{i}-{}", g.string_of("xyz01", 0..12));
                        s.append(&line);
                        appended.push(line);
                    }
                    6 | 7 => {
                        s.sync().map_err(|e| e.to_string())?;
                        synced_upto = appended.len();
                    }
                    _ => {
                        // Snapshot payload encodes the full history so
                        // the test can reconstruct it on recovery.
                        let payload = appended.join("\n");
                        s.snapshot(&payload).map_err(|e| e.to_string())?;
                        snapshot_upto = appended.len();
                        synced_upto = appended.len();
                    }
                }
            }
            drop(s); // crash: unsynced group-commit buffer is lost
            sim.crash();
            let (_, r) = SessionStore::recover(&fs, &dir).map_err(|e| e.to_string())?;
            let mut rebuilt: Vec<String> = match &r.snapshot {
                None => Vec::new(),
                Some(p) if p.is_empty() => Vec::new(),
                Some(p) => p.split('\n').map(str::to_string).collect(),
            };
            if r.snapshot.is_some() {
                prop_ensure_eq!(rebuilt.len(), snapshot_upto);
            }
            rebuilt.extend(r.tail.iter().cloned());
            // Everything acknowledged (synced) survives; nothing past
            // the append history appears; order and bytes are exact.
            prop_ensure!(
                rebuilt.len() >= synced_upto,
                "lost synced records: {} < {synced_upto}",
                rebuilt.len()
            );
            prop_ensure!(rebuilt.len() <= appended.len());
            prop_ensure_eq!(rebuilt[..], appended[..rebuilt.len()]);
            prop_ensure!(r.report.quarantined.is_empty(), "no faults, no quarantine");
            prop_ensure_eq!(r.report.generations_skipped, 0);
            Ok(())
        });
    }
}
