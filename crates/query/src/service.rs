//! Callable services with input binding restrictions.
//!
//! §4: "Services can be modeled as relations that take input parameters
//! (i.e., to use the normal data integration terminology, they have input
//! binding restrictions). Predefined services include record-linking
//! functions, address resolution, geocoding, and currency and unit
//! conversion."

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Why a service call did not produce a complete answer — the three
/// failure modes §3.2 names when motivating replacement sources: a
/// source that "is down, too slow, or does not provide a complete set
/// of results". Typed so callers can distinguish them from a
/// legitimately empty answer (a resolver that simply has no match).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The source is down: no answer at all.
    Unavailable {
        /// The failing service.
        service: String,
    },
    /// The source answered, but only after exceeding its latency
    /// budget; the answer is discarded and the (virtual) time charged.
    TooSlow {
        /// The failing service.
        service: String,
        /// Virtual latency charged before giving up (ms).
        latency_ms: u64,
    },
    /// The source answered with a truncated result set.
    Incomplete {
        /// The failing service.
        service: String,
        /// The rows it did return (callers may keep them, degraded).
        partial: Vec<Vec<Value>>,
    },
}

impl ServiceError {
    /// The failing service's name.
    pub fn service(&self) -> &str {
        match self {
            ServiceError::Unavailable { service }
            | ServiceError::TooSlow { service, .. }
            | ServiceError::Incomplete { service, .. } => service,
        }
    }

    /// A closed kind name (`unavailable` / `too_slow` / `incomplete`)
    /// for wire protocols and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Unavailable { .. } => "unavailable",
            ServiceError::TooSlow { .. } => "too_slow",
            ServiceError::Incomplete { .. } => "incomplete",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Unavailable { service } => write!(f, "service '{service}' unavailable"),
            ServiceError::TooSlow { service, latency_ms } => {
                write!(f, "service '{service}' too slow ({latency_ms}ms virtual)")
            }
            ServiceError::Incomplete { service, partial } => write!(
                f,
                "service '{service}' returned an incomplete answer ({} rows)",
                partial.len()
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The result of one typed service invocation: complete answers, or a
/// [`ServiceError`] naming the failure mode.
pub type CallOutcome = Result<Vec<Vec<Value>>, ServiceError>;

/// The binding signature of a service: which columns must be bound
/// (inputs) and which it produces (outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Required input columns.
    pub inputs: Schema,
    /// Produced output columns.
    pub outputs: Schema,
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.inputs, self.outputs)
    }
}

/// A callable external source. Implementations live in `copycat-services`
/// (simulated geocoders etc.); the engine only sees this trait.
pub trait Service: Send + Sync {
    /// Unique service name (catalog key; also the provenance relation
    /// name for its answers).
    fn name(&self) -> &str;

    /// Binding signature.
    fn signature(&self) -> &Signature;

    /// Invoke with one bound input tuple. May return zero answers (no
    /// match), one, or several ("in some cases the shelter name may be
    /// ambiguous and might return multiple answers", Example 1).
    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>>;

    /// Typed invocation: like [`Service::call`] but failures are
    /// reported as a [`ServiceError`] instead of collapsing into an
    /// empty `Vec`. The default forwards to `call` and never fails —
    /// an always-healthy service is exactly one whose every outcome is
    /// `Ok`. Fault-injecting and resilience wrappers override this.
    fn try_call(&self, inputs: &[Value]) -> CallOutcome {
        Ok(self.call(inputs))
    }

    /// Relative invocation cost (used as a default edge weight hint in the
    /// source graph). Defaults to 1.0.
    fn cost(&self) -> f64 {
        1.0
    }

    /// Downcast hook for *stateful* services. Session persistence uses
    /// this to find wrappers whose runtime state (injected-fault
    /// attempt counters, breaker state) must survive a save/restore;
    /// stateless services keep the `None` default and are simply
    /// re-registered on load.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl fmt::Debug for dyn Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Service({} : {})", self.name(), self.signature())
    }
}

/// A service defined by a closure — handy for tests and simple lookups.
pub struct FnService<F> {
    name: String,
    signature: Signature,
    f: F,
}

impl<F> FnService<F>
where
    F: Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync,
{
    /// Wrap a closure as a service.
    pub fn new(name: impl Into<String>, signature: Signature, f: F) -> Self {
        Self { name: name.into(), signature, f }
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        (self.f)(inputs)
    }
}

/// Forward every call to an existing service under a different catalog
/// name. This is how an *equivalent replacement source* (§3.2) is
/// registered: same signature, same answers, distinct identity, so the
/// engine can fail over to it when the primary's breaker trips.
pub struct Renamed {
    name: String,
    inner: Arc<dyn Service>,
}

impl Renamed {
    /// Wrap `inner` under `name`.
    pub fn new(name: impl Into<String>, inner: Arc<dyn Service>) -> Self {
        Self { name: name.into(), inner }
    }
}

impl Service for Renamed {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &Signature {
        self.inner.signature()
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        self.inner.call(inputs)
    }

    fn try_call(&self, inputs: &[Value]) -> CallOutcome {
        // Forward the typed path too, but re-attribute failures to the
        // alias: the caller asked *this* catalog entry for the answer.
        self.inner.try_call(inputs).map_err(|e| match e {
            ServiceError::Unavailable { .. } => ServiceError::Unavailable { service: self.name.clone() },
            ServiceError::TooSlow { latency_ms, .. } => {
                ServiceError::TooSlow { service: self.name.clone(), latency_ms }
            }
            ServiceError::Incomplete { partial, .. } => {
                ServiceError::Incomplete { service: self.name.clone(), partial }
            }
        })
    }

    fn cost(&self) -> f64 {
        self.inner.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_service_roundtrip() {
        let sig = Signature {
            inputs: Schema::of(&["city"]),
            outputs: Schema::of(&["zip"]),
        };
        let svc = FnService::new("zips", sig, |inp: &[Value]| {
            if inp[0] == Value::str("Margate") {
                vec![vec![Value::str("33063")]]
            } else {
                vec![]
            }
        });
        assert_eq!(svc.name(), "zips");
        assert_eq!(svc.signature().inputs.arity(), 1);
        assert_eq!(svc.call(&[Value::str("Margate")]), vec![vec![Value::str("33063")]]);
        assert!(svc.call(&[Value::str("Nowhere")]).is_empty());
        assert_eq!(svc.signature().to_string(), "(city) -> (zip)");
    }

    #[test]
    fn default_try_call_never_fails() {
        let sig = Signature {
            inputs: Schema::of(&["city"]),
            outputs: Schema::of(&["zip"]),
        };
        let svc = FnService::new("zips", sig, |_inp: &[Value]| vec![]);
        // A legitimately empty answer is Ok([]) — not an error.
        assert_eq!(svc.try_call(&[Value::str("Nowhere")]), Ok(vec![]));
    }

    #[test]
    fn renamed_forwards_and_reattributes() {
        struct Down;
        impl Service for Down {
            fn name(&self) -> &str {
                "primary"
            }
            fn signature(&self) -> &Signature {
                static SIG: std::sync::OnceLock<Signature> = std::sync::OnceLock::new();
                SIG.get_or_init(|| Signature {
                    inputs: Schema::of(&["a"]),
                    outputs: Schema::of(&["b"]),
                })
            }
            fn call(&self, _inputs: &[Value]) -> Vec<Vec<Value>> {
                vec![]
            }
            fn try_call(&self, _inputs: &[Value]) -> CallOutcome {
                Err(ServiceError::Unavailable { service: "primary".into() })
            }
        }
        let alias = Renamed::new("backup", Arc::new(Down));
        assert_eq!(alias.name(), "backup");
        let err = alias.try_call(&[Value::str("x")]).unwrap_err();
        assert_eq!(err.service(), "backup");
        assert_eq!(err.kind(), "unavailable");
    }

    #[test]
    fn error_display_names_kind() {
        let e = ServiceError::TooSlow { service: "geo".into(), latency_ms: 120 };
        assert!(e.to_string().contains("geo"));
        assert!(e.to_string().contains("120"));
        let e = ServiceError::Incomplete { service: "geo".into(), partial: vec![vec![]] };
        assert!(e.to_string().contains("1 rows"));
    }
}
