//! Callable services with input binding restrictions.
//!
//! §4: "Services can be modeled as relations that take input parameters
//! (i.e., to use the normal data integration terminology, they have input
//! binding restrictions). Predefined services include record-linking
//! functions, address resolution, geocoding, and currency and unit
//! conversion."

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// The binding signature of a service: which columns must be bound
/// (inputs) and which it produces (outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Required input columns.
    pub inputs: Schema,
    /// Produced output columns.
    pub outputs: Schema,
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.inputs, self.outputs)
    }
}

/// A callable external source. Implementations live in `copycat-services`
/// (simulated geocoders etc.); the engine only sees this trait.
pub trait Service: Send + Sync {
    /// Unique service name (catalog key; also the provenance relation
    /// name for its answers).
    fn name(&self) -> &str;

    /// Binding signature.
    fn signature(&self) -> &Signature;

    /// Invoke with one bound input tuple. May return zero answers (no
    /// match), one, or several ("in some cases the shelter name may be
    /// ambiguous and might return multiple answers", Example 1).
    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>>;

    /// Relative invocation cost (used as a default edge weight hint in the
    /// source graph). Defaults to 1.0.
    fn cost(&self) -> f64 {
        1.0
    }
}

impl fmt::Debug for dyn Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Service({} : {})", self.name(), self.signature())
    }
}

/// A service defined by a closure — handy for tests and simple lookups.
pub struct FnService<F> {
    name: String,
    signature: Signature,
    f: F,
}

impl<F> FnService<F>
where
    F: Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync,
{
    /// Wrap a closure as a service.
    pub fn new(name: impl Into<String>, signature: Signature, f: F) -> Self {
        Self { name: name.into(), signature, f }
    }
}

impl<F> Service for FnService<F>
where
    F: Fn(&[Value]) -> Vec<Vec<Value>> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &Signature {
        &self.signature
    }

    fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
        (self.f)(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_service_roundtrip() {
        let sig = Signature {
            inputs: Schema::of(&["city"]),
            outputs: Schema::of(&["zip"]),
        };
        let svc = FnService::new("zips", sig, |inp: &[Value]| {
            if inp[0] == Value::str("Margate") {
                vec![vec![Value::str("33063")]]
            } else {
                vec![]
            }
        });
        assert_eq!(svc.name(), "zips");
        assert_eq!(svc.signature().inputs.arity(), 1);
        assert_eq!(svc.call(&[Value::str("Margate")]), vec![vec![Value::str("33063")]]);
        assert!(svc.call(&[Value::str("Nowhere")]).is_empty());
        assert_eq!(svc.signature().to_string(), "(city) -> (zip)");
    }
}
