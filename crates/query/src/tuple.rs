//! Provenance-carrying tuples.

use crate::value::Value;
use copycat_provenance::Provenance;

/// A tuple: values plus the provenance polynomial of its derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The cell values.
    pub values: Vec<Value>,
    /// How this tuple was derived.
    pub provenance: Provenance,
}

impl Tuple {
    /// Construct.
    pub fn new(values: Vec<Value>, provenance: Provenance) -> Self {
        Self { values, provenance }
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The textual row (nulls render empty) — the form shown in the
    /// workspace grid.
    pub fn as_texts(&self) -> Vec<String> {
        self.values.iter().map(Value::as_text).collect()
    }

    /// Value at a column.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texts_render_nulls_empty() {
        let t = Tuple::new(
            vec![Value::str("x"), Value::Null, Value::Num(2.0)],
            Provenance::base("r", 0),
        );
        assert_eq!(t.as_texts(), vec!["x", "", "2"]);
        assert_eq!(t.arity(), 3);
    }
}
