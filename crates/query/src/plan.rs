//! Logical query plans.
//!
//! Plans are the hypotheses the integration learner proposes and the
//! executor evaluates. They reference catalog relations and services by
//! name, so they can be stored, ranked, re-executed and explained.

use crate::value::Value;
use std::fmt;

/// A tuple predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Column equals a constant.
    Eq {
        /// Column name.
        column: String,
        /// The constant.
        value: Value,
    },
    /// Column is non-null.
    NotNull {
        /// Column name.
        column: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a catalog relation.
    Scan {
        /// Relation name.
        relation: String,
    },
    /// Filter.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate to satisfy.
        predicate: Predicate,
    },
    /// Projection (by column name, in the given order).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column names.
        columns: Vec<String>,
    },
    /// Hash equi-join on name pairs. The output schema is the left schema
    /// followed by the right schema minus the right join columns.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// `(left column, right column)` equality pairs.
        on: Vec<(String, String)>,
    },
    /// Dependent join (bind-join): feed each input tuple's binding columns
    /// to a service; append the service outputs. Figure 2's arrows from
    /// Street/City into the Zipcode Resolver are exactly this operator.
    DependentJoin {
        /// Input plan.
        input: Box<Plan>,
        /// Catalog service name.
        service: String,
        /// Input column names bound to the service inputs, in order.
        bindings: Vec<String>,
    },
    /// Derived column: apply a learned string-transform program to one
    /// input column, appending the result as a new column (the
    /// join-with-transformation step; rows where the program does not
    /// apply get a null).
    Derive {
        /// Input plan.
        input: Box<Plan>,
        /// Column the program reads.
        column: String,
        /// Name of the appended derived column.
        name: String,
        /// The learned program.
        program: copycat_transform::Program,
    },
    /// Bag union with schema homogenization (null padding).
    Union {
        /// The input plans.
        inputs: Vec<Plan>,
    },
    /// Duplicate elimination; alternative derivations merge with ⊕.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// First `n` tuples.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row cap.
        n: usize,
    },
}

impl Plan {
    /// Scan shorthand.
    pub fn scan(relation: impl Into<String>) -> Plan {
        Plan::Scan { relation: relation.into() }
    }

    /// Select shorthand.
    pub fn select(self, predicate: Predicate) -> Plan {
        Plan::Select { input: Box::new(self), predicate }
    }

    /// Project shorthand.
    pub fn project(self, columns: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Join shorthand.
    pub fn join(self, right: Plan, on: &[(&str, &str)]) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
        }
    }

    /// Dependent-join shorthand.
    pub fn dependent_join(self, service: impl Into<String>, bindings: &[&str]) -> Plan {
        Plan::DependentJoin {
            input: Box::new(self),
            service: service.into(),
            bindings: bindings.iter().map(|b| b.to_string()).collect(),
        }
    }

    /// Derive shorthand.
    pub fn derive(
        self,
        column: impl Into<String>,
        name: impl Into<String>,
        program: copycat_transform::Program,
    ) -> Plan {
        Plan::Derive {
            input: Box::new(self),
            column: column.into(),
            name: name.into(),
            program,
        }
    }

    /// Distinct shorthand.
    pub fn distinct(self) -> Plan {
        Plan::Distinct { input: Box::new(self) }
    }

    /// Limit shorthand.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit { input: Box::new(self), n }
    }

    /// All relation and service names the plan touches, deduplicated in
    /// dataflow order (inputs before the services they feed) — this is the
    /// order explanations present them in.
    pub fn sources(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.walk_postorder(&mut |p| {
            let name = match p {
                Plan::Scan { relation } => Some(relation.as_str()),
                Plan::DependentJoin { service, .. } => Some(service.as_str()),
                _ => None,
            };
            if let Some(n) = name {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        });
        out
    }

    fn walk_postorder<'a>(&'a self, f: &mut impl FnMut(&'a Plan)) {
        match self {
            Plan::Scan { .. } => {}
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::DependentJoin { input, .. }
            | Plan::Derive { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. } => input.walk_postorder(f),
            Plan::Join { left, right, .. } => {
                left.walk_postorder(f);
                right.walk_postorder(f);
            }
            Plan::Union { inputs } => {
                for i in inputs {
                    i.walk_postorder(f);
                }
            }
        }
        f(self);
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan { relation } => write!(f, "{relation}"),
            Plan::Select { input, .. } => write!(f, "σ({input})"),
            Plan::Project { input, columns } => {
                write!(f, "π[{}]({input})", columns.join(","))
            }
            Plan::Join { left, right, on } => {
                let conds: Vec<String> =
                    on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "({left} ⋈[{}] {right})", conds.join("∧"))
            }
            Plan::DependentJoin { input, service, bindings } => {
                write!(f, "({input} →[{}] {service})", bindings.join(","))
            }
            Plan::Derive { input, column, name, program } => {
                write!(f, "τ[{name}:={program}({column})]({input})")
            }
            Plan::Union { inputs } => {
                let parts: Vec<String> = inputs.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", parts.join(" ∪ "))
            }
            Plan::Distinct { input } => write!(f, "δ({input})"),
            Plan::Limit { input, n } => write!(f, "limit[{n}]({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let p = Plan::scan("shelters")
            .dependent_join("zip_resolver", &["Street", "City"])
            .project(&["Name", "Zip"]);
        assert_eq!(
            p.to_string(),
            "π[Name,Zip]((shelters →[Street,City] zip_resolver))"
        );
        assert_eq!(p.sources(), vec!["shelters", "zip_resolver"]);
    }

    #[test]
    fn sources_dedup() {
        let p = Plan::Union {
            inputs: vec![Plan::scan("a"), Plan::scan("a"), Plan::scan("b")],
        };
        assert_eq!(p.sources(), vec!["a", "b"]);
    }
}
