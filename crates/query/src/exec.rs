//! The provenance-annotating executor.

use crate::catalog::Catalog;
use crate::plan::{Plan, Predicate};
use crate::relation::Relation;
use crate::schema::{Field, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use copycat_provenance::Provenance;
use copycat_util::hash::FxHashMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Plan referenced a relation the catalog does not hold.
    UnknownRelation(String),
    /// Plan referenced a service the catalog does not hold.
    UnknownService(String),
    /// Plan referenced a column absent from its input schema.
    UnknownColumn(String),
    /// A dependent join bound the wrong number of columns.
    BindingArity {
        /// The service.
        service: String,
        /// Expected input arity.
        expected: usize,
        /// Provided binding count.
        got: usize,
    },
    /// Union over zero inputs.
    EmptyUnion,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "unknown relation '{r}'"),
            ExecError::UnknownService(s) => write!(f, "unknown service '{s}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::BindingArity { service, expected, got } => write!(
                f,
                "service '{service}' expects {expected} bound inputs, got {got}"
            ),
            ExecError::EmptyUnion => write!(f, "union of zero inputs"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One service failure observed while executing a plan: which service,
/// which failure mode (`unavailable` / `too_slow` / `incomplete`), and
/// a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceFailure {
    /// The failing service's catalog name.
    pub service: String,
    /// The failure mode ([`crate::service::ServiceError::kind`]).
    pub kind: String,
    /// Display form of the underlying error.
    pub detail: String,
}

/// What went wrong *inside* an otherwise successful execution. A plan
/// whose dependent join hits a down service still returns the rows it
/// could derive; the report records that the answer may be degraded —
/// the distinction §3.2 needs between "empty because there is no
/// match" and "empty because the source failed".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Every service failure, in call order.
    pub failures: Vec<ServiceFailure>,
}

impl ExecReport {
    /// True when no service failed — the answer is complete.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The distinct failing services, first-failure order.
    pub fn failed_services(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for f in &self.failures {
            if !out.contains(&f.service.as_str()) {
                out.push(&f.service);
            }
        }
        out
    }
}

/// Execute a plan against the catalog. The result is named `result`.
/// Lenient: service failures degrade to skipped tuples (the report is
/// discarded); use [`execute_reported`] to observe them.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<Relation, ExecError> {
    let mut report = ExecReport::default();
    let (schema, tuples) = eval(plan, catalog, &mut report)?;
    let mut rel = Relation::empty("result", schema);
    for t in tuples {
        rel.push(t);
    }
    Ok(rel)
}

/// Execute and wrap every output tuple's provenance in a query label —
/// the form the SCP engine uses so feedback can be traced to the query.
pub fn execute_labeled(
    plan: &Plan,
    catalog: &Catalog,
    label: &str,
) -> Result<Relation, ExecError> {
    let (rel, _report) = execute_reported(plan, catalog, label)?;
    Ok(rel)
}

/// Execute with a query label and return the [`ExecReport`] alongside
/// the rows, so callers can tell a complete answer from one degraded
/// by service failures (and know *which* services to fail over from).
pub fn execute_reported(
    plan: &Plan,
    catalog: &Catalog,
    label: &str,
) -> Result<(Relation, ExecReport), ExecError> {
    let mut report = ExecReport::default();
    let (schema, tuples) = eval(plan, catalog, &mut report)?;
    let mut rel = Relation::empty("result", schema);
    for t in tuples {
        rel.push(Tuple::new(
            t.values,
            Provenance::labeled(label.to_string(), t.provenance),
        ));
    }
    Ok((rel, report))
}

fn eval(
    plan: &Plan,
    catalog: &Catalog,
    report: &mut ExecReport,
) -> Result<(Schema, Vec<Tuple>), ExecError> {
    match plan {
        Plan::Scan { relation } => {
            let rel = catalog
                .relation(relation)
                .ok_or_else(|| ExecError::UnknownRelation(relation.clone()))?;
            Ok((rel.schema().clone(), rel.tuples().to_vec()))
        }
        Plan::Select { input, predicate } => {
            let (schema, tuples) = eval(input, catalog, report)?;
            check_predicate_columns(predicate, &schema)?;
            let kept = tuples
                .into_iter()
                .filter(|t| eval_predicate(predicate, &schema, t))
                .collect();
            Ok((schema, kept))
        }
        Plan::Project { input, columns } => {
            let (schema, tuples) = eval(input, catalog, report)?;
            let idx: Vec<usize> = columns
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| ExecError::UnknownColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?;
            let out_schema = Schema::new(
                idx.iter()
                    .map(|&i| schema.field(i).expect("validated").clone())
                    .collect(),
            );
            let out = tuples
                .into_iter()
                .map(|t| {
                    let values = idx.iter().map(|&i| t.values[i].clone()).collect();
                    Tuple::new(values, t.provenance)
                })
                .collect();
            Ok((out_schema, out))
        }
        Plan::Derive { input, column, name, program } => {
            let (schema, tuples) = eval(input, catalog, report)?;
            let src = schema
                .index_of(column)
                .ok_or_else(|| ExecError::UnknownColumn(column.clone()))?;
            let mut fields = schema.fields().to_vec();
            fields.push(Field { name: name.clone(), sem_type: None });
            let out_schema = Schema::new(fields);
            let out = tuples
                .into_iter()
                .map(|mut t| {
                    // A null feeds nothing; a program that does not
                    // apply derives a null (never joins downstream).
                    let derived = if t.values[src].is_null() {
                        None
                    } else {
                        program.apply(&t.values[src].as_text())
                    };
                    t.values.push(derived.map_or(Value::Null, Value::Str));
                    t
                })
                .collect();
            Ok((out_schema, out))
        }
        Plan::Join { left, right, on } => {
            let (ls, lt) = eval(left, catalog, report)?;
            let (rs, rt) = eval(right, catalog, report)?;
            let lcols: Vec<usize> = on
                .iter()
                .map(|(l, _)| ls.index_of(l).ok_or_else(|| ExecError::UnknownColumn(l.clone())))
                .collect::<Result<_, _>>()?;
            let rcols: Vec<usize> = on
                .iter()
                .map(|(_, r)| rs.index_of(r).ok_or_else(|| ExecError::UnknownColumn(r.clone())))
                .collect::<Result<_, _>>()?;
            // Output schema: left + right minus right join columns.
            let keep_right: Vec<usize> = (0..rs.arity())
                .filter(|i| !rcols.contains(i))
                .collect();
            let mut fields = ls.fields().to_vec();
            for &i in &keep_right {
                let f = rs.field(i).expect("in range");
                // Disambiguate name clashes.
                let name = if fields.iter().any(|g| g.name == f.name) {
                    format!("{}_2", f.name)
                } else {
                    f.name.clone()
                };
                fields.push(Field { name, sem_type: f.sem_type.clone() });
            }
            let out_schema = Schema::new(fields);
            // Hash the right side on its key.
            let mut index: FxHashMap<Vec<Value>, Vec<&Tuple>> = FxHashMap::default();
            for t in &rt {
                let key: Vec<Value> = rcols.iter().map(|&i| t.values[i].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue; // null keys never join
                }
                index.entry(key).or_default().push(t);
            }
            let mut out = Vec::new();
            for l in &lt {
                let key: Vec<Value> = lcols.iter().map(|&i| l.values[i].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = index.get(&key) {
                    for r in matches {
                        let mut values = l.values.clone();
                        values.extend(keep_right.iter().map(|&i| r.values[i].clone()));
                        out.push(Tuple::new(
                            values,
                            Provenance::times(l.provenance.clone(), r.provenance.clone()),
                        ));
                    }
                }
            }
            Ok((out_schema, out))
        }
        Plan::DependentJoin { input, service, bindings } => {
            let (schema, tuples) = eval(input, catalog, report)?;
            let svc = catalog
                .service(service)
                .ok_or_else(|| ExecError::UnknownService(service.clone()))?;
            let sig = svc.signature();
            if bindings.len() != sig.inputs.arity() {
                return Err(ExecError::BindingArity {
                    service: service.clone(),
                    expected: sig.inputs.arity(),
                    got: bindings.len(),
                });
            }
            let bind_idx: Vec<usize> = bindings
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| ExecError::UnknownColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?;
            let mut fields = schema.fields().to_vec();
            for f in sig.outputs.fields() {
                let name = if fields.iter().any(|g| g.name == f.name) {
                    format!("{}_2", f.name)
                } else {
                    f.name.clone()
                };
                fields.push(Field { name, sem_type: f.sem_type.clone() });
            }
            let out_schema = Schema::new(fields);
            let mut out = Vec::new();
            let mut call_ordinal: u64 = 0;
            for t in tuples {
                let inputs: Vec<Value> =
                    bind_idx.iter().map(|&i| t.values[i].clone()).collect();
                if inputs.iter().any(Value::is_null) {
                    continue; // unbound input: the service cannot be called
                }
                let answers = match svc.try_call(&inputs) {
                    Ok(answers) => answers,
                    Err(crate::service::ServiceError::Incomplete { partial, .. }) => {
                        // Keep what the source did return; the report
                        // marks the answer as possibly missing rows.
                        report.failures.push(ServiceFailure {
                            service: service.clone(),
                            kind: "incomplete".into(),
                            detail: format!("service '{service}' returned a truncated answer"),
                        });
                        partial
                    }
                    Err(e) => {
                        // Unavailable / too slow: no answer for this
                        // input tuple. Record and move on — a failed
                        // bind drops the tuple, never the whole query.
                        report.failures.push(ServiceFailure {
                            service: service.clone(),
                            kind: e.kind().into(),
                            detail: e.to_string(),
                        });
                        continue;
                    }
                };
                for answer in answers {
                    let mut values = t.values.clone();
                    let mut answer = answer;
                    answer.resize(sig.outputs.arity(), Value::Null);
                    values.extend(answer);
                    out.push(Tuple::new(
                        values,
                        Provenance::times(
                            t.provenance.clone(),
                            Provenance::base(service.clone(), call_ordinal),
                        ),
                    ));
                    call_ordinal += 1;
                }
            }
            Ok((out_schema, out))
        }
        Plan::Union { inputs } => {
            if inputs.is_empty() {
                return Err(ExecError::EmptyUnion);
            }
            let mut evaluated = Vec::with_capacity(inputs.len());
            for i in inputs {
                evaluated.push(eval(i, catalog, report)?);
            }
            let merged = evaluated
                .iter()
                .map(|(s, _)| s.clone())
                .reduce(|a, b| a.union_merge(&b))
                .expect("non-empty");
            let mut out = Vec::new();
            for (schema, tuples) in evaluated {
                let mapping = schema.mapping_into(&merged);
                for t in tuples {
                    let values: Vec<Value> = mapping
                        .iter()
                        .map(|m| match m {
                            Some(i) => t.values[*i].clone(),
                            None => Value::Null,
                        })
                        .collect();
                    out.push(Tuple::new(values, t.provenance));
                }
            }
            Ok((merged, out))
        }
        Plan::Distinct { input } => {
            let (schema, tuples) = eval(input, catalog, report)?;
            let mut groups: Vec<(Vec<Value>, Provenance)> = Vec::new();
            let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            for t in tuples {
                match index.get(&t.values) {
                    Some(&g) => {
                        let merged =
                            Provenance::plus(groups[g].1.clone(), t.provenance);
                        groups[g].1 = merged;
                    }
                    None => {
                        index.insert(t.values.clone(), groups.len());
                        groups.push((t.values, t.provenance));
                    }
                }
            }
            let out = groups
                .into_iter()
                .map(|(values, prov)| Tuple::new(values, prov))
                .collect();
            Ok((schema, out))
        }
        Plan::Limit { input, n } => {
            let (schema, mut tuples) = eval(input, catalog, report)?;
            tuples.truncate(*n);
            Ok((schema, tuples))
        }
    }
}

fn check_predicate_columns(p: &Predicate, schema: &Schema) -> Result<(), ExecError> {
    match p {
        Predicate::Eq { column, .. } | Predicate::NotNull { column } => schema
            .index_of(column)
            .map(|_| ())
            .ok_or_else(|| ExecError::UnknownColumn(column.clone())),
        Predicate::And(ps) => ps.iter().try_for_each(|p| check_predicate_columns(p, schema)),
    }
}

fn eval_predicate(p: &Predicate, schema: &Schema, t: &Tuple) -> bool {
    match p {
        Predicate::Eq { column, value } => {
            let i = schema.index_of(column).expect("validated");
            t.values[i] == *value
        }
        Predicate::NotNull { column } => {
            let i = schema.index_of(column).expect("validated");
            !t.values[i].is_null()
        }
        Predicate::And(ps) => ps.iter().all(|p| eval_predicate(p, schema, t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{FnService, Signature};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.add_relation(Relation::from_strings(
            "shelters",
            Schema::of(&["Name", "Street", "City"]),
            &[
                vec!["Creek HS".into(), "100 Oak St".into(), "Margate".into()],
                vec!["Rec Ctr".into(), "200 Elm Ave".into(), "Tamarac".into()],
                vec!["Civic".into(), "300 Pine Rd".into(), "Margate".into()],
            ],
        ));
        cat.add_relation(Relation::from_strings(
            "contacts",
            Schema::of(&["Venue", "Phone"]),
            &[
                vec!["Creek HS".into(), "555-0101".into()],
                vec!["Civic".into(), "555-0103".into()],
            ],
        ));
        cat.add_service(Arc::new(FnService::new(
            "zip_resolver",
            Signature {
                inputs: Schema::of(&["street", "city"]),
                outputs: Schema::new(vec![Field::typed("Zip", "PR-Zip")]),
            },
            |inp: &[Value]| match inp[1].as_text().as_str() {
                "Margate" => vec![vec![Value::str("33063")]],
                "Tamarac" => vec![vec![Value::str("33321")]],
                _ => vec![],
            },
        )));
        cat
    }

    #[test]
    fn scan_select_project() {
        let cat = catalog();
        let plan = Plan::scan("shelters")
            .select(Predicate::Eq { column: "City".into(), value: Value::str("Margate") })
            .project(&["Name"]);
        let r = execute(&plan, &cat).unwrap();
        assert_eq!(r.as_texts(), vec![vec!["Creek HS"], vec!["Civic"]]);
    }

    #[test]
    fn hash_join_with_provenance() {
        let cat = catalog();
        let plan = Plan::scan("shelters").join(Plan::scan("contacts"), &[("Name", "Venue")]);
        let r = execute(&plan, &cat).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().names(), vec!["Name", "Street", "City", "Phone"]);
        let prov = &r.tuples()[0].provenance;
        assert_eq!(prov.relations(), vec!["shelters", "contacts"]);
    }

    #[test]
    fn dependent_join_calls_service() {
        let cat = catalog();
        let plan = Plan::scan("shelters").dependent_join("zip_resolver", &["Street", "City"]);
        let r = execute(&plan, &cat).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.schema().names(), vec!["Name", "Street", "City", "Zip"]);
        assert_eq!(r.tuples()[0].values[3], Value::str("33063"));
        // Provenance includes the service as a source.
        assert!(r.tuples()[0].provenance.relations().contains(&"zip_resolver"));
        // The zip column carries its semantic type.
        assert_eq!(
            r.schema().field(3).unwrap().sem_type.as_deref(),
            Some("PR-Zip")
        );
    }

    #[test]
    fn union_pads_with_nulls() {
        let cat = catalog();
        let plan = Plan::Union {
            inputs: vec![
                Plan::scan("shelters").project(&["Name", "City"]),
                Plan::scan("contacts").project(&["Venue", "Phone"]),
            ],
        };
        let r = execute(&plan, &cat).unwrap();
        assert_eq!(r.schema().names(), vec!["Name", "City", "Venue", "Phone"]);
        assert_eq!(r.len(), 5);
        // Contact rows have null Name/City.
        assert!(r.tuples()[3].values[0].is_null());
    }

    #[test]
    fn distinct_merges_provenance() {
        let cat = Catalog::new();
        cat.add_relation(Relation::from_strings(
            "dup",
            Schema::of(&["X"]),
            &[vec!["a".into()], vec!["a".into()], vec!["b".into()]],
        ));
        let r = execute(&Plan::scan("dup").distinct(), &cat).unwrap();
        assert_eq!(r.len(), 2);
        // The merged tuple has two alternative derivations.
        let p = &r.tuples()[0].provenance;
        assert_eq!(p.base_tuples().len(), 2);
    }

    #[test]
    fn labeled_execution_tags_queries() {
        let cat = catalog();
        let plan = Plan::scan("shelters").dependent_join("zip_resolver", &["Street", "City"]);
        let r = execute_labeled(&plan, &cat, "Q-zip").unwrap();
        assert_eq!(r.tuples()[0].provenance.labels(), vec!["Q-zip"]);
    }

    #[test]
    fn errors_are_reported() {
        let cat = catalog();
        assert_eq!(
            execute(&Plan::scan("nope"), &cat),
            Err(ExecError::UnknownRelation("nope".into()))
        );
        assert_eq!(
            execute(&Plan::scan("shelters").project(&["Nope"]), &cat),
            Err(ExecError::UnknownColumn("Nope".into()))
        );
        assert_eq!(
            execute(&Plan::scan("shelters").dependent_join("zip_resolver", &["City"]), &cat),
            Err(ExecError::BindingArity {
                service: "zip_resolver".into(),
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            execute(&Plan::Union { inputs: vec![] }, &cat),
            Err(ExecError::EmptyUnion)
        );
    }

    #[test]
    fn null_keys_never_join() {
        let cat = Catalog::new();
        cat.add_relation(Relation::from_strings(
            "l",
            Schema::of(&["K"]),
            &[vec!["".into()], vec!["x".into()]],
        ));
        cat.add_relation(Relation::from_strings(
            "r",
            Schema::of(&["K2"]),
            &[vec!["".into()], vec!["x".into()]],
        ));
        let r = execute(&Plan::scan("l").join(Plan::scan("r"), &[("K", "K2")]), &cat).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn limit_and_name_clash_suffix() {
        let cat = catalog();
        let plan = Plan::scan("shelters")
            .join(Plan::scan("shelters"), &[("Name", "Name")])
            .limit(2);
        let r = execute(&plan, &cat).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.schema().names(),
            vec!["Name", "Street", "City", "Street_2", "City_2"]
        );
    }

    #[test]
    fn reported_execution_distinguishes_failure_from_empty() {
        use crate::service::{CallOutcome, Service, ServiceError};

        // A resolver that is down for Margate, empty for Tamarac.
        struct Partial;
        impl Service for Partial {
            fn name(&self) -> &str {
                "zip_resolver"
            }
            fn signature(&self) -> &Signature {
                static SIG: std::sync::OnceLock<Signature> = std::sync::OnceLock::new();
                SIG.get_or_init(|| Signature {
                    inputs: Schema::of(&["street", "city"]),
                    outputs: Schema::of(&["Zip"]),
                })
            }
            fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
                self.try_call(inputs).unwrap_or_default()
            }
            fn try_call(&self, inputs: &[Value]) -> CallOutcome {
                match inputs[1].as_text().as_str() {
                    "Margate" => Err(ServiceError::Unavailable { service: "zip_resolver".into() }),
                    _ => Ok(vec![]),
                }
            }
        }

        let cat = catalog();
        cat.add_service(Arc::new(Partial)); // replaces the healthy one
        let plan = Plan::scan("shelters").dependent_join("zip_resolver", &["Street", "City"]);
        let (rel, report) = execute_reported(&plan, &cat, "Q-zip").unwrap();
        // Both answers are empty-or-failed, so zero rows either way …
        assert_eq!(rel.len(), 0);
        // … but the report says two of the three lookups *failed*
        // (the Tamarac row was a legitimate no-match, not a failure).
        assert!(!report.is_complete());
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failed_services(), vec!["zip_resolver"]);
        assert_eq!(report.failures[0].kind, "unavailable");
    }

    #[test]
    fn incomplete_answers_keep_partial_rows() {
        use crate::service::{CallOutcome, Service, ServiceError};

        struct Truncating;
        impl Service for Truncating {
            fn name(&self) -> &str {
                "multi"
            }
            fn signature(&self) -> &Signature {
                static SIG: std::sync::OnceLock<Signature> = std::sync::OnceLock::new();
                SIG.get_or_init(|| Signature {
                    inputs: Schema::of(&["city"]),
                    outputs: Schema::of(&["Zip"]),
                })
            }
            fn call(&self, inputs: &[Value]) -> Vec<Vec<Value>> {
                self.try_call(inputs).unwrap_or_default()
            }
            fn try_call(&self, _inputs: &[Value]) -> CallOutcome {
                Err(ServiceError::Incomplete {
                    service: "multi".into(),
                    partial: vec![vec![Value::str("33063")]],
                })
            }
        }

        let cat = catalog();
        cat.add_service(Arc::new(Truncating));
        let plan = Plan::scan("shelters").dependent_join("multi", &["City"]);
        let (rel, report) = execute_reported(&plan, &cat, "Q").unwrap();
        // The partial rows survive (one per input tuple) …
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.tuples()[0].values[3], Value::str("33063"));
        // … and the report flags every truncated call.
        assert_eq!(report.failures.len(), 3);
        assert_eq!(report.failures[0].kind, "incomplete");
    }
}
