//! Cell values.

use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A cell value. CopyCat data is overwhelmingly textual (it arrives via
/// the clipboard), with numbers appearing in geocodes and conversions.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing / padded (union homogenization pads with nulls, §4.2).
    Null,
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Is this the null value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string form used for display, joining, and export. Null renders
    /// as the empty string.
    pub fn as_text(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.clone(),
            Value::Num(n) => format_num(*n),
        }
    }

    /// Parse clipboard text into a value: empty → null; numeric → number;
    /// otherwise string.
    pub fn parse(text: &str) -> Value {
        let t = text.trim();
        if t.is_empty() {
            return Value::Null;
        }
        // Leading zeros (zip codes!) and +-prefixed strings stay textual.
        let keeps_leading_zero = t.starts_with("0") && t.len() > 1
            || t.starts_with("-0") && t.len() > 2;
        let looks_numeric =
            t.parse::<f64>().is_ok() && !t.starts_with('+') && !keeps_leading_zero;
        if looks_numeric {
            Value::Num(t.parse::<f64>().expect("checked"))
        } else {
            Value::Str(t.to_string())
        }
    }

    /// The number, when numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Null => None,
        }
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b || (a.is_nan() && b.is_nan()),
            // Join keys arriving as text must match numeric columns.
            (Value::Num(n), Value::Str(s)) | (Value::Str(s), Value::Num(n)) => {
                s.trim().parse::<f64>().map(|x| x == *n).unwrap_or(false)
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash through the textual form so Num(5) and Str("5") collide as
        // equality demands.
        match self {
            Value::Null => 0u8.hash(state),
            other => {
                1u8.hash(state);
                // Normalize numeric-looking strings.
                match other.as_num() {
                    Some(n) => n.to_bits().hash(state),
                    None => other.as_text().hash(state),
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl ToJson for Value {
    /// Null ↔ `null`, strings ↔ JSON strings, numbers ↔ JSON numbers —
    /// the three variants map onto distinct JSON scalar kinds.
    fn to_json(&self) -> Json {
        match self {
            Value::Null => Json::Null,
            Value::Str(s) => Json::Str(s.clone()),
            Value::Num(n) => Json::Num(*n),
        }
    }
}

impl FromJson for Value {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(Value::Null),
            Json::Str(s) => Ok(Value::Str(s.clone())),
            Json::Num(n) => Ok(Value::Num(*n)),
            other => Err(JsonError::expected("null, string, or number", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules() {
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("  42 "), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5"), Value::Num(-1.5));
        // Zip codes keep their leading zero as text.
        assert_eq!(Value::parse("02134"), Value::str("02134"));
        assert_eq!(Value::parse("Margate"), Value::str("Margate"));
    }

    #[test]
    fn cross_type_equality() {
        assert_eq!(Value::Num(5.0), Value::str("5"));
        assert_ne!(Value::Num(5.0), Value::str("five"));
        assert_ne!(Value::Null, Value::str(""));
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Num(5.0)), h(&Value::str("5")));
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn json_roundtrip() {
        for v in [Value::Null, Value::str("Margate"), Value::Num(-1.5)] {
            let back = Value::from_json(&Json::parse(&v.to_json().to_string()).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Num(3.0).as_text(), "3");
        assert_eq!(Value::Num(3.25).as_text(), "3.25");
        assert_eq!(Value::Null.as_text(), "");
    }
}
