//! Schemas: named, optionally semantically-typed columns.

use copycat_util::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Semantic type assigned by the model learner (e.g. `PR-Zip`), when
    /// known. Semantic types drive association discovery (§4.1).
    pub sem_type: Option<String>,
}

impl Field {
    /// An untyped field.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), sem_type: None }
    }

    /// A field with a semantic type.
    pub fn typed(name: impl Into<String>, sem_type: impl Into<String>) -> Self {
        Self { name: name.into(), sem_type: Some(sem_type.into()) }
    }
}

impl ToJson for Field {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name".into(), self.name.to_json()),
            ("sem_type".into(), self.sem_type.to_json()),
        ])
    }
}

impl FromJson for Field {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Field {
            name: String::from_json(j.field("name")?)?,
            sem_type: Option::from_json(j.field("sem_type")?)?,
        })
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Build untyped from names.
    pub fn of(names: &[&str]) -> Self {
        Self { fields: names.iter().map(|n| Field::new(*n)).collect() }
    }

    /// The fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the column with this name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at an index.
    pub fn field(&self, i: usize) -> Option<&Field> {
        self.fields.get(i)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Merge for union: the left schema's columns, followed by right
    /// columns whose names are new. (§4.2: "extending the schema and
    /// padding with nulls as necessary to form a homogeneous schema".)
    pub fn union_merge(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            match fields.iter_mut().find(|g| g.name == f.name) {
                Some(existing) => {
                    // Adopt a semantic type the left side lacked.
                    if existing.sem_type.is_none() {
                        existing.sem_type = f.sem_type.clone();
                    }
                }
                None => fields.push(f.clone()),
            }
        }
        Schema { fields }
    }

    /// For a tuple under `self`, the column mapping into `target`:
    /// `mapping[t]` is the source index for target column `t`, or `None`
    /// (pad with null).
    pub fn mapping_into(&self, target: &Schema) -> Vec<Option<usize>> {
        target
            .fields
            .iter()
            .map(|f| self.index_of(&f.name))
            .collect()
    }

    /// Columns (name pairs) shared with another schema.
    pub fn common_columns<'a>(&'a self, other: &'a Schema) -> Vec<&'a str> {
        self.fields
            .iter()
            .filter(|f| other.index_of(&f.name).is_some())
            .map(|f| f.name.as_str())
            .collect()
    }
}

impl ToJson for Schema {
    /// A schema serializes as its field array.
    fn to_json(&self) -> Json {
        self.fields.to_json()
    }
}

impl FromJson for Schema {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Schema { fields: Vec::from_json(j)? })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", field.name)?;
            if let Some(t) = &field.sem_type {
                write!(f, ":{t}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_names() {
        let s = Schema::of(&["Name", "Street", "City"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("Street"), Some(1));
        assert_eq!(s.index_of("Zip"), None);
        assert_eq!(s.names(), vec!["Name", "Street", "City"]);
    }

    #[test]
    fn union_merge_pads_and_keeps_order() {
        let a = Schema::of(&["Name", "City"]);
        let b = Schema::new(vec![Field::new("City"), Field::typed("Zip", "PR-Zip")]);
        let m = a.union_merge(&b);
        assert_eq!(m.names(), vec!["Name", "City", "Zip"]);
        assert_eq!(m.field(2).unwrap().sem_type.as_deref(), Some("PR-Zip"));
        // Mapping from b into the merged schema pads Name.
        assert_eq!(b.mapping_into(&m), vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn union_merge_adopts_types() {
        let a = Schema::of(&["City"]);
        let b = Schema::new(vec![Field::typed("City", "PR-City")]);
        let m = a.union_merge(&b);
        assert_eq!(m.field(0).unwrap().sem_type.as_deref(), Some("PR-City"));
    }

    #[test]
    fn common_columns() {
        let a = Schema::of(&["Name", "City", "Zip"]);
        let b = Schema::of(&["City", "Zip", "Phone"]);
        assert_eq!(a.common_columns(&b), vec!["City", "Zip"]);
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![Field::new("A"), Field::typed("B", "PR-Zip")]);
        assert_eq!(s.to_string(), "(A, B:PR-Zip)");
    }

    #[test]
    fn json_roundtrip() {
        let s = Schema::new(vec![Field::new("A"), Field::typed("B", "PR-Zip")]);
        let back = Schema::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
