//! The system catalog.
//!
//! §2.2: "The resulting source description gets added to a system
//! catalog." The catalog holds imported source relations (materialized by
//! executed wrappers) and registered services. It is shared between the
//! SCP engine, the integration learner and the executor, so access is
//! synchronized.

use crate::relation::Relation;
use crate::service::Service;
use copycat_util::sync::RwLock;
use copycat_util::hash::FxHashMap;
use std::sync::Arc;

/// Shared catalog of relations and services.
#[derive(Default)]
pub struct Catalog {
    relations: RwLock<FxHashMap<String, Arc<Relation>>>,
    services: RwLock<FxHashMap<String, Arc<dyn Service>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a relation under its own name.
    pub fn add_relation(&self, rel: Relation) -> Arc<Relation> {
        let arc = Arc::new(rel);
        self.relations
            .write()
            .insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Register (or replace) a service under its own name.
    pub fn add_service(&self, svc: Arc<dyn Service>) {
        self.services.write().insert(svc.name().to_string(), svc);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.read().get(name).cloned()
    }

    /// Look up a service.
    pub fn service(&self, name: &str) -> Option<Arc<dyn Service>> {
        self.services.read().get(name).cloned()
    }

    /// Sorted relation names.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Sorted service names.
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Remove a relation (source retraction).
    pub fn remove_relation(&self, name: &str) -> bool {
        self.relations.write().remove(name).is_some()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Catalog(relations: {:?}, services: {:?})",
            self.relation_names(),
            self.service_names()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::service::{FnService, Signature};

    #[test]
    fn add_and_lookup() {
        let cat = Catalog::new();
        cat.add_relation(Relation::empty("shelters", Schema::of(&["Name"])));
        assert!(cat.relation("shelters").is_some());
        assert!(cat.relation("nope").is_none());
        assert_eq!(cat.relation_names(), vec!["shelters"]);
        assert!(cat.remove_relation("shelters"));
        assert!(!cat.remove_relation("shelters"));
    }

    #[test]
    fn services_registry() {
        let cat = Catalog::new();
        let sig = Signature {
            inputs: Schema::of(&["x"]),
            outputs: Schema::of(&["y"]),
        };
        cat.add_service(Arc::new(FnService::new("echo", sig, |i: &[crate::Value]| {
            vec![i.to_vec()]
        })));
        assert!(cat.service("echo").is_some());
        assert_eq!(cat.service_names(), vec!["echo"]);
    }
}
