//! The system catalog.
//!
//! §2.2: "The resulting source description gets added to a system
//! catalog." The catalog holds imported source relations (materialized by
//! executed wrappers) and registered services. It is shared between the
//! SCP engine, the integration learner and the executor, so access is
//! synchronized.
//!
//! A catalog can be layered over a shared immutable *base* catalog
//! ([`Catalog::with_base`]): reads fall through to the base, writes land
//! only in the session-local layer, and removals of base entries are
//! recorded as tombstones. Many tenant sessions over one synthetic world
//! share the base's relations and service implementations by `Arc`
//! instead of rebuilding them per session.

use crate::relation::Relation;
use crate::service::Service;
use copycat_util::sync::RwLock;
use copycat_util::hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// Shared catalog of relations and services.
#[derive(Default)]
pub struct Catalog {
    /// The shared immutable layer below this one, if any. The base is
    /// never written through — mutating methods only touch the local
    /// maps and tombstones.
    base: Option<Arc<Catalog>>,
    relations: RwLock<FxHashMap<String, Arc<Relation>>>,
    services: RwLock<FxHashMap<String, Arc<dyn Service>>>,
    /// Base relation names this layer has removed (source retraction of
    /// a shared relation hides it for this session only).
    removed: RwLock<FxHashSet<String>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session-local catalog layered over a shared base. The base is
    /// read-only from this layer's perspective; same-name local entries
    /// shadow base entries.
    pub fn with_base(base: Arc<Catalog>) -> Self {
        Self { base: Some(base), ..Self::default() }
    }

    /// Whether this catalog layers over a shared base.
    pub fn has_base(&self) -> bool {
        self.base.is_some()
    }

    /// Register (or replace) a relation under its own name.
    pub fn add_relation(&self, rel: Relation) -> Arc<Relation> {
        let arc = Arc::new(rel);
        self.removed.write().remove(arc.name());
        self.relations
            .write()
            .insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Register (or replace) a service under its own name.
    pub fn add_service(&self, svc: Arc<dyn Service>) {
        self.services.write().insert(svc.name().to_string(), svc);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<Arc<Relation>> {
        if let Some(rel) = self.relations.read().get(name).cloned() {
            return Some(rel);
        }
        let base = self.base.as_ref()?;
        if self.removed.read().contains(name) {
            return None;
        }
        base.relation(name)
    }

    /// Look up a service.
    pub fn service(&self, name: &str) -> Option<Arc<dyn Service>> {
        if let Some(svc) = self.services.read().get(name).cloned() {
            return Some(svc);
        }
        self.base.as_ref()?.service(name)
    }

    /// Sorted relation names.
    pub fn relation_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.relations.read().keys().cloned().collect();
        if let Some(base) = &self.base {
            let removed = self.removed.read();
            for name in base.relation_names() {
                if !removed.contains(&name) && !self.relations.read().contains_key(&name) {
                    v.push(name);
                }
            }
        }
        v.sort();
        v
    }

    /// Sorted service names.
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.read().keys().cloned().collect();
        if let Some(base) = &self.base {
            for name in base.service_names() {
                if !self.services.read().contains_key(&name) {
                    v.push(name);
                }
            }
        }
        v.sort();
        v
    }

    /// Remove a relation (source retraction). Removing a base relation
    /// tombstones it in this layer; the shared base is untouched.
    pub fn remove_relation(&self, name: &str) -> bool {
        let had_local = self.relations.write().remove(name).is_some();
        let Some(base) = &self.base else {
            return had_local;
        };
        if base.relation(name).is_some() {
            // Tombstone whether or not a local shadow also existed, so
            // the base entry doesn't resurface after the removal.
            let newly = self.removed.write().insert(name.to_string());
            return had_local || newly;
        }
        had_local
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Catalog(relations: {:?}, services: {:?})",
            self.relation_names(),
            self.service_names()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::service::{FnService, Signature};

    fn echo_service(name: &str) -> Arc<dyn Service> {
        let sig = Signature {
            inputs: Schema::of(&["x"]),
            outputs: Schema::of(&["y"]),
        };
        Arc::new(FnService::new(name, sig, |i: &[crate::Value]| vec![i.to_vec()]))
    }

    #[test]
    fn add_and_lookup() {
        let cat = Catalog::new();
        cat.add_relation(Relation::empty("shelters", Schema::of(&["Name"])));
        assert!(cat.relation("shelters").is_some());
        assert!(cat.relation("nope").is_none());
        assert_eq!(cat.relation_names(), vec!["shelters"]);
        assert!(cat.remove_relation("shelters"));
        assert!(!cat.remove_relation("shelters"));
    }

    #[test]
    fn services_registry() {
        let cat = Catalog::new();
        cat.add_service(echo_service("echo"));
        assert!(cat.service("echo").is_some());
        assert_eq!(cat.service_names(), vec!["echo"]);
    }

    #[test]
    fn layered_catalog_reads_through_and_shadows() {
        let base = Arc::new(Catalog::new());
        base.add_relation(Relation::empty("shelters", Schema::of(&["Name"])));
        base.add_service(echo_service("zip"));
        let layered = Catalog::with_base(Arc::clone(&base));
        assert!(layered.has_base());
        // Reads fall through.
        assert!(layered.relation("shelters").is_some());
        assert!(layered.service("zip").is_some());
        assert_eq!(layered.relation_names(), vec!["shelters"]);
        assert_eq!(layered.service_names(), vec!["zip"]);
        // The shared Arc is the same allocation, not a copy.
        assert!(Arc::ptr_eq(
            &base.relation("shelters").unwrap(),
            &layered.relation("shelters").unwrap()
        ));
        // A local shadow replaces the base entry without touching it.
        layered.add_relation(Relation::empty("shelters", Schema::of(&["Name", "Zip"])));
        assert_eq!(layered.relation("shelters").unwrap().schema().arity(), 2);
        assert_eq!(base.relation("shelters").unwrap().schema().arity(), 1);
        assert_eq!(layered.relation_names(), vec!["shelters"]);
    }

    #[test]
    fn removing_a_base_relation_tombstones_locally() {
        let base = Arc::new(Catalog::new());
        base.add_relation(Relation::empty("shelters", Schema::of(&["Name"])));
        let a = Catalog::with_base(Arc::clone(&base));
        let b = Catalog::with_base(Arc::clone(&base));
        assert!(a.remove_relation("shelters"));
        assert!(a.relation("shelters").is_none());
        assert!(a.relation_names().is_empty());
        assert!(!a.remove_relation("shelters"), "second removal is a no-op");
        // Sibling layer and base are unaffected.
        assert!(b.relation("shelters").is_some());
        assert!(base.relation("shelters").is_some());
        // Re-adding clears the tombstone.
        a.add_relation(Relation::empty("shelters", Schema::of(&["Name"])));
        assert!(a.relation("shelters").is_some());
        // Removing a shadowed base relation hides both copies.
        let c = Catalog::with_base(Arc::clone(&base));
        c.add_relation(Relation::empty("shelters", Schema::of(&["Name", "Zip"])));
        assert!(c.remove_relation("shelters"));
        assert!(c.relation("shelters").is_none());
    }
}
