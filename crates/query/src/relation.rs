//! Named relations (materialized tables with provenance).

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use copycat_provenance::Provenance;

/// A named, materialized relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Self { name: name.into(), schema, tuples: Vec::new() }
    }

    /// Build a *source* relation from raw rows: row `i` gets base
    /// provenance `name#i`. Rows are truncated/padded to the schema arity.
    pub fn from_rows(name: impl Into<String>, schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        let name = name.into();
        let arity = schema.arity();
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, mut values)| {
                values.resize(arity, Value::Null);
                Tuple::new(values, Provenance::base(name.clone(), i as u64))
            })
            .collect();
        Self { name, schema, tuples }
    }

    /// Build a source relation from string rows (empty strings → null).
    pub fn from_strings(name: impl Into<String>, schema: Schema, rows: &[Vec<String>]) -> Self {
        let rows = rows
            .iter()
            .map(|r| r.iter().map(|s| Value::parse(s)).collect())
            .collect();
        Self::from_rows(name, schema, rows)
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple (provenance supplied by the caller).
    pub fn push(&mut self, t: Tuple) {
        debug_assert_eq!(t.arity(), self.schema.arity());
        self.tuples.push(t);
    }

    /// The rows as text (for workspace display and tests).
    pub fn as_texts(&self) -> Vec<Vec<String>> {
        self.tuples.iter().map(Tuple::as_texts).collect()
    }

    /// A column's values as text, nulls skipped (for type recognition).
    pub fn column_texts(&self, col: usize) -> Vec<String> {
        self.tuples
            .iter()
            .filter_map(|t| t.get(col))
            .filter(|v| !v.is_null())
            .map(Value::as_text)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_assigns_base_provenance() {
        let r = Relation::from_strings(
            "shelters",
            Schema::of(&["Name", "City"]),
            &[
                vec!["Creek HS".into(), "Margate".into()],
                vec!["Rec Ctr".into(), "Tamarac".into()],
            ],
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[1].provenance, Provenance::base("shelters", 1));
    }

    #[test]
    fn rows_are_padded_to_schema() {
        let r = Relation::from_rows(
            "r",
            Schema::of(&["A", "B"]),
            vec![vec![Value::str("only")]],
        );
        assert_eq!(r.tuples()[0].values, vec![Value::str("only"), Value::Null]);
    }

    #[test]
    fn column_texts_skip_nulls() {
        let r = Relation::from_strings(
            "r",
            Schema::of(&["A"]),
            &[vec!["x".into()], vec!["".into()], vec!["y".into()]],
        );
        assert_eq!(r.column_texts(0), vec!["x", "y"]);
    }
}
