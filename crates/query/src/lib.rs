//! The CopyCat query engine.
//!
//! Plays the role ORCHESTRA plays in the paper (§2.3): an in-memory
//! relational engine whose executor annotates every answer tuple with a
//! provenance polynomial, so that "feedback on auto-complete data [can be
//! converted] into feedback over the queries that created the data".
//!
//! * [`value`], [`schema`], [`tuple`], [`relation`] — the data model;
//! * [`service`] — callable sources with input binding restrictions
//!   ("services can be modeled as relations that take input parameters",
//!   §4);
//! * [`catalog`] — the system catalog of source relations and services;
//! * [`plan`] — logical plans: scan, select, project, hash join,
//!   *dependent join* (the bind-join of Figure 2's Zipcode Resolver),
//!   union with null-padding, distinct, limit;
//! * [`exec`] — the provenance-annotating executor.

pub mod catalog;
pub mod exec;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod service;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use exec::{execute, execute_labeled, execute_reported, ExecError, ExecReport, ServiceFailure};
pub use plan::{Plan, Predicate};
pub use relation::Relation;
pub use schema::{Field, Schema};
pub use service::{CallOutcome, FnService, Renamed, Service, ServiceError, Signature};
pub use tuple::Tuple;
pub use value::Value;
