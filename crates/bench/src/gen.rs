//! Random source-graph generation for the E2/E3/A3 workloads.
//!
//! Graphs mimic real source graphs: a connected backbone of join edges
//! plus extra cross edges, with costs around the default. Deterministic
//! per seed.

use copycat_graph::{EdgeKind, NodeId, SourceGraph};
use copycat_query::Schema;
use copycat_util::rng::{Rng, SeedableRng, StdRng};

/// Parameters for a random graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Node count.
    pub nodes: usize,
    /// Extra edges beyond the spanning backbone.
    pub extra_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a graph and a deterministic set of `k` spread-out terminals.
pub fn random_graph(spec: &GraphSpec, k_terminals: usize) -> (SourceGraph, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut g = SourceGraph::new();
    let nodes: Vec<NodeId> = (0..spec.nodes)
        .map(|i| g.add_relation(format!("s{i}"), Schema::of(&["X", "Y"])))
        .collect();
    let join = || EdgeKind::Join { pairs: vec![("X".into(), "X".into())] };
    for i in 1..spec.nodes {
        let j = rng.gen_range(0..i);
        g.add_edge_with_cost(nodes[i], nodes[j], join(), rng.gen_range(0.5..2.0));
    }
    for _ in 0..spec.extra_edges {
        let a = rng.gen_range(0..spec.nodes);
        let b = rng.gen_range(0..spec.nodes);
        if a != b {
            g.add_edge_with_cost(nodes[a], nodes[b], join(), rng.gen_range(0.5..2.0));
        }
    }
    // Terminals spread evenly across the id space.
    let k = k_terminals.min(spec.nodes);
    let mut terminals: Vec<NodeId> = (0..k)
        .map(|i| nodes[i * (spec.nodes - 1) / (k - 1).max(1)])
        .collect();
    terminals.dedup();
    while terminals.len() < k {
        let cand = nodes[rng.gen_range(0..spec.nodes)];
        if !terminals.contains(&cand) {
            terminals.push(cand);
        }
    }
    (g, terminals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_connected() {
        let spec = GraphSpec { nodes: 30, extra_edges: 20, seed: 9 };
        let (g1, t1) = random_graph(&spec, 4);
        let (g2, t2) = random_graph(&spec, 4);
        assert_eq!(t1, t2);
        assert_eq!(g1.edge_count(), g2.edge_count());
        // Backbone guarantees connectivity.
        assert!(copycat_graph::steiner_exact(&g1, &t1).is_some());
    }

    #[test]
    fn terminal_count_respected() {
        let (_, t) = random_graph(&GraphSpec { nodes: 50, extra_edges: 10, seed: 1 }, 6);
        assert_eq!(t.len(), 6);
    }
}
