//! Serve-layer load generation: closed-loop clients against the
//! in-process transport, reporting throughput and latency quantiles
//! per concurrency level.
//!
//! Each client owns one session (multi-tenant, so clients never contend
//! on a session lock), performs a fixed warm-up conversation (import
//! two joinable sources), then issues a timed loop of the interactive
//! hot path: query discovery (`autocomplete`, hitting the query cache
//! after the first round), `render`, and `session_stats`. Clients are
//! closed-loop — one outstanding request each — so the offered load
//! scales with the concurrency level and the queue never overflows.

use copycat_serve::router::{Router, RouterConfig};
use copycat_serve::server::{Server, ServerConfig};
use copycat_util::hist::Histogram;
use copycat_util::json::Json;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One concurrency level's aggregate results.
#[derive(Debug, Clone)]
pub struct ServeLoadRow {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Timed requests issued across all clients.
    pub requests: u64,
    /// Responses with `ok:true`.
    pub ok: u64,
    /// Wall time for the timed portion.
    pub elapsed: Duration,
    /// Timed requests per second (all clients together).
    pub throughput_rps: f64,
    /// Client-observed median latency (µs).
    pub p50_us: u64,
    /// Client-observed tail latency (µs).
    pub p99_us: u64,
}

fn esc(s: &str) -> String {
    Json::str(s).to_string()
}

/// The per-client warm-up conversation as raw request lines, plus the
/// two probe values its autocomplete hot path uses. Shared between the
/// in-process [`Server`] load loop and the [`Router`] sweeps (both
/// speak the same line protocol).
fn warm_up_lines(session: &str, tag: &str) -> (Vec<String>, String, String) {
    let s = format!("\"session\":{}", esc(session));
    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                format!("Venue-{tag}-{i}"),
                format!("{i} Oak St {tag}"),
                format!("City{}", i % 2),
            ]
        })
        .collect();
    let contacts: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                format!("Person-{tag}-{i}"),
                format!("555-0{i}-{tag}"),
                format!("Venue-{tag}-{i}"),
            ]
        })
        .collect();
    let rows_json = |rows: &[Vec<String>]| {
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rendered.join(","))
    };
    let mut lines = vec![
        format!("{{\"id\":0,\"op\":\"create_session\",{s}}}"),
        format!(
            "{{\"id\":0,\"op\":\"open_doc\",{s},\"name\":\"Shelters\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\"rows\":{}}}",
            rows_json(&rows)
        ),
    ];
    for r in &rows {
        let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
        lines.push(format!(
            "{{\"id\":0,\"op\":\"paste\",{s},\"doc\":0,\"values\":[{}]}}",
            cells.join(",")
        ));
    }
    lines.push(format!("{{\"id\":0,\"op\":\"accept_rows\",{s}}}"));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"open_doc\",{s},\"name\":\"Contacts\",\
         \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}}}",
        rows_json(&contacts)
    ));
    for r in &contacts {
        let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
        lines.push(format!(
            "{{\"id\":0,\"op\":\"paste\",{s},\"doc\":1,\"values\":[{}]}}",
            cells.join(",")
        ));
    }
    lines.push(format!("{{\"id\":0,\"op\":\"accept_rows\",{s}}}"));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Venue\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}"
    ));
    (lines, rows[0][1].clone(), contacts[0][1].clone())
}

/// The per-client warm-up: a session with two committed, joinable
/// sources, tagged so tenants never share values.
fn warm_up(server: &Server, session: &str, tag: &str) -> (String, String) {
    let (lines, a, b) = warm_up_lines(session, tag);
    for line in &lines {
        server.handle_line(line);
    }
    (a, b)
}

/// The interactive hot path for one session, as raw request lines.
fn hot_path_lines(session: &str, probes: (&str, &str)) -> Vec<String> {
    let s = format!("\"session\":{}", esc(session));
    vec![
        format!(
            "{{\"id\":1,\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3}}",
            esc(probes.0),
            esc(probes.1)
        ),
        format!("{{\"id\":2,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":3,\"op\":\"session_stats\",{s}}}"),
    ]
}

/// Run the timed loop for one client; records latencies into `hist`.
/// Returns (requests, ok).
fn client_loop(
    server: &Server,
    session: &str,
    probes: (&str, &str),
    requests: usize,
    hist: &Histogram,
) -> (u64, u64) {
    let script = hot_path_lines(session, probes);
    // Untimed warm-up rounds: populate the query cache, response
    // scratch, and scratch pools so the timed loop measures the steady
    // state, not first-touch costs.
    for _ in 0..2 {
        for line in &script {
            server.handle_line(line);
        }
    }
    let mut sent = 0u64;
    let mut ok = 0u64;
    for i in 0..requests {
        let line = &script[i % script.len()];
        let start = Instant::now();
        let resp = server.handle_line(line);
        hist.record(start.elapsed());
        sent += 1;
        if resp.contains("\"ok\":true") {
            ok += 1;
        }
    }
    (sent, ok)
}

/// Drive one concurrency level: `clients` closed-loop clients, each
/// issuing `requests_per_client` timed requests over its own session.
pub fn run_level(clients: usize, requests_per_client: usize) -> ServeLoadRow {
    let server = Arc::new(Server::new(ServerConfig {
        workers: clients.clamp(2, 8),
        queue_depth: (clients * 2).max(16),
        shards: 8,
    }));
    // Warm up all sessions before the clock starts.
    let probes: Vec<(String, String)> = (0..clients)
        .map(|c| warm_up(&server, &format!("client-{c}"), &format!("c{c}")))
        .collect();

    let hist = Arc::new(Histogram::default());
    let started = Instant::now();
    let (mut sent, mut ok) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                let hist = Arc::clone(&hist);
                let (a, b) = probes[c].clone();
                scope.spawn(move || {
                    client_loop(
                        &server,
                        &format!("client-{c}"),
                        (&a, &b),
                        requests_per_client,
                        &hist,
                    )
                })
            })
            .collect();
        for h in handles {
            let (s, o) = h.join().expect("client thread");
            sent += s;
            ok += o;
        }
    });
    let elapsed = started.elapsed();
    let snap = hist.snapshot();
    let row = ServeLoadRow {
        clients,
        requests: sent,
        ok,
        elapsed,
        throughput_rps: sent as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: snap.p50_us,
        p99_us: snap.p99_us,
    };
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("clients joined"),
    }
    row
}

/// The full sweep over concurrency levels.
pub fn run(concurrency: &[usize], requests_per_client: usize) -> Vec<ServeLoadRow> {
    concurrency
        .iter()
        .map(|&c| run_level(c.max(1), requests_per_client))
        .collect()
}

/// One kill-and-recover measurement: journal a session under load,
/// crash it (drop without shutdown), time the recovery replay, and
/// verify the recovered session answers like a never-crashed control.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Hot-path requests journaled before the crash.
    pub records: u64,
    /// Snapshot + WAL-truncate cadence during the run.
    pub snapshot_every: u64,
    /// Wall time for the journaled (durable, `sync_every=1`) run.
    pub journal_elapsed: Duration,
    /// Wall time for `Router::recover` (load snapshot + replay tail).
    pub recover_elapsed: Duration,
    /// Records replayed during recovery (snapshot checkpoint + tail).
    pub replayed: u64,
    /// Snapshots taken during the journaled run.
    pub snapshots: u64,
    /// Whether the recovered session answered byte-identically to a
    /// never-crashed control (must always be true).
    pub intact: bool,
}

fn bench_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("copycat-bench-{tag}-{}", std::process::id()))
}

fn stat(j: &Json, section: &str, key: &str) -> u64 {
    j[section][key].as_f64().unwrap_or(0.0) as u64
}

/// Kill-and-recover sweep: for each `(records, snapshot_every)` level,
/// run a durable single-tenant router, crash, recover, and time both
/// sides of the durability bargain.
pub fn run_recovery(levels: &[(u64, u64)]) -> Vec<RecoveryRow> {
    levels
        .iter()
        .map(|&(records, snapshot_every)| {
            let root = bench_root(&format!("recover-{records}-{snapshot_every}"));
            let _ = std::fs::remove_dir_all(&root);
            let config = || RouterConfig {
                shards: 2,
                server: ServerConfig { workers: 2, queue_depth: 64, shards: 8 },
                store_root: Some(root.clone()),
                snapshot_every,
                sync_every: 1,
                ..RouterConfig::default()
            };
            let (warm, a, b) = warm_up_lines("tenant", "r");
            let hot = hot_path_lines("tenant", (&a, &b));
            let durable = Router::new(config());
            for line in &warm {
                durable.handle_line(line);
            }
            let started = Instant::now();
            for i in 0..records {
                durable.handle_line(&hot[(i as usize) % hot.len()]);
            }
            let journal_elapsed = started.elapsed();
            let snapshots = stat(&durable.stats(), "durability", "snapshots");
            drop(durable); // crash: no shutdown, no final flush

            let started = Instant::now();
            let recovered = Router::recover(config()).expect("recovery");
            let recover_elapsed = started.elapsed();
            let replayed = stat(&recovered.stats(), "durability", "replayed_records");

            let control = Router::new(RouterConfig {
                shards: 2,
                server: ServerConfig { workers: 2, queue_depth: 64, shards: 8 },
                ..RouterConfig::default()
            });
            for line in &warm {
                control.handle_line(line);
            }
            for i in 0..records {
                control.handle_line(&hot[(i as usize) % hot.len()]);
            }
            let intact = hot
                .iter()
                .all(|line| recovered.handle_line(line) == control.handle_line(line));
            recovered.shutdown();
            control.shutdown();
            let _ = std::fs::remove_dir_all(&root);
            RecoveryRow {
                records,
                snapshot_every,
                journal_elapsed,
                recover_elapsed,
                replayed,
                snapshots,
                intact,
            }
        })
        .collect()
}

/// One cross-shard level: closed-loop clients against a [`Router`]
/// spreading tenants over `shards` shards, plus the cost of migrating
/// every tenant once at the end.
#[derive(Debug, Clone)]
pub struct CrossShardRow {
    /// In-process serve shards behind the router.
    pub shards: usize,
    /// Concurrent closed-loop clients (one tenant each).
    pub clients: usize,
    /// Timed requests across all clients.
    pub requests: u64,
    /// Responses with `ok:true`.
    pub ok: u64,
    /// Wall time for the timed portion.
    pub elapsed: Duration,
    /// Timed requests per second.
    pub throughput_rps: f64,
    /// Mean wall time to migrate one live tenant to another shard.
    pub migrate_mean_us: u64,
    /// Tenants migrated (always `clients`).
    pub migrations: u64,
}

/// Cross-shard sweep: same closed-loop hot path as [`run`], but through
/// the consistent-hash router at several shard counts, ending with a
/// full round of live migrations.
pub fn run_cross_shard(shard_counts: &[usize], clients: usize, requests_per_client: usize) -> Vec<CrossShardRow> {
    shard_counts
        .iter()
        .map(|&shards| {
            let router = Arc::new(Router::new(RouterConfig {
                shards,
                server: ServerConfig {
                    workers: clients.clamp(2, 8),
                    queue_depth: (clients * 2).max(16),
                    shards: 8,
                },
                ..RouterConfig::default()
            }));
            let probes: Vec<(String, String)> = (0..clients)
                .map(|c| {
                    let (lines, a, b) =
                        warm_up_lines(&format!("client-{c}"), &format!("c{c}"));
                    for line in &lines {
                        router.handle_line(line);
                    }
                    (a, b)
                })
                .collect();
            let started = Instant::now();
            let (mut sent, mut ok) = (0u64, 0u64);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let router = Arc::clone(&router);
                        let (a, b) = probes[c].clone();
                        scope.spawn(move || {
                            let script =
                                hot_path_lines(&format!("client-{c}"), (&a, &b));
                            let (mut sent, mut ok) = (0u64, 0u64);
                            for i in 0..requests_per_client {
                                let resp = router.handle_line(&script[i % script.len()]);
                                sent += 1;
                                if resp.contains("\"ok\":true") {
                                    ok += 1;
                                }
                            }
                            (sent, ok)
                        })
                    })
                    .collect();
                for h in handles {
                    let (s, o) = h.join().expect("client thread");
                    sent += s;
                    ok += o;
                }
            });
            let elapsed = started.elapsed();
            // Live-migration round: move every tenant one shard over.
            let mig_started = Instant::now();
            let mut migrations = 0u64;
            for c in 0..clients {
                let name = format!("client-{c}");
                let to = (router.shard_of(&name) + 1) % shards.max(1);
                if router.migrate_session(&name, to).is_ok() {
                    migrations += 1;
                }
            }
            let migrate_mean_us = if migrations > 0 {
                (mig_started.elapsed().as_micros() / migrations as u128) as u64
            } else {
                0
            };
            let row = CrossShardRow {
                shards,
                clients,
                requests: sent,
                ok,
                elapsed,
                throughput_rps: sent as f64 / elapsed.as_secs_f64().max(1e-9),
                migrate_mean_us,
                migrations,
            };
            match Arc::try_unwrap(router) {
                Ok(r) => r.shutdown(),
                Err(_) => unreachable!("clients joined"),
            }
            row
        })
        .collect()
}

/// Marginal per-session memory and per-request allocation cost for one
/// session mode (flat private worlds vs copy-on-write shared worlds).
#[derive(Debug, Clone)]
pub struct MemRow {
    /// `"flat"` (every session owns a private world) or
    /// `"shared_world"` (sessions overlay one frozen `WorldBase`).
    pub mode: &'static str,
    /// Sessions created inside the measured window.
    pub sessions: usize,
    /// Net live-byte growth per session.
    pub marginal_bytes_per_session: f64,
    /// Sessions fitting in one GiB at that marginal cost.
    pub sessions_per_gb: f64,
    /// Heap allocations per warm hot-path request.
    pub allocs_per_request: f64,
}

/// World parameters shared by both memory modes, so flat and shared
/// sessions host byte-identical corpora. Flat cost = ~27 KiB of
/// engine + types + services fixed floor plus ~165 B/venue of corpus;
/// shared-overlay cost (~1.6 KiB) is venue-independent, so the sharing
/// win grows with world size. 48 venues is the production-shaped world
/// the experiment standardizes on.
const MEM_SEED: u64 = 2009;
const MEM_VENUES: usize = 48;

/// The herd is a latency/residency experiment, not a memory-scaling
/// one: it keeps a small world so its hot path stays comparable to the
/// load sweep's (whose private sources are 4 rows each).
const HERD_VENUES: usize = 6;

fn mem_server() -> Server {
    Server::new(ServerConfig { workers: 2, queue_depth: 64, shards: 64 })
}

/// Create a flat session and build its private world; returns the
/// `register_world` response (it carries the corpus rows).
fn create_flat_world(server: &Server, name: &str, venues: usize) -> String {
    server.handle_line(&format!(
        "{{\"id\":0,\"op\":\"create_session\",\"session\":{}}}",
        esc(name)
    ));
    server.handle_line(&format!(
        "{{\"id\":0,\"op\":\"register_world\",\"session\":{},\
         \"seed\":{MEM_SEED},\"venues\":{venues}}}",
        esc(name)
    ))
}

/// Create a copy-on-write session over the shared `WorldBase`.
fn create_shared_world(server: &Server, name: &str, venues: usize) -> String {
    server.handle_line(&format!(
        "{{\"id\":0,\"op\":\"create_session\",\"session\":{},\
         \"world\":{{\"seed\":{MEM_SEED},\"venues\":{venues}}}}}",
        esc(name)
    ))
}

/// Warm hot-path allocations per request on one session.
fn allocs_per_request(
    server: &Server,
    session: &str,
    probes: (&str, &str),
    snap: &dyn Fn() -> copycat_util::bench::AllocSnapshot,
) -> f64 {
    let script = hot_path_lines(session, probes);
    for _ in 0..8 {
        for line in &script {
            server.handle_line(line);
        }
    }
    let before = snap();
    let rounds = 100usize;
    for _ in 0..rounds {
        for line in &script {
            server.handle_line(line);
        }
    }
    let after = snap();
    after.allocs_since(&before) as f64 / (rounds * script.len()) as f64
}

/// The copy-on-write memory experiment: marginal bytes per session and
/// allocations per warm request, flat private worlds vs shared-world
/// overlays over the *same* world. `snap` must read a process-global
/// [`CountingAlloc`](copycat_util::bench::CountingAlloc) installed by
/// the calling binary; measurements difference live bytes around the
/// bulk session creation, so the process should be otherwise quiescent.
pub fn run_mem(
    flat_sessions: usize,
    shared_sessions: usize,
    snap: &dyn Fn() -> copycat_util::bench::AllocSnapshot,
) -> Vec<MemRow> {
    let gib = (1u64 << 30) as f64;

    // Flat: every session builds and owns a private world.
    let server = mem_server();
    let first = create_flat_world(&server, "flat-warm-0", MEM_VENUES);
    let world = Json::parse(&first).expect("register_world response");
    let street = world["result"]["shelters"][0][1].as_str().expect("street").to_string();
    let phone = world["result"]["contacts"][0][1].as_str().expect("phone").to_string();
    for i in 1..4 {
        create_flat_world(&server, &format!("flat-warm-{i}"), MEM_VENUES);
    }
    let before = snap();
    for i in 0..flat_sessions {
        create_flat_world(&server, &format!("flat-{i}"), MEM_VENUES);
    }
    let after = snap();
    let marginal_flat = after.live_growth_since(&before).max(1) as f64 / flat_sessions as f64;
    let allocs_flat = allocs_per_request(&server, "flat-0", (&street, &phone), snap);
    server.shutdown();

    // Shared: sessions overlay one frozen, memoized world base.
    let server = mem_server();
    for i in 0..32 {
        create_shared_world(&server, &format!("shared-warm-{i}"), MEM_VENUES);
    }
    let before = snap();
    for i in 0..shared_sessions {
        create_shared_world(&server, &format!("shared-{i}"), MEM_VENUES);
    }
    let after = snap();
    let marginal_shared =
        after.live_growth_since(&before).max(1) as f64 / shared_sessions as f64;
    let allocs_shared = allocs_per_request(&server, "shared-0", (&street, &phone), snap);
    server.shutdown();

    vec![
        MemRow {
            mode: "flat",
            sessions: flat_sessions,
            marginal_bytes_per_session: marginal_flat,
            sessions_per_gb: gib / marginal_flat,
            allocs_per_request: allocs_flat,
        },
        MemRow {
            mode: "shared_world",
            sessions: shared_sessions,
            marginal_bytes_per_session: marginal_shared,
            sessions_per_gb: gib / marginal_shared,
            allocs_per_request: allocs_shared,
        },
    ]
}

/// The 10⁴-session herd sweep: one server hosting `sessions`
/// copy-on-write sessions, with the interactive hot path timed over a
/// rotating sample of the herd.
#[derive(Debug, Clone)]
pub struct HerdRow {
    /// Shared-world sessions resident on the server.
    pub sessions: usize,
    /// Wall time to create the whole herd.
    pub create_elapsed: Duration,
    /// Timed hot-path requests over the sample.
    pub requests: u64,
    /// Responses with `ok:true`.
    pub ok: u64,
    /// Wall time for the timed portion.
    pub elapsed: Duration,
    /// Timed requests per second.
    pub throughput_rps: f64,
    /// Client-observed median latency (µs).
    pub p50_us: u64,
    /// Client-observed tail latency (µs).
    pub p99_us: u64,
    /// Net live-byte growth per session during herd creation (0 when
    /// no allocator hook was provided).
    pub marginal_bytes_per_session: f64,
    /// Sessions fitting in one GiB (0 without an allocator hook).
    pub sessions_per_gb: f64,
}

/// Run the herd sweep: create the herd, then drive `clients` closed-loop
/// threads over `probe_sessions` sampled tenants for `rounds` passes of
/// the hot path each.
pub fn run_herd(
    sessions: usize,
    probe_sessions: usize,
    rounds: usize,
    clients: usize,
    snap: Option<&dyn Fn() -> copycat_util::bench::AllocSnapshot>,
) -> HerdRow {
    let server = Arc::new(Server::new(ServerConfig {
        workers: clients.clamp(2, 8),
        queue_depth: (clients * 2).max(16),
        shards: 256,
    }));
    // World probe values, via one flat scratch session over the same
    // seed the herd shares.
    let first = create_flat_world(&server, "scratch", HERD_VENUES);
    let world = Json::parse(&first).expect("register_world response");
    let street = world["result"]["shelters"][0][1].as_str().expect("street").to_string();
    let phone = world["result"]["contacts"][0][1].as_str().expect("phone").to_string();

    let before = snap.map(|s| s());
    let create_started = Instant::now();
    for i in 0..sessions {
        create_shared_world(&server, &format!("herd-{i}"), HERD_VENUES);
    }
    let create_elapsed = create_started.elapsed();
    let marginal = match (before, snap) {
        (Some(b), Some(s)) => s().live_growth_since(&b).max(1) as f64 / sessions as f64,
        _ => 0.0,
    };

    let probe_sessions = probe_sessions.clamp(1, sessions);
    let stride = (sessions / probe_sessions).max(1);
    let hist = Arc::new(Histogram::default());
    let started = Instant::now();
    let (mut sent, mut ok) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let server = Arc::clone(&server);
                let hist = Arc::clone(&hist);
                let (street, phone) = (street.clone(), phone.clone());
                scope.spawn(move || {
                    let (mut sent, mut ok) = (0u64, 0u64);
                    // Each client owns an interleaved slice of the
                    // sampled tenants.
                    for p in (c..probe_sessions).step_by(clients.max(1)) {
                        let session = format!("herd-{}", p * stride);
                        let script = hot_path_lines(&session, (&street, &phone));
                        // One untimed pass per tenant (same warm-up the
                        // load sweep's clients get): the timed loop
                        // measures the steady state, not the first
                        // query-cache fill.
                        for line in &script {
                            server.handle_line(line);
                        }
                        for i in 0..rounds * script.len() {
                            let line = &script[i % script.len()];
                            let start = Instant::now();
                            let resp = server.handle_line(line);
                            hist.record(start.elapsed());
                            sent += 1;
                            if resp.contains("\"ok\":true") {
                                ok += 1;
                            }
                        }
                    }
                    (sent, ok)
                })
            })
            .collect();
        for h in handles {
            let (s, o) = h.join().expect("herd client thread");
            sent += s;
            ok += o;
        }
    });
    let elapsed = started.elapsed();
    let snap_hist = hist.snapshot();
    let row = HerdRow {
        sessions,
        create_elapsed,
        requests: sent,
        ok,
        elapsed,
        throughput_rps: sent as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: snap_hist.p50_us,
        p99_us: snap_hist.p99_us,
        marginal_bytes_per_session: marginal,
        sessions_per_gb: if marginal > 0.0 { (1u64 << 30) as f64 / marginal } else { 0.0 },
    };
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("herd clients joined"),
    }
    row
}

/// Render the load rows (the original `BENCH_serve.json` array).
pub fn rows_to_json(rows: &[ServeLoadRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("clients".into(), Json::Num(r.clients as f64)),
                    ("requests".into(), Json::Num(r.requests as f64)),
                    ("ok".into(), Json::Num(r.ok as f64)),
                    (
                        "elapsed_us".into(),
                        Json::Num(r.elapsed.as_micros() as f64),
                    ),
                    ("throughput_rps".into(), Json::Num(r.throughput_rps)),
                    ("p50_us".into(), Json::Num(r.p50_us as f64)),
                    ("p99_us".into(), Json::Num(r.p99_us as f64)),
                ])
            })
            .collect(),
    )
}

/// Render the recovery rows as a `BENCH_serve.json` section.
pub fn recovery_to_json(rows: &[RecoveryRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("records".into(), Json::Num(r.records as f64)),
                    (
                        "snapshot_every".into(),
                        Json::Num(r.snapshot_every as f64),
                    ),
                    (
                        "journal_elapsed_us".into(),
                        Json::Num(r.journal_elapsed.as_micros() as f64),
                    ),
                    (
                        "recover_us".into(),
                        Json::Num(r.recover_elapsed.as_micros() as f64),
                    ),
                    ("replayed".into(), Json::Num(r.replayed as f64)),
                    ("snapshots".into(), Json::Num(r.snapshots as f64)),
                    ("intact".into(), Json::Bool(r.intact)),
                ])
            })
            .collect(),
    )
}

/// Render the cross-shard rows as a `BENCH_serve.json` section.
pub fn cross_shard_to_json(rows: &[CrossShardRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("shards".into(), Json::Num(r.shards as f64)),
                    ("clients".into(), Json::Num(r.clients as f64)),
                    ("requests".into(), Json::Num(r.requests as f64)),
                    ("ok".into(), Json::Num(r.ok as f64)),
                    (
                        "elapsed_us".into(),
                        Json::Num(r.elapsed.as_micros() as f64),
                    ),
                    ("throughput_rps".into(), Json::Num(r.throughput_rps)),
                    (
                        "migrate_mean_us".into(),
                        Json::Num(r.migrate_mean_us as f64),
                    ),
                    ("migrations".into(), Json::Num(r.migrations as f64)),
                ])
            })
            .collect(),
    )
}

/// Render the memory rows as a `BENCH_serve.json` section:
/// `{"rows": […], "reduction_x": flat/shared marginal ratio}`.
pub fn mem_to_json(rows: &[MemRow]) -> Json {
    let marginal = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode)
            .map(|r| r.marginal_bytes_per_session)
            .unwrap_or(0.0)
    };
    let (flat, shared) = (marginal("flat"), marginal("shared_world"));
    let reduction = if shared > 0.0 { flat / shared } else { 0.0 };
    Json::obj(vec![
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("mode".into(), Json::str(r.mode)),
                            ("sessions".into(), Json::Num(r.sessions as f64)),
                            (
                                "marginal_bytes_per_session".into(),
                                Json::Num(r.marginal_bytes_per_session),
                            ),
                            ("sessions_per_gb".into(), Json::Num(r.sessions_per_gb)),
                            (
                                "allocs_per_request".into(),
                                Json::Num(r.allocs_per_request),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("reduction_x".into(), Json::Num(reduction)),
    ])
}

/// Render the herd row as a `BENCH_serve.json` section.
pub fn herd_to_json(r: &HerdRow) -> Json {
    Json::obj(vec![
        ("sessions".into(), Json::Num(r.sessions as f64)),
        (
            "create_elapsed_us".into(),
            Json::Num(r.create_elapsed.as_micros() as f64),
        ),
        ("requests".into(), Json::Num(r.requests as f64)),
        ("ok".into(), Json::Num(r.ok as f64)),
        ("elapsed_us".into(), Json::Num(r.elapsed.as_micros() as f64)),
        ("throughput_rps".into(), Json::Num(r.throughput_rps)),
        ("p50_us".into(), Json::Num(r.p50_us as f64)),
        ("p99_us".into(), Json::Num(r.p99_us as f64)),
        (
            "marginal_bytes_per_session".into(),
            Json::Num(r.marginal_bytes_per_session),
        ),
        ("sessions_per_gb".into(), Json::Num(r.sessions_per_gb)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_generator_produces_clean_runs() {
        let rows = run(&[1, 2], 30);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.requests, 30 * r.clients as u64);
            assert_eq!(r.ok, r.requests, "all load-gen requests must succeed");
            assert!(r.throughput_rps > 0.0);
            assert!(r.p99_us >= r.p50_us);
        }
        let json = rows_to_json(&rows).to_string();
        assert!(json.contains("throughput_rps"));
    }

    #[test]
    fn recovery_sweep_recovers_intact() {
        let rows = run_recovery(&[(12, 5)]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].intact, "recovered session diverged from control");
        assert!(rows[0].replayed > 0, "something must have been replayed");
        assert!(rows[0].snapshots > 0, "snapshot cadence 5 over 12 records");
        let json = recovery_to_json(&rows).to_string();
        assert!(json.contains("recover_us"));
    }

    #[test]
    fn mem_experiment_produces_both_modes() {
        // No global counting allocator in the test binary: live-growth
        // reads are zero and clamp to the 1-byte guard. The test pins
        // the experiment's *shape* and that both modes run end to end.
        let snap = || copycat_util::bench::AllocSnapshot::default();
        let rows = run_mem(2, 4, &snap);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].mode, "flat");
        assert_eq!(rows[1].mode, "shared_world");
        for r in &rows {
            assert!(r.marginal_bytes_per_session >= 0.0);
            assert!(r.sessions_per_gb > 0.0);
        }
        let json = mem_to_json(&rows).to_string();
        assert!(json.contains("reduction_x"));
    }

    #[test]
    fn herd_sweep_produces_clean_runs() {
        let row = run_herd(48, 8, 2, 2, None);
        assert_eq!(row.sessions, 48);
        assert_eq!(row.ok, row.requests, "all herd probes must succeed");
        assert_eq!(row.requests, 8 * 2 * 3, "sample x rounds x script");
        assert!(row.throughput_rps > 0.0);
        let json = herd_to_json(&row).to_string();
        assert!(json.contains("sessions_per_gb"));
    }

    #[test]
    fn cross_shard_sweep_produces_clean_runs() {
        let rows = run_cross_shard(&[1, 2], 2, 12);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.ok, r.requests, "all cross-shard requests must succeed");
            assert_eq!(r.migrations, 2, "every tenant migrates once");
            assert!(r.throughput_rps > 0.0);
        }
        let json = cross_shard_to_json(&rows).to_string();
        assert!(json.contains("migrate_mean_us"));
    }
}
