//! Serve-layer load generation: closed-loop clients against the
//! in-process transport, reporting throughput and latency quantiles
//! per concurrency level.
//!
//! Each client owns one session (multi-tenant, so clients never contend
//! on a session lock), performs a fixed warm-up conversation (import
//! two joinable sources), then issues a timed loop of the interactive
//! hot path: query discovery (`autocomplete`, hitting the query cache
//! after the first round), `render`, and `session_stats`. Clients are
//! closed-loop — one outstanding request each — so the offered load
//! scales with the concurrency level and the queue never overflows.

use copycat_serve::server::{Server, ServerConfig};
use copycat_util::hist::Histogram;
use copycat_util::json::Json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One concurrency level's aggregate results.
#[derive(Debug, Clone)]
pub struct ServeLoadRow {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Timed requests issued across all clients.
    pub requests: u64,
    /// Responses with `ok:true`.
    pub ok: u64,
    /// Wall time for the timed portion.
    pub elapsed: Duration,
    /// Timed requests per second (all clients together).
    pub throughput_rps: f64,
    /// Client-observed median latency (µs).
    pub p50_us: u64,
    /// Client-observed tail latency (µs).
    pub p99_us: u64,
}

fn esc(s: &str) -> String {
    Json::str(s).to_string()
}

/// The per-client warm-up: a session with two committed, joinable
/// sources, tagged so tenants never share values.
fn warm_up(server: &Server, session: &str, tag: &str) -> (String, String) {
    let s = format!("\"session\":{}", esc(session));
    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                format!("Venue-{tag}-{i}"),
                format!("{i} Oak St {tag}"),
                format!("City{}", i % 2),
            ]
        })
        .collect();
    let contacts: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                format!("Person-{tag}-{i}"),
                format!("555-0{i}-{tag}"),
                format!("Venue-{tag}-{i}"),
            ]
        })
        .collect();
    let rows_json = |rows: &[Vec<String>]| {
        let rendered: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!("[{}]", rendered.join(","))
    };
    let mut lines = vec![
        format!("{{\"id\":0,\"op\":\"create_session\",{s}}}"),
        format!(
            "{{\"id\":0,\"op\":\"open_doc\",{s},\"name\":\"Shelters\",\
             \"headers\":[\"Venue\",\"Street\",\"City\"],\"rows\":{}}}",
            rows_json(&rows)
        ),
    ];
    for r in &rows {
        let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
        lines.push(format!(
            "{{\"id\":0,\"op\":\"paste\",{s},\"doc\":0,\"values\":[{}]}}",
            cells.join(",")
        ));
    }
    lines.push(format!("{{\"id\":0,\"op\":\"accept_rows\",{s}}}"));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"name_column\",{s},\"col\":0,\"name\":\"Venue\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"commit_source\",{s},\"name\":\"Shelters\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"open_doc\",{s},\"name\":\"Contacts\",\
         \"headers\":[\"Person\",\"Phone\",\"Venue\"],\"rows\":{}}}",
        rows_json(&contacts)
    ));
    for r in &contacts {
        let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
        lines.push(format!(
            "{{\"id\":0,\"op\":\"paste\",{s},\"doc\":1,\"values\":[{}]}}",
            cells.join(",")
        ));
    }
    lines.push(format!("{{\"id\":0,\"op\":\"accept_rows\",{s}}}"));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"name_column\",{s},\"col\":2,\"name\":\"Venue\"}}"
    ));
    lines.push(format!(
        "{{\"id\":0,\"op\":\"commit_source\",{s},\"name\":\"Contacts\"}}"
    ));
    for line in &lines {
        server.handle_line(line);
    }
    (rows[0][1].clone(), contacts[0][1].clone())
}

/// Run the timed loop for one client; records latencies into `hist`.
/// Returns (requests, ok).
fn client_loop(
    server: &Server,
    session: &str,
    probes: (&str, &str),
    requests: usize,
    hist: &Histogram,
) -> (u64, u64) {
    let s = format!("\"session\":{}", esc(session));
    let script = [
        format!(
            "{{\"id\":1,\"op\":\"autocomplete\",{s},\"values\":[{},{}],\"k\":3}}",
            esc(probes.0),
            esc(probes.1)
        ),
        format!("{{\"id\":2,\"op\":\"render\",{s}}}"),
        format!("{{\"id\":3,\"op\":\"session_stats\",{s}}}"),
    ];
    let mut sent = 0u64;
    let mut ok = 0u64;
    for i in 0..requests {
        let line = &script[i % script.len()];
        let start = Instant::now();
        let resp = server.handle_line(line);
        hist.record(start.elapsed());
        sent += 1;
        if resp.contains("\"ok\":true") {
            ok += 1;
        }
    }
    (sent, ok)
}

/// Drive one concurrency level: `clients` closed-loop clients, each
/// issuing `requests_per_client` timed requests over its own session.
pub fn run_level(clients: usize, requests_per_client: usize) -> ServeLoadRow {
    let server = Arc::new(Server::new(ServerConfig {
        workers: clients.clamp(2, 8),
        queue_depth: (clients * 2).max(16),
        shards: 8,
    }));
    // Warm up all sessions before the clock starts.
    let probes: Vec<(String, String)> = (0..clients)
        .map(|c| warm_up(&server, &format!("client-{c}"), &format!("c{c}")))
        .collect();

    let hist = Arc::new(Histogram::default());
    let started = Instant::now();
    let (mut sent, mut ok) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = Arc::clone(&server);
                let hist = Arc::clone(&hist);
                let (a, b) = probes[c].clone();
                scope.spawn(move || {
                    client_loop(
                        &server,
                        &format!("client-{c}"),
                        (&a, &b),
                        requests_per_client,
                        &hist,
                    )
                })
            })
            .collect();
        for h in handles {
            let (s, o) = h.join().expect("client thread");
            sent += s;
            ok += o;
        }
    });
    let elapsed = started.elapsed();
    let snap = hist.snapshot();
    let row = ServeLoadRow {
        clients,
        requests: sent,
        ok,
        elapsed,
        throughput_rps: sent as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: snap.p50_us,
        p99_us: snap.p99_us,
    };
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("clients joined"),
    }
    row
}

/// The full sweep over concurrency levels.
pub fn run(concurrency: &[usize], requests_per_client: usize) -> Vec<ServeLoadRow> {
    concurrency
        .iter()
        .map(|&c| run_level(c.max(1), requests_per_client))
        .collect()
}

/// Render rows as the `BENCH_serve.json` payload.
pub fn rows_to_json(rows: &[ServeLoadRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("clients".into(), Json::Num(r.clients as f64)),
                    ("requests".into(), Json::Num(r.requests as f64)),
                    ("ok".into(), Json::Num(r.ok as f64)),
                    (
                        "elapsed_us".into(),
                        Json::Num(r.elapsed.as_micros() as f64),
                    ),
                    ("throughput_rps".into(), Json::Num(r.throughput_rps)),
                    ("p50_us".into(), Json::Num(r.p50_us as f64)),
                    ("p99_us".into(), Json::Num(r.p99_us as f64)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_generator_produces_clean_runs() {
        let rows = run(&[1, 2], 30);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.requests, 30 * r.clients as u64);
            assert_eq!(r.ok, r.requests, "all load-gen requests must succeed");
            assert!(r.throughput_rps > 0.0);
            assert!(r.p99_us >= r.p50_us);
        }
        let json = rows_to_json(&rows).to_string();
        assert!(json.contains("throughput_rps"));
    }
}
