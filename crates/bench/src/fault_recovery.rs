//! F2 — recovery under storage fault injection, plus the zero-cost
//! guard for the `StoreFs` abstraction.
//!
//! Two measurements back the storage-fault work:
//!
//! * **Sweep** — the serve-level crash storm ([`run_crash_storm`]) at
//!   several injection strides on the simulated filesystem: every fault
//!   kind (short writes, torn appends, failed/lying fsyncs, bit flips,
//!   partial reads, ENOSPC) armed at strided I/O operations of a seeded
//!   workload, each run followed by kill, recovery, and the
//!   no-silent-loss property check. Rows report the loss accounting
//!   (`acked == recovered + quarantined + tail_lost`) and the mean wall
//!   time of one kill-and-recover cycle. The storm runs entirely on
//!   `SimFs`, so the loss numbers are machine-independent; only the
//!   timing column is wall clock.
//!
//! * **Overhead guard** — the production path runs the *real*
//!   filesystem through the same `StoreFs` trait (`Fs::real()`, one
//!   `Arc` deref + vtable call per I/O). [`run_overhead`] times an
//!   identical WAL-shaped append+fsync loop through `Fs::real()` and
//!   through `std::fs` directly; the fsyncs dominate both sides, so the
//!   ratio must stay ~1. The `fs_trait_overhead_is_negligible` test
//!   pins this with generous slack, guarding against the abstraction
//!   ever growing a measurable cost on the S2 kill-and-recover path.

use copycat_serve::smoke::run_crash_storm;
use copycat_store::Fs;
use copycat_util::json::Json;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One stride of the fault-injection recovery sweep.
#[derive(Debug, Clone)]
pub struct FaultRecoveryRow {
    /// Injection stride: a fault is armed at every `stride`-th I/O op.
    pub stride: u64,
    /// I/O operations in the fault-free workload (injection points).
    pub workload_ops: u64,
    /// Kill-and-recover runs (fault kinds × strided injection points).
    pub runs: u64,
    /// Runs where the armed fault actually fired.
    pub faults_fired: u64,
    /// Acked effects across all runs.
    pub acked: u64,
    /// Acked effects byte-identically present after recovery.
    pub recovered: u64,
    /// Acked effects explicitly quarantined by recovery.
    pub quarantined: u64,
    /// Acked effects explicitly reported as lost unsynced tail.
    pub tail_lost: u64,
    /// Acked effects unaccounted for (must be zero).
    pub silent_losses: u64,
    /// Wall time for the whole stride's sweep.
    pub elapsed: Duration,
    /// Mean wall time of one workload + kill + recover + probe cycle.
    pub mean_run_us: u64,
}

/// Run the crash-storm sweep at each stride. Panics if any run
/// silently loses an acked effect — that is a correctness bug, not a
/// data point.
pub fn run(seed: u64, strides: &[u64]) -> Vec<FaultRecoveryRow> {
    strides
        .iter()
        .map(|&stride| {
            let started = Instant::now();
            let r = run_crash_storm(seed, stride)
                .unwrap_or_else(|e| panic!("crash storm (stride {stride}): {e}"));
            let elapsed = started.elapsed();
            let mean_run_us = elapsed.as_micros() as u64 / r.runs.max(1);
            FaultRecoveryRow {
                stride,
                workload_ops: r.workload_ops,
                runs: r.runs,
                faults_fired: r.faults_fired,
                acked: r.acked,
                recovered: r.recovered,
                quarantined: r.quarantined,
                tail_lost: r.tail_lost,
                silent_losses: r.silent_losses,
                elapsed,
                mean_run_us,
            }
        })
        .collect()
}

/// The `StoreFs`-trait overhead measurement: one WAL-shaped
/// append+fsync loop through `Fs::real()` and one through `std::fs`.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Records appended per side.
    pub records: u64,
    /// `fsync`s issued per side (one per `sync_every` records).
    pub syncs: u64,
    /// Wall time through the `StoreFs` trait (`Fs::real()`).
    pub via_trait: Duration,
    /// Wall time through `std::fs` directly.
    pub via_std: Duration,
    /// `via_trait / via_std`; ~1.0 when the trait is a free passthrough.
    pub ratio: f64,
}

fn overhead_root() -> PathBuf {
    std::env::temp_dir().join(format!("copycat-fs-overhead-{}", std::process::id()))
}

/// A WAL-record-sized payload: varint-framed header plus ~100 bytes of
/// JSON, matching what one journaled request writes.
fn payload(i: u64) -> Vec<u8> {
    format!(
        "{:02x}{:02x}CRC!{{\"id\":{i},\"op\":\"paste\",\"session\":\"bench\",\
         \"doc\":0,\"values\":[\"row-{i}\",\"{i} Oak St\",\"CityA\"]}}\n",
        i & 0x7f,
        (i >> 7) & 0x7f
    )
    .into_bytes()
}

/// Time the same append+fsync loop both ways. The loop is the S2
/// kill-and-recover journal hot path in miniature: open append, write a
/// record, fsync every `sync_every` records.
pub fn run_overhead(records: u64, sync_every: u64) -> OverheadRow {
    let root = overhead_root();
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("overhead root");

    let fs = Fs::real();
    let started = Instant::now();
    let mut file = fs.open_append(&root.join("trait.wal")).expect("open via trait");
    for i in 0..records {
        file.write_all(&payload(i)).expect("append via trait");
        if (i + 1) % sync_every == 0 {
            file.sync_data().expect("sync via trait");
        }
    }
    let via_trait = started.elapsed();

    let started = Instant::now();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(root.join("std.wal"))
        .expect("open via std");
    for i in 0..records {
        file.write_all(&payload(i)).expect("append via std");
        if (i + 1) % sync_every == 0 {
            file.sync_data().expect("sync via std");
        }
    }
    let via_std = started.elapsed();

    let _ = std::fs::remove_dir_all(&root);
    let ratio = via_trait.as_secs_f64() / via_std.as_secs_f64().max(1e-9);
    OverheadRow { records, syncs: records / sync_every, via_trait, via_std, ratio }
}

/// Render sweep + guard as the `recovery_under_fault` section of
/// `BENCH_faults.json`.
pub fn to_json(rows: &[FaultRecoveryRow], overhead: &OverheadRow) -> Json {
    Json::obj(vec![
        (
            "sweep".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("stride".into(), Json::Num(r.stride as f64)),
                            ("workload_ops".into(), Json::Num(r.workload_ops as f64)),
                            ("runs".into(), Json::Num(r.runs as f64)),
                            ("faults_fired".into(), Json::Num(r.faults_fired as f64)),
                            ("acked".into(), Json::Num(r.acked as f64)),
                            ("recovered".into(), Json::Num(r.recovered as f64)),
                            ("quarantined".into(), Json::Num(r.quarantined as f64)),
                            ("tail_lost".into(), Json::Num(r.tail_lost as f64)),
                            ("silent_losses".into(), Json::Num(r.silent_losses as f64)),
                            ("elapsed_us".into(), Json::Num(r.elapsed.as_micros() as f64)),
                            ("mean_run_us".into(), Json::Num(r.mean_run_us as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "real_fs_overhead".into(),
            Json::obj(vec![
                ("records".into(), Json::Num(overhead.records as f64)),
                ("syncs".into(), Json::Num(overhead.syncs as f64)),
                (
                    "via_trait_us".into(),
                    Json::Num(overhead.via_trait.as_micros() as f64),
                ),
                ("via_std_us".into(), Json::Num(overhead.via_std.as_micros() as f64)),
                ("ratio".into(), Json::Num(overhead.ratio)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_account_for_every_acked_effect() {
        let rows = run(0xBE7C, &[23]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.runs > 0 && r.faults_fired > 0, "{r:?}");
        assert_eq!(r.silent_losses, 0, "{r:?}");
        assert_eq!(r.acked, r.recovered + r.quarantined + r.tail_lost, "{r:?}");
    }

    /// Satellite guard: the `StoreFs` trait must not make the real
    /// durable path measurably slower than raw `std::fs`. Both sides
    /// issue the same fsyncs, which dominate; the bound is deliberately
    /// generous (4x + 50ms absolute slack) so only a real regression —
    /// an added copy, lock, or allocation per record — can trip it.
    #[test]
    fn fs_trait_overhead_is_negligible() {
        let o = run_overhead(512, 64);
        assert!(
            o.via_trait <= o.via_std * 4 + Duration::from_millis(50),
            "StoreFs trait path regressed vs raw std::fs: {o:?}"
        );
    }
}
