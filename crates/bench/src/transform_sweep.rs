//! T1 — the transform-synthesis sweep: integration completeness on the
//! messy-format world, with and without learned string transforms.
//!
//! The task: every contact row wants its registration date from the
//! county `Directory`, but the directory writes phones dashed
//! (`954-555-1234`) where the contacts sheet writes them parenthesized
//! (`(954) 555-1234`), and its venue names carry casing noise. Two
//! modes over identical scenarios:
//!
//! * `service-only` — the engine has its services and value-overlap
//!   association discovery, nothing else. No service understands the
//!   directory and equality joins stall on the format gap, so
//!   completeness collapses.
//! * `transform` — three example pairs teach the engine a phone
//!   reformatting program; the learned edge's derive-then-join plan
//!   bridges the gap.
//!
//! Latency is wall clock for the learn + suggest path only (the paper's
//! interactive loop), amortized over the contact rows it answers.

use copycat_core::scenario::{Scenario, ScenarioConfig};
use copycat_services::World;
use copycat_util::json::Json;
use std::time::Instant;

/// One (venues, mode) cell of the sweep.
#[derive(Debug, Clone)]
pub struct TransformRow {
    /// Contact/venue count of the scenario.
    pub venues: usize,
    /// `service-only` or `transform`.
    pub mode: &'static str,
    /// Fraction of contact rows whose suggested registration date
    /// matches ground truth.
    pub completeness: f64,
    /// Wall-clock milliseconds to learn the program (0 without).
    pub learn_ms: f64,
    /// Wall-clock milliseconds for the suggestion round.
    pub suggest_ms: f64,
    /// `(learn_ms + suggest_ms) / venues` — the per-row price of the
    /// interactive transform loop.
    pub amortized_ms: f64,
    /// The learned program, rendered (empty without).
    pub program: String,
    /// Fraction of contact phones the program maps into the directory.
    pub coverage: f64,
}

fn one_cell(venues: usize, mode: &'static str) -> TransformRow {
    let mut s = Scenario::build(&ScenarioConfig { venues, ..Default::default() });
    s.import_shelters(1);
    s.import_directory();
    s.import_contacts();
    let expected: Vec<String> =
        s.world.directory_rows().iter().map(|r| r[2].clone()).collect();

    let mut program = String::new();
    let mut coverage = 0.0;
    let mut learn_ms = 0.0;
    if mode == "transform" {
        let examples: Vec<(String, String)> = s
            .contact_rows
            .iter()
            .take(3)
            .map(|r| (r[1].clone(), World::directory_phone(&r[1])))
            .collect();
        let t = Instant::now();
        let learned = s
            .engine
            .learn_transform("Contacts", "Phone", "Directory", "Phone", &examples)
            .expect("phone reformat is learnable");
        learn_ms = t.elapsed().as_secs_f64() * 1e3;
        program = learned.program.to_string();
        coverage = learned.coverage;
    }

    let t = Instant::now();
    let suggs = s.engine.column_suggestions();
    let suggest_ms = t.elapsed().as_secs_f64() * 1e3;

    // The best-ranked completion that brings the registration date in.
    let completeness = suggs
        .iter()
        .find_map(|c| {
            let reg = c.new_fields.iter().position(|f| f.name == "Registered")?;
            let correct = c
                .values
                .iter()
                .enumerate()
                .filter(|(i, vals)| vals.get(reg) == Some(&expected[*i]))
                .count();
            Some(correct as f64 / venues as f64)
        })
        .unwrap_or(0.0);

    TransformRow {
        venues,
        mode,
        completeness,
        learn_ms,
        suggest_ms,
        amortized_ms: (learn_ms + suggest_ms) / venues as f64,
        program,
        coverage,
    }
}

/// Run the sweep: both modes at every size.
pub fn run(sizes: &[usize]) -> Vec<TransformRow> {
    let mut out = Vec::new();
    for &venues in sizes {
        for mode in ["service-only", "transform"] {
            out.push(one_cell(venues, mode));
        }
    }
    out
}

/// Machine-readable rows for `BENCH_transform.json`.
pub fn rows_to_json(rows: &[TransformRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("venues".into(), Json::Num(r.venues as f64)),
                    ("mode".into(), Json::str(r.mode)),
                    ("completeness".into(), Json::Num(r.completeness)),
                    ("learn_ms".into(), Json::Num(r.learn_ms)),
                    ("suggest_ms".into(), Json::Num(r.suggest_ms)),
                    ("amortized_ms".into(), Json::Num(r.amortized_ms)),
                    ("program".into(), Json::str(&r.program)),
                    ("coverage".into(), Json::Num(r.coverage)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance contrast: transforms rescue the messy-format task.
    #[test]
    fn transforms_rescue_the_messy_format_task() {
        let rows = run(&[8]);
        assert_eq!(rows.len(), 2);
        let cell = |mode: &str| rows.iter().find(|r| r.mode == mode).unwrap().clone();
        let bare = cell("service-only");
        let learned = cell("transform");
        assert!(
            bare.completeness < 0.5,
            "service-only search should stall on the format gap: {bare:?}"
        );
        assert!(
            learned.completeness >= 0.95,
            "transform-enabled integration should near-complete: {learned:?}"
        );
        assert!(learned.coverage >= 0.95, "{learned:?}");
        assert!(!learned.program.is_empty());
        assert!(learned.learn_ms > 0.0);
    }

    #[test]
    fn json_rows_are_well_formed() {
        let rows = run(&[6]);
        let json = rows_to_json(&rows).to_string();
        assert!(json.contains("service-only"));
        assert!(json.contains("amortized_ms"));
    }
}
