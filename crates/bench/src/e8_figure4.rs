//! E8 — Figure 4 reconstruction: build the running example's source
//! graph from live catalogs, report the discovered associations, and
//! execute the bolded query (Shelters → ZipCodes dependent join).

use copycat_core::scenario::{Scenario, ScenarioConfig};

/// The reconstructed artifacts.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// The graph, rendered.
    pub graph: String,
    /// The chosen completion's query plan, rendered.
    pub plan: String,
    /// Number of result rows of the executed query.
    pub rows: usize,
    /// Fraction of zip values matching the world's ground truth.
    pub zip_accuracy: f64,
    /// A sample explanation of the first completed tuple.
    pub explanation: String,
}

/// Build and execute.
pub fn run() -> E8Result {
    let mut s = Scenario::build(&ScenarioConfig { venues: 15, ..Default::default() });
    s.import_shelters(1);
    let graph = s.engine.graph().to_string();
    let suggs = s.engine.column_suggestions();
    let zip = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"))
        .expect("the zip completion exists")
        .clone();
    let plan = zip.plan.to_string();
    let correct = zip
        .values
        .iter()
        .enumerate()
        .filter(|(i, v)| v.first().map(String::as_str) == Some(s.world.venue_zip(&s.world.venues[*i])))
        .count();
    let zip_accuracy = correct as f64 / s.world.venues.len() as f64;
    s.engine.accept_column(&zip);
    let tab = s.engine.workspace().active();
    let explanation = copycat_core::explain::explain_row(tab, 0)
        .map(|e| copycat_core::explain::render(&e))
        .unwrap_or_default();
    E8Result {
        graph,
        plan,
        rows: tab.committed_rows().len(),
        zip_accuracy,
        explanation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_query_executes_correctly() {
        let r = run();
        assert!(r.graph.contains("zip_resolver"));
        assert!(r.plan.contains("zip_resolver"));
        assert_eq!(r.rows, 15);
        assert!((r.zip_accuracy - 1.0).abs() < 1e-9);
        assert!(r.explanation.contains("zip_resolver"));
    }
}
