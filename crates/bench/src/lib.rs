//! Experiment implementations for every quantitative claim and figure of
//! the paper (see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for
//! the paper-vs-measured record).
//!
//! Each experiment module exposes a `run(...)` returning a structured
//! result plus a `table()` rendering; the `harness` binary prints them,
//! and the Criterion benches time the hot paths.

pub mod ablations;
pub mod chaos_sweep;
pub mod e1_keystrokes;
pub mod e2_feedback;
pub mod e3_steiner;
pub mod e4_structure;
pub mod e5_column;
pub mod e6_semantic;
pub mod e7_linkage;
pub mod e8_figure4;
pub mod fault_recovery;
pub mod gen;
pub mod serve_load;
pub mod table;
pub mod transform_sweep;
