//! E6 — semantic-type learning and recognition (§3.2): recognition
//! accuracy as training data grows, and cross-source transfer ("train
//! the system on the first source … then the system would recognize that
//! type of field if it was available in another source").

use copycat_document::corpus::Faker;
use copycat_semantic::TypeRegistry;
use copycat_util::rng::{Rng, SeedableRng, StdRng};

/// One accuracy measurement.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Training values per type.
    pub train_size: usize,
    /// Top-1 recognition accuracy over held-out columns (%).
    pub accuracy: f64,
}

/// The labeled field generators: `(type name, generator)`.
fn field_samples(seed: u64, n: usize) -> Vec<(&'static str, Vec<String>)> {
    let mut f = Faker::new(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let streets: Vec<String> = (0..n).map(|_| f.street()).collect();
    let cities: Vec<String> = (0..n).map(|_| f.city()).collect();
    let zips: Vec<String> = (0..n).map(|_| f.zip()).collect();
    let phones: Vec<String> = (0..n).map(|_| f.phone()).collect();
    let people: Vec<String> = (0..n).map(|_| f.person()).collect();
    let codes: Vec<String> = (0..n)
        .map(|_| format!("SHL-{:04}", rng.gen_range(0..10000)))
        .collect();
    let caps: Vec<String> = (0..n)
        .map(|_| format!("{} people", rng.gen_range(50..800)))
        .collect();
    vec![
        ("Street", streets),
        ("City", cities),
        ("Zip", zips),
        ("Phone", phones),
        ("Person", people),
        ("ShelterCode", codes),
        ("Capacity", caps),
    ]
}

/// Accuracy of a fresh registry trained with `train_size` values per
/// user-defined type, measured over `trials` held-out columns per type.
pub fn run(train_sizes: &[usize], trials: u64) -> Vec<E6Row> {
    let mut out = Vec::new();
    for &k in train_sizes {
        let mut correct = 0usize;
        let mut total = 0usize;
        for seed in 0..trials {
            // Train on one "source"'s formatting...
            let mut reg = TypeRegistry::empty();
            for (name, values) in field_samples(seed, k) {
                reg.learn_type(name, &values);
            }
            // ...recognize columns from a *different* source (new seed).
            for (name, values) in field_samples(seed + 1000, 8) {
                total += 1;
                if let Some((got, _)) = reg.best(&values, 0.2) {
                    if got == name {
                        correct += 1;
                    }
                }
            }
        }
        out.push(E6Row {
            train_size: k,
            accuracy: correct as f64 / total.max(1) as f64 * 100.0,
        });
    }
    out
}

/// The same-session reuse claim: a type defined on the fly from source A
/// is immediately available to recognize source B. Returns the accuracy
/// on source B's column of that type (%).
pub fn same_session_transfer(trials: u64) -> f64 {
    let mut correct = 0usize;
    for seed in 0..trials {
        let mut reg = TypeRegistry::with_builtins();
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<String> = (0..12)
            .map(|_| format!("SHL-{:04}", rng.gen_range(0..10000)))
            .collect();
        reg.learn_type("ShelterCode", &a);
        let b: Vec<String> = (0..8)
            .map(|_| format!("SHL-{:04}", rng.gen_range(0..10000)))
            .collect();
        if reg.best(&b, 0.3).map(|(n, _)| n) == Some("ShelterCode".to_string()) {
            correct += 1;
        }
    }
    correct as f64 / trials.max(1) as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_grows_with_training() {
        let rows = run(&[1, 20], 4);
        assert!(
            rows[1].accuracy >= rows[0].accuracy,
            "more data should not hurt: {rows:?}"
        );
        assert!(rows[1].accuracy >= 70.0, "20 examples should work: {rows:?}");
    }

    #[test]
    fn transfer_is_reliable() {
        assert!(same_session_transfer(10) >= 90.0);
    }
}
