//! E5 — column auto-completion quality (Figure 2, §4.1): where does the
//! intended Zip completion rank as distractor sources pile up, and how
//! accurate are the completed values?

use copycat_core::scenario::{Scenario, ScenarioConfig};
use copycat_query::{Field, Relation, Schema};

/// One measurement row.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Distractor sources registered.
    pub distractors: usize,
    /// Whether the zip completion ranked first.
    pub hit_at_1: bool,
    /// Whether it ranked in the top 3.
    pub hit_at_3: bool,
    /// Reciprocal rank of the zip completion (0 when absent).
    pub reciprocal_rank: f64,
    /// Fraction of rows whose completed zip equals the world's truth.
    pub value_accuracy: f64,
}

/// Run the sweep over distractor counts.
pub fn run(distractor_counts: &[usize]) -> Vec<E5Row> {
    distractor_counts.iter().map(|&d| run_once(d)).collect()
}

fn run_once(distractors: usize) -> E5Row {
    let mut s = Scenario::build(&ScenarioConfig { venues: 15, ..Default::default() });
    s.import_shelters(1);
    // Distractor sources: each shares the City column with Shelters, so
    // association discovery wires a join edge per distractor — candidate
    // completions the ranker must sift.
    let cities: Vec<String> = s
        .world
        .cities
        .iter()
        .map(|c| c.name.clone())
        .collect();
    for i in 0..distractors {
        let name = format!("Extra{i}");
        let schema = Schema::new(vec![
            Field::typed("City", "PR-City"),
            Field::new(format!("Misc{i}")),
        ]);
        let rows: Vec<Vec<String>> = cities
            .iter()
            .map(|c| vec![c.clone(), format!("junk-{i}-{c}")])
            .collect();
        let rel = Relation::from_strings(&name, schema.clone(), &rows);
        s.engine.catalog().add_relation(rel);
        s.engine.add_graph_relation(&name, schema);
    }
    let suggs = s.engine.column_suggestions();
    let zip_rank = suggs
        .iter()
        .position(|c| c.new_fields.iter().any(|f| f.name == "Zip"));
    let value_accuracy = zip_rank
        .map(|r| {
            let zip = &suggs[r];
            let correct = zip
                .values
                .iter()
                .enumerate()
                .filter(|(i, v)| {
                    v.first().map(String::as_str) == Some(s.world.venue_zip(&s.world.venues[*i]))
                })
                .count();
            correct as f64 / s.world.venues.len() as f64
        })
        .unwrap_or(0.0);
    E5Row {
        distractors,
        hit_at_1: zip_rank == Some(0),
        hit_at_3: zip_rank.is_some_and(|r| r < 3),
        reciprocal_rank: zip_rank.map(|r| 1.0 / (r + 1) as f64).unwrap_or(0.0),
        value_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zip_completion_survives_distractors() {
        let rows = run(&[0, 10]);
        assert!(rows[0].hit_at_3, "no distractors: {rows:?}");
        assert!((rows[0].value_accuracy - 1.0).abs() < 1e-9);
        assert!(rows[1].reciprocal_rank > 0.0, "zip must still be offered");
    }
}
