//! E1 — keystroke savings (§5): "query auto-completions … saved
//! approximately 75% of keystrokes compared to manual integration of
//! data by copy and paste."
//!
//! Five task families from the running scenario. The SCP side is driven
//! through the *actual engine* — suggestion errors are charged back as
//! manual corrections — while the manual side prices every cell as a
//! copy/paste (or a typed service lookup). Both sides share one
//! [`CostModel`].

use copycat_core::scenario::{Scenario, ScenarioConfig};
use copycat_core::simulator::{manual_log, ActionLog, ColumnOrigin, CostModel, TaskShape};
use copycat_core::RowState;
use copycat_document::corpus::Tier;

/// One task's costs.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Task name.
    pub task: String,
    /// Manual cost (keystroke-equivalents).
    pub manual: f64,
    /// SCP cost.
    pub scp: f64,
    /// Savings percentage.
    pub savings_pct: f64,
}

/// Run all five tasks. `venues` sets the table height.
pub fn run(venues: usize) -> Vec<E1Row> {
    let m = CostModel::default();
    let mut out = Vec::new();

    // ---- Task 1: import a clean shelter list (rows x 3 columns). ----
    {
        let mut s = Scenario::build(&ScenarioConfig { venues, ..Default::default() });
        let mut scp = ActionLog::default();
        // Paste one example row: three cell copy/pastes.
        let row0: Vec<&str> = s.shelter_rows[0].iter().map(String::as_str).collect();
        for _ in &row0 {
            scp.copy_paste_cell();
        }
        s.engine.paste_example(s.shelters_doc, &row0);
        scp.click(); // accept the suggested rows
        s.engine.accept_suggested_rows();
        charge_row_corrections(&mut scp, &mut s, venues);
        let manual = manual_log(&TaskShape { rows: venues, columns: vec![ColumnOrigin::Document; 3] });
        out.push(row("import clean list", &manual, &scp, &m));
    }

    // ---- Task 2: import from the noisy page (with rejections). ----
    {
        let mut s = Scenario::build(&ScenarioConfig {
            venues,
            tier: Tier::Noisy,
            ..Default::default()
        });
        let mut scp = ActionLog::default();
        for r in s.shelter_rows.clone().iter().take(2) {
            let vals: Vec<&str> = r.iter().map(String::as_str).collect();
            for _ in &vals {
                scp.copy_paste_cell();
            }
            s.engine.paste_example(s.shelters_doc, &vals);
        }
        // Reject bogus suggestions, one click each.
        let truth = s.shelter_rows.clone();
        for _ in 0..10 {
            let bogus = s
                .engine
                .workspace()
                .active()
                .rows
                .iter()
                .position(|r| r.state == RowState::Suggested && !truth.contains(&r.cells));
            match bogus {
                Some(i) => {
                    scp.click();
                    s.engine.reject_suggested_row(i);
                }
                None => break,
            }
        }
        scp.click();
        s.engine.accept_suggested_rows();
        charge_row_corrections(&mut scp, &mut s, venues);
        let manual = manual_log(&TaskShape { rows: venues, columns: vec![ColumnOrigin::Document; 3] });
        out.push(row("import noisy list", &manual, &scp, &m));
    }

    // ---- Tasks 3 & 4: zip column and geocode columns. ----
    for (task, field, outputs) in [("zip column", "Zip", 1usize), ("geocode columns", "Lat", 2)] {
        let mut s = Scenario::build(&ScenarioConfig { venues, ..Default::default() });
        s.import_shelters(1);
        let mut scp = ActionLog::default();
        let suggs = s.engine.column_suggestions();
        let sugg = suggs
            .iter()
            .find(|c| c.new_fields.iter().any(|f| f.name == field))
            .cloned();
        let lookup_lens: Vec<usize> = s
            .shelter_rows
            .iter()
            .map(|r| r[1].len() + r[2].len() + 2)
            .collect();
        match sugg {
            Some(c) => {
                scp.click(); // accept the completion
                // Missing values get a manual lookup each.
                for (i, v) in c.values.iter().enumerate() {
                    if v.iter().all(String::is_empty) {
                        scp.manual_service_lookup(lookup_lens[i]);
                    }
                }
                s.engine.accept_column(&c);
            }
            None => {
                for &len in &lookup_lens {
                    scp.manual_service_lookup(len);
                }
            }
        }
        let manual = manual_log(&TaskShape {
            rows: venues,
            columns: vec![ColumnOrigin::ServiceLookup(lookup_lens.clone())],
        });
        let _ = outputs; // one lookup fills all output columns either way
        out.push(row(task, &manual, &scp, &m));
    }

    // ---- Task 5: link the contacts spreadsheet (mangled names). ----
    {
        let mut s = Scenario::build(&ScenarioConfig {
            venues,
            contact_name_edits: 1,
            ..Default::default()
        });
        s.import_shelters(1);
        s.import_contacts();
        let mut scp = ActionLog::default();
        // Importing contacts itself: one pasted row + accept (3 cells).
        for _ in 0..3 {
            scp.copy_paste_cell();
        }
        scp.click();
        // Three demonstrated matches: each pastes a matching pair.
        for i in 0..3 {
            let true_name = s.world.venues[s.contact_truth[i]].name.clone();
            let mangled = s.contact_rows[i][2].clone();
            s.engine.demonstrate_link(&true_name, &mangled, true);
            scp.copy_paste_cell();
            scp.copy_paste_cell();
        }
        s.engine.declare_link("Shelters", "Name", "Contacts", "Venue");
        s.engine.switch_tab(0);
        let suggs = s.engine.column_suggestions();
        let link = suggs
            .iter()
            .find(|c| c.new_fields.iter().any(|f| f.name == "Phone"))
            .cloned();
        match link {
            Some(c) => {
                scp.click();
                // Unlinked rows: copy the two contact cells by hand.
                for v in &c.values {
                    if v.iter().all(String::is_empty) {
                        scp.copy_paste_cell();
                        scp.copy_paste_cell();
                    }
                }
                s.engine.accept_column(&c);
            }
            None => {
                for _ in 0..venues {
                    scp.copy_paste_cell();
                    scp.copy_paste_cell();
                }
            }
        }
        // Manual: import the sheet (3 cols) + find and copy 2 contact
        // cells per shelter.
        let mut manual = manual_log(&TaskShape {
            rows: venues,
            columns: vec![ColumnOrigin::Document; 3],
        });
        for _ in 0..venues {
            manual.copy_paste_cell();
            manual.copy_paste_cell();
        }
        out.push(row("link contacts", &manual, &scp, &m));
    }

    out
}

/// Compare the committed rows to the truth and charge corrections: a
/// manual copy/paste row for each missing truth row, one click per bogus
/// committed row (delete).
fn charge_row_corrections(scp: &mut ActionLog, s: &mut Scenario, venues: usize) {
    let committed = s.engine.workspace().active().committed_rows();
    let truth = &s.shelter_rows;
    for t in truth.iter().take(venues) {
        if !committed.contains(t) {
            for _ in 0..t.len() {
                scp.copy_paste_cell();
            }
        }
    }
    for c in &committed {
        if !truth.contains(c) {
            scp.click();
        }
    }
}

fn row(task: &str, manual: &ActionLog, scp: &ActionLog, m: &CostModel) -> E1Row {
    let manual_cost = manual.cost(m);
    let scp_cost = scp.cost(m);
    E1Row {
        task: task.to_string(),
        manual: manual_cost,
        scp: scp_cost,
        savings_pct: copycat_core::simulator::savings_pct(manual_cost, scp_cost),
    }
}

/// Mean savings across tasks.
pub fn mean_savings(rows: &[E1Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.savings_pct).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_in_the_karma_ballpark() {
        let rows = run(20);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.savings_pct > 40.0,
                "{}: only {:.1}% saved (manual {:.0}, scp {:.0})",
                r.task,
                r.savings_pct,
                r.manual,
                r.scp
            );
        }
        let mean = mean_savings(&rows);
        assert!(
            (60.0..=95.0).contains(&mean),
            "mean savings {mean:.1}% outside the expected band"
        );
    }
}
