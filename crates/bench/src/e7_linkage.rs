//! E7 — record-linkage quality (Example 1, §2.2): the learned
//! combination of heuristics versus each single heuristic, as the user
//! demonstrates more example matches, under controlled name corruption.

use copycat_linkage::{
    approximate_join, LabeledPair, MatchLearner, Matcher, Metric, TfIdfIndex,
};
use copycat_services::{World, WorldConfig};
use copycat_document::corpus::perturb_string;
use copycat_util::rng::{SeedableRng, StdRng};

/// One measurement row.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Matcher description (`learned(k)` or a single metric name).
    pub matcher: String,
    /// Edits applied to each right-hand name.
    pub edits: usize,
    /// Linkage F1 over the venue/contact assignment.
    pub f1: f64,
}

/// The linkage workload: shelters vs contact venue names with `edits`
/// perturbations each. Returns `(left names, right names, truth)` where
/// truth maps right index → left index.
fn workload(seed: u64, edits: usize) -> (Vec<Vec<String>>, Vec<Vec<String>>, Vec<usize>) {
    let world = World::generate(&WorldConfig { seed, venues: 25, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7);
    let left: Vec<Vec<String>> = world
        .venues
        .iter()
        .map(|v| vec![v.name.clone()])
        .collect();
    let right: Vec<Vec<String>> = world
        .venues
        .iter()
        .map(|v| vec![perturb_string(&mut rng, &v.name, edits)])
        .collect();
    let truth: Vec<usize> = (0..world.venues.len()).collect();
    (left, right, truth)
}

/// F1 of a matcher's 1:1 assignment against the identity truth.
fn f1_of(matcher: &Matcher, left: &[Vec<String>], right: &[Vec<String>], truth: &[usize]) -> f64 {
    let links = approximate_join(left, right, &[0], &[0], matcher);
    let tp = links.iter().filter(|l| truth[l.right] == l.left).count() as f64;
    if links.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let p = tp / links.len() as f64;
    let r = tp / truth.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Train a matcher from the first `k` true pairs (plus mismatched
/// negatives), mirroring the user pasting matches for several shelters.
fn learned_matcher(
    k: usize,
    left: &[Vec<String>],
    right: &[Vec<String>],
    truth: &[usize],
) -> Matcher {
    let mut pairs = Vec::new();
    for i in 0..k.min(left.len()) {
        pairs.push(LabeledPair {
            left: left[truth[i]].clone(),
            right: right[i].clone(),
            matched: true,
        });
        // A negative: the same right row against a different left.
        let wrong = (truth[i] + 1) % left.len();
        pairs.push(LabeledPair {
            left: left[wrong].clone(),
            right: right[i].clone(),
            matched: false,
        });
    }
    let corpus: Vec<String> = left
        .iter()
        .chain(right.iter())
        .map(|r| r[0].clone())
        .collect();
    MatchLearner::new(1).train(&pairs, TfIdfIndex::build(&corpus))
}

/// Run the comparison at each edit rate: single-metric baselines plus the
/// learned combination at 0, 3 and 6 demonstrated matches.
pub fn run(edit_rates: &[usize], seeds: u64) -> Vec<E7Row> {
    let mut out = Vec::new();
    for &edits in edit_rates {
        let singles = [Metric::Levenshtein, Metric::JaroWinkler, Metric::TokenJaccard, Metric::TfIdfCosine, Metric::Exact];
        let mut scores: Vec<(String, f64)> = Vec::new();
        for m in singles {
            let mut sum = 0.0;
            for seed in 0..seeds {
                let (l, r, t) = workload(seed, edits);
                let corpus: Vec<String> =
                    l.iter().chain(r.iter()).map(|x| x[0].clone()).collect();
                let matcher = Matcher::single_metric(m, 1, TfIdfIndex::build(&corpus));
                sum += f1_of(&matcher, &l, &r, &t);
            }
            scores.push((m.name().to_string(), sum / seeds as f64));
        }
        for k in [0usize, 3, 6] {
            let mut sum = 0.0;
            for seed in 0..seeds {
                let (l, r, t) = workload(seed, edits);
                let matcher = learned_matcher(k, &l, &r, &t);
                sum += f1_of(&matcher, &l, &r, &t);
            }
            scores.push((format!("learned({k})"), sum / seeds as f64));
        }
        for (matcher, f1) in scores {
            out.push(E7Row { matcher, edits, f1 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_combination_beats_weakest_baseline() {
        let rows = run(&[2], 3);
        let get = |name: &str| rows.iter().find(|r| r.matcher == name).map(|r| r.f1).unwrap();
        let learned = get("learned(6)");
        let exact = get("exact");
        assert!(
            learned > exact + 0.1,
            "learned {learned:.3} should beat exact-match {exact:.3} on perturbed names"
        );
        assert!(learned >= 0.6, "learned F1 too low: {learned:.3}");
    }

    #[test]
    fn heavier_edits_are_harder() {
        let rows = run(&[1, 6], 3);
        let f1 = |edits: usize| {
            rows.iter()
                .find(|r| r.matcher == "learned(6)" && r.edits == edits)
                .map(|r| r.f1)
                .unwrap()
        };
        // Small tolerance: perturbation draws differ per edit count, so
        // near-equal scores at light corruption are fine; six edits must
        // clearly be harder than one.
        assert!(
            f1(1) + 0.02 >= f1(6),
            "1-edit {:.3} vs 6-edit {:.3}",
            f1(1),
            f1(6)
        );
    }
}
