//! E3 — Steiner-search scale-up (§4.2): exact top-k for small graphs,
//! SPCSH for larger ones. We measure wall time and approximation quality
//! as the graph and terminal set grow; the paper's qualitative claim is
//! that the exact algorithm is fine at CopyCat scale ("the number of
//! sources is often relatively small") while SPCSH's pruning buys
//! scaling.

use crate::gen::{random_graph, GraphSpec};
use copycat_graph::{spcsh, steiner_exact};
use copycat_util::json::Json;
use std::time::{Duration, Instant};

/// One measurement row.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Nodes in the graph.
    pub nodes: usize,
    /// Terminals.
    pub terminals: usize,
    /// Exact solve time (None when skipped as infeasible).
    pub exact_time: Option<Duration>,
    /// SPCSH solve time.
    pub spcsh_time: Duration,
    /// SPCSH cost / exact cost (1.0 = optimal; None without exact).
    pub cost_ratio: Option<f64>,
}

/// Largest terminal count the E3 sweep runs the exact algorithm at. The
/// flat-array DP completes k=14 at 60 nodes in well under a second;
/// `MAX_EXACT_TERMINALS` (16) is the hard ceiling.
pub const EXACT_TERMINAL_SWEEP_LIMIT: usize = 14;

/// Sweep graph sizes at fixed terminal count, and terminal counts at a
/// fixed size. Returns (size sweep, terminal sweep).
pub fn run(sizes: &[usize], terminal_counts: &[usize]) -> (Vec<E3Row>, Vec<E3Row>) {
    let size_sweep = sizes.iter().map(|&n| measure(n, 4, true)).collect();
    let term_sweep = terminal_counts
        .iter()
        .map(|&k| measure(60, k, k <= EXACT_TERMINAL_SWEEP_LIMIT))
        .collect();
    (size_sweep, term_sweep)
}

/// Machine-readable form of a sweep, one object per row (the
/// `BENCH_steiner.json` schema: `{nodes, terminals, exact_us, spcsh_us,
/// ratio}`, with `null` where the exact solve was skipped).
pub fn rows_to_json(rows: &[E3Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("nodes".into(), Json::Num(r.nodes as f64)),
                    ("terminals".into(), Json::Num(r.terminals as f64)),
                    (
                        "exact_us".into(),
                        r.exact_time
                            .map(|d| Json::Num(d.as_secs_f64() * 1e6))
                            .unwrap_or(Json::Null),
                    ),
                    ("spcsh_us".into(), Json::Num(r.spcsh_time.as_secs_f64() * 1e6)),
                    ("ratio".into(), r.cost_ratio.map(Json::Num).unwrap_or(Json::Null)),
                ])
            })
            .collect(),
    )
}

fn measure(nodes: usize, terminals: usize, run_exact: bool) -> E3Row {
    let (g, t) = random_graph(
        &GraphSpec { nodes, extra_edges: nodes * 2, seed: nodes as u64 * 31 + terminals as u64 },
        terminals,
    );
    let (exact_time, exact_cost) = if run_exact {
        let start = Instant::now();
        let tree = steiner_exact(&g, &t).expect("backbone keeps it connected");
        (Some(start.elapsed()), Some(tree.cost))
    } else {
        (None, None)
    };
    let start = Instant::now();
    let approx = spcsh(&g, &t, 0.8).expect("connected");
    let spcsh_time = start.elapsed();
    E3Row {
        nodes,
        terminals,
        exact_time,
        spcsh_time,
        cost_ratio: exact_cost.map(|c| approx.cost / c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spcsh_within_guarantee_and_scales() {
        let (sizes, terms) = run(&[20, 60], &[2, 6]);
        for row in sizes.iter().chain(terms.iter()) {
            if let Some(r) = row.cost_ratio {
                assert!(
                    (1.0..=2.0 + 1e-9).contains(&r),
                    "ratio {r} out of the 2(1-1/k) guarantee at n={}",
                    row.nodes
                );
            }
        }
    }

    #[test]
    fn json_rows_carry_the_schema() {
        let (sizes, terms) = run(&[20], &[2, 15]);
        let all: Vec<E3Row> = sizes.into_iter().chain(terms).collect();
        let j = rows_to_json(&all);
        let text = j.to_string();
        let parsed = Json::parse(&text).expect("round-trips");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 3);
        for row in arr {
            for field in ["nodes", "terminals", "exact_us", "spcsh_us", "ratio"] {
                assert!(row.get(field).is_some(), "missing {field} in {text}");
            }
        }
        // k=15 exceeds the sweep limit: exact skipped, encoded as null.
        assert!(matches!(arr[2].get("exact_us"), Some(Json::Null)), "{text}");
    }

    #[test]
    fn exact_blows_up_in_terminals_not_nodes() {
        // The DW table is 2^k * n: doubling k should cost far more than
        // doubling n. Compare DP table sizes as a proxy (time is noisy in
        // CI-like environments).
        let t_8 = measure(60, 8, true).exact_time.unwrap();
        let t_2 = measure(60, 2, true).exact_time.unwrap();
        assert!(t_8 >= t_2, "k=8 ({t_8:?}) should not be faster than k=2 ({t_2:?})");
    }
}
