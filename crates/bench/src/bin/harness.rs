//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p copycat-bench --bin harness [e1|e2|…|a3|all]`
//!
//! Selected sections run concurrently on scoped threads (they share no
//! state); outputs are buffered per section and printed in the canonical
//! e1..a3 order, so the report reads identically to a serial run.

use copycat_bench::table::{dur, f1, f3, TextTable};
use copycat_bench::{
    ablations, chaos_sweep, e1_keystrokes, e2_feedback, e3_steiner, e4_structure, e5_column,
    e6_semantic, e7_linkage, e8_figure4, fault_recovery, serve_load, transform_sweep,
};
use copycat_util::json::Json;
use copycat_util::bench::CountingAlloc;
use std::fmt::Write;

/// Counting allocator for the S4 memory experiment (marginal bytes per
/// session, allocations per request). Delegates to `System`; the cost
/// is two relaxed increments per allocation.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn section_e1() -> String {
    let mut out = String::new();
    writeln!(out, "== E1: keystroke savings (paper: Karma saved ~75%) ==\n").unwrap();
    let rows = e1_keystrokes::run(20);
    let mut t = TextTable::new(&["task", "manual", "scp", "savings %"]);
    for r in &rows {
        t.row(vec![r.task.clone(), f1(r.manual), f1(r.scp), f1(r.savings_pct)]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    writeln!(
        out,
        "mean savings: {:.1}%  (paper: ~75%)\n",
        e1_keystrokes::mean_savings(&rows)
    )
    .unwrap();
    out
}

fn section_e2() -> String {
    let mut out = String::new();
    writeln!(out, "== E2a: feedback items until the preferred query ranks first ==").unwrap();
    writeln!(
        out,
        "   (paper: \"as little as one item of feedback for a single query\")\n"
    )
    .unwrap();
    let a = e2_feedback::run_e2a(30);
    let mut t = TextTable::new(&["converged/trials", "mean feedback", "% <=1 item", "max"]);
    t.row(vec![
        format!("{}/{}", a.converged, a.trials),
        f3(a.mean_feedback),
        f1(a.pct_one),
        a.max_feedback.to_string(),
    ]);
    writeln!(out, "{}", t.render()).unwrap();

    writeln!(out, "== E2b: query-family generalization vs training queries ==").unwrap();
    writeln!(
        out,
        "   (paper: \"feedback on 10 queries to learn rankings for an entire family\")\n"
    )
    .unwrap();
    let b = e2_feedback::run_e2b(&[0, 1, 2, 5, 10, 15], 30);
    let mut t = TextTable::new(&["queries trained on", "held-out top-1 accuracy %"]);
    for (k, acc) in &b.curve {
        t.row(vec![k.to_string(), f1(*acc)]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

/// The sweeps behind both the E3 table and `BENCH_steiner.json`.
const E3_SIZES: &[usize] = &[10, 20, 40, 80, 160, 300, 600];
const E3_TERMINALS: &[usize] = &[2, 4, 6, 8, 10, 12, 14];

fn section_e3() -> String {
    let mut out = String::new();
    writeln!(out, "== E3: Steiner search scale-up (exact vs SPCSH) ==\n").unwrap();
    let (sizes, terms) = e3_steiner::run(E3_SIZES, E3_TERMINALS);
    let mut t = TextTable::new(&["nodes", "terminals", "exact time", "spcsh time", "cost ratio"]);
    for r in sizes.iter().chain(terms.iter()) {
        t.row(vec![
            r.nodes.to_string(),
            r.terminals.to_string(),
            r.exact_time.map(dur).unwrap_or_else(|| "-".into()),
            dur(r.spcsh_time),
            r.cost_ratio.map(f3).unwrap_or_else(|| "-".into()),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

/// `harness -- e3-json`: the E3 sweep as machine-readable JSON rows on
/// stdout, nothing else (consumed by `scripts/bench_json.sh`).
fn e3_json() -> String {
    let (sizes, terms) = e3_steiner::run(E3_SIZES, E3_TERMINALS);
    let all: Vec<e3_steiner::E3Row> = sizes.into_iter().chain(terms).collect();
    e3_steiner::rows_to_json(&all).to_string()
}

fn section_e4() -> String {
    let mut out = String::new();
    writeln!(out, "== E4: row auto-completion quality vs pasted examples ==").unwrap();
    writeln!(
        out,
        "   (paper: well-structured pages need one example; complex pages more)\n"
    )
    .unwrap();
    let rows = e4_structure::run(3, 5);
    let mut t = TextTable::new(&["setting", "examples", "precision", "recall", "F1"]);
    for r in &rows {
        t.row(vec![
            r.setting.clone(),
            r.examples.to_string(),
            f3(r.precision),
            f3(r.recall),
            f3(r.f1),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn section_e5() -> String {
    let mut out = String::new();
    writeln!(out, "== E5: column-completion ranking vs distractor sources ==\n").unwrap();
    let rows = e5_column::run(&[0, 5, 10, 20]);
    let mut t = TextTable::new(&["distractors", "hit@1", "hit@3", "MRR", "zip value accuracy"]);
    for r in &rows {
        t.row(vec![
            r.distractors.to_string(),
            r.hit_at_1.to_string(),
            r.hit_at_3.to_string(),
            f3(r.reciprocal_rank),
            f3(r.value_accuracy),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn section_e6() -> String {
    let mut out = String::new();
    writeln!(out, "== E6: semantic-type recognition vs training size ==\n").unwrap();
    let rows = e6_semantic::run(&[1, 2, 5, 10, 20, 50], 6);
    let mut t = TextTable::new(&["training values/type", "cross-source top-1 accuracy %"]);
    for r in &rows {
        t.row(vec![r.train_size.to_string(), f1(r.accuracy)]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    writeln!(
        out,
        "same-session transfer (user-defined type, source A -> B): {:.1}%\n",
        e6_semantic::same_session_transfer(20)
    )
    .unwrap();
    out
}

fn section_e7() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E7: record-linkage F1, learned combination vs single heuristics ==\n"
    )
    .unwrap();
    let rows = e7_linkage::run(&[1, 2, 3], 5);
    let mut t = TextTable::new(&["matcher", "edits=1", "edits=2", "edits=3"]);
    let matchers: Vec<String> = {
        let mut m: Vec<String> = rows.iter().map(|r| r.matcher.clone()).collect();
        m.dedup();
        m.truncate(8);
        m
    };
    for m in matchers {
        let f1_at = |e: usize| {
            rows.iter()
                .find(|r| r.matcher == m && r.edits == e)
                .map(|r| f3(r.f1))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![m.clone(), f1_at(1), f1_at(2), f1_at(3)]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn section_e8() -> String {
    let mut out = String::new();
    writeln!(out, "== E8: Figure 4 reconstruction ==\n").unwrap();
    let r = e8_figure4::run();
    writeln!(out, "{}", r.graph).unwrap();
    writeln!(out, "chosen query: {}", r.plan).unwrap();
    writeln!(out, "rows: {}   zip accuracy: {:.3}", r.rows, r.zip_accuracy).unwrap();
    writeln!(out, "\nsample explanation:\n{}", r.explanation).unwrap();
    out
}

/// The sweeps behind both the serve section and `BENCH_serve.json`.
const SERVE_CONCURRENCY: &[usize] = &[1, 2, 4];
/// Per-point timed requests. 600 (up from 150) so each level's p99
/// rests on ≥600 samples per client — at 150, the 99th percentile was
/// one-or-two observations and jittered run to run.
const SERVE_REQUESTS_PER_CLIENT: usize = 600;
/// Kill-and-recover levels: (journaled records, snapshot cadence).
const SERVE_RECOVERY_LEVELS: &[(u64, u64)] = &[(100, 16), (400, 64), (400, 8)];
/// Cross-shard sweep: shard counts at a fixed client count.
const SERVE_SHARD_COUNTS: &[usize] = &[1, 2, 4];
const SERVE_SHARD_CLIENTS: usize = 4;
/// S4 memory experiment: sessions created inside the measured window.
const MEM_FLAT_SESSIONS: usize = 64;
const MEM_SHARED_SESSIONS: usize = 512;
/// S5 herd: resident copy-on-write sessions, sampled tenants, hot-path
/// rounds per sampled tenant, and closed-loop clients.
const HERD_SESSIONS: usize = 10_000;
const HERD_PROBE_SESSIONS: usize = 256;
const HERD_ROUNDS: usize = 4;
const HERD_CLIENTS: usize = 4;

fn section_serve() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== S1: copycat-serve throughput/latency (closed-loop clients, in-process) ==\n"
    )
    .unwrap();
    let rows = serve_load::run(SERVE_CONCURRENCY, SERVE_REQUESTS_PER_CLIENT);
    let mut t = TextTable::new(&["clients", "requests", "throughput rps", "p50", "p99"]);
    for r in &rows {
        t.row(vec![
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.0}", r.throughput_rps),
            dur(std::time::Duration::from_micros(r.p50_us)),
            dur(std::time::Duration::from_micros(r.p99_us)),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();

    writeln!(
        out,
        "== S2: kill-and-recover (durable router, sync_every=1, crash = drop) ==\n"
    )
    .unwrap();
    let rows = serve_load::run_recovery(SERVE_RECOVERY_LEVELS);
    let mut t = TextTable::new(&[
        "records",
        "snapshot every",
        "journal time",
        "recover time",
        "replayed",
        "snapshots",
        "intact",
    ]);
    for r in &rows {
        t.row(vec![
            r.records.to_string(),
            r.snapshot_every.to_string(),
            dur(r.journal_elapsed),
            dur(r.recover_elapsed),
            r.replayed.to_string(),
            r.snapshots.to_string(),
            if r.intact { "yes".into() } else { "NO".into() },
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();

    writeln!(
        out,
        "== S3: cross-shard routing + live migration ({SERVE_SHARD_CLIENTS} clients) ==\n"
    )
    .unwrap();
    let rows = serve_load::run_cross_shard(
        SERVE_SHARD_COUNTS,
        SERVE_SHARD_CLIENTS,
        SERVE_REQUESTS_PER_CLIENT,
    );
    let mut t = TextTable::new(&[
        "shards",
        "requests",
        "throughput rps",
        "migrate mean",
        "migrations",
    ]);
    for r in &rows {
        t.row(vec![
            r.shards.to_string(),
            r.requests.to_string(),
            format!("{:.0}", r.throughput_rps),
            dur(std::time::Duration::from_micros(r.migrate_mean_us)),
            r.migrations.to_string(),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();

    writeln!(
        out,
        "== S4: copy-on-write memory (flat private worlds vs shared WorldBase) ==\n"
    )
    .unwrap();
    let rows = serve_load::run_mem(MEM_FLAT_SESSIONS, MEM_SHARED_SESSIONS, &|| ALLOC.snapshot());
    let mut t = TextTable::new(&[
        "mode",
        "sessions",
        "marginal B/session",
        "sessions/GiB",
        "allocs/request",
    ]);
    for r in &rows {
        t.row(vec![
            r.mode.to_string(),
            r.sessions.to_string(),
            format!("{:.0}", r.marginal_bytes_per_session),
            format!("{:.0}", r.sessions_per_gb),
            format!("{:.1}", r.allocs_per_request),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    writeln!(
        out,
        "   (live-byte diffs; run `harness serve` alone for quiescent numbers)\n"
    )
    .unwrap();

    writeln!(
        out,
        "== S5: {HERD_SESSIONS}-session herd (copy-on-write, {HERD_CLIENTS} clients over a \
         {HERD_PROBE_SESSIONS}-tenant sample) ==\n"
    )
    .unwrap();
    let h = serve_load::run_herd(
        HERD_SESSIONS,
        HERD_PROBE_SESSIONS,
        HERD_ROUNDS,
        HERD_CLIENTS,
        Some(&|| ALLOC.snapshot()),
    );
    let mut t = TextTable::new(&[
        "sessions",
        "create time",
        "requests",
        "throughput rps",
        "p50",
        "p99",
        "B/session",
    ]);
    t.row(vec![
        h.sessions.to_string(),
        dur(h.create_elapsed),
        h.requests.to_string(),
        format!("{:.0}", h.throughput_rps),
        dur(std::time::Duration::from_micros(h.p50_us)),
        dur(std::time::Duration::from_micros(h.p99_us)),
        format!("{:.0}", h.marginal_bytes_per_session),
    ]);
    writeln!(out, "{}", t.render()).unwrap();
    out
}

/// `harness -- serve-json`: the serve sweeps as machine-readable JSON on
/// stdout (consumed by `scripts/bench_json.sh` into `BENCH_serve.json`):
/// `{"load": […], "recovery": […], "cross_shard": […], "mem": {…},
/// "herd": {…}}`. Runs serially, so the S4/S5 live-byte measurements
/// are quiescent.
fn serve_json() -> String {
    let load = serve_load::run(SERVE_CONCURRENCY, SERVE_REQUESTS_PER_CLIENT);
    let recovery = serve_load::run_recovery(SERVE_RECOVERY_LEVELS);
    let cross = serve_load::run_cross_shard(
        SERVE_SHARD_COUNTS,
        SERVE_SHARD_CLIENTS,
        SERVE_REQUESTS_PER_CLIENT,
    );
    let mem = serve_load::run_mem(MEM_FLAT_SESSIONS, MEM_SHARED_SESSIONS, &|| ALLOC.snapshot());
    let herd = serve_load::run_herd(
        HERD_SESSIONS,
        HERD_PROBE_SESSIONS,
        HERD_ROUNDS,
        HERD_CLIENTS,
        Some(&|| ALLOC.snapshot()),
    );
    copycat_util::json::Json::obj(vec![
        ("load".into(), serve_load::rows_to_json(&load)),
        ("recovery".into(), serve_load::recovery_to_json(&recovery)),
        (
            "cross_shard".into(),
            serve_load::cross_shard_to_json(&cross),
        ),
        ("mem".into(), serve_load::mem_to_json(&mem)),
        ("herd".into(), serve_load::herd_to_json(&herd)),
    ])
    .to_string()
}

/// The sweep behind both the F1 table and `BENCH_faults.json`.
const FAULT_RATES: &[f64] = &[0.0, 0.1, 0.3, 0.6, 1.0];

fn section_faults() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== F1: fault tolerance (failure rate x resilience mode, virtual time) ==\n"
    )
    .unwrap();
    let rows = chaos_sweep::run(FAULT_RATES);
    let mut t = TextTable::new(&[
        "failure rate",
        "mode",
        "completeness",
        "degraded",
        "virtual ms",
        "retries",
        "trips",
    ]);
    for r in &rows {
        t.row(vec![
            f1(r.rate * 100.0) + "%",
            r.mode.to_string(),
            f3(r.completeness),
            if r.degraded { "yes".into() } else { "no".into() },
            r.virtual_ms.to_string(),
            r.retries.to_string(),
            r.trips.to_string(),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();

    writeln!(
        out,
        "== F2: recovery under storage faults (crash storm on SimFs) ==\n"
    )
    .unwrap();
    let rows = fault_recovery::run(STORM_SEED, STORM_STRIDES);
    let mut t = TextTable::new(&[
        "stride",
        "runs",
        "fired",
        "acked",
        "recovered",
        "quarantined",
        "tail lost",
        "silent",
        "mean run",
    ]);
    for r in &rows {
        t.row(vec![
            r.stride.to_string(),
            r.runs.to_string(),
            r.faults_fired.to_string(),
            r.acked.to_string(),
            r.recovered.to_string(),
            r.quarantined.to_string(),
            r.tail_lost.to_string(),
            r.silent_losses.to_string(),
            format!("{} us", r.mean_run_us),
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    let o = fault_recovery::run_overhead(OVERHEAD_RECORDS, OVERHEAD_SYNC_EVERY);
    writeln!(
        out,
        "StoreFs trait overhead: {} records / {} fsyncs, {} via trait vs {} via std::fs \
         (ratio {:.2})\n",
        o.records,
        o.syncs,
        dur(o.via_trait),
        dur(o.via_std),
        o.ratio
    )
    .unwrap();
    out
}

/// The crash-storm sweep behind both the F2 table and the
/// `recovery_under_fault` section: seed plus injection strides (1 =
/// every I/O op; coarser strides show loss accounting is stable as
/// coverage thins).
const STORM_SEED: u64 = 0xC1D9;
const STORM_STRIDES: &[u64] = &[1, 3, 7];

/// The `StoreFs`-vs-`std::fs` overhead loop: enough records and fsyncs
/// for the timing to be sync-dominated on both sides.
const OVERHEAD_RECORDS: u64 = 2048;
const OVERHEAD_SYNC_EVERY: u64 = 64;

/// `harness -- faults-json`: machine-readable JSON on stdout (consumed
/// by `scripts/bench_json.sh` into `BENCH_faults.json`): the F1 chaos
/// sweep under `"f1"` plus the storage-fault recovery sweep and the
/// real-fs overhead guard under `"recovery_under_fault"`.
fn faults_json() -> String {
    let f1 = chaos_sweep::rows_to_json(&chaos_sweep::run(FAULT_RATES));
    let rows = fault_recovery::run(STORM_SEED, STORM_STRIDES);
    let overhead = fault_recovery::run_overhead(OVERHEAD_RECORDS, OVERHEAD_SYNC_EVERY);
    Json::obj(vec![
        ("f1".into(), f1),
        (
            "recovery_under_fault".into(),
            fault_recovery::to_json(&rows, &overhead),
        ),
    ])
    .to_string()
}

/// The sweep behind both the T1 table and `BENCH_transform.json`.
const TRANSFORM_SIZES: &[usize] = &[10, 30];

fn section_transforms() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== T1: transform synthesis (messy-format world, service-only vs learned) ==\n"
    )
    .unwrap();
    let rows = transform_sweep::run(TRANSFORM_SIZES);
    let mut t = TextTable::new(&[
        "venues",
        "mode",
        "completeness",
        "learn ms",
        "suggest ms",
        "amortized ms/row",
        "program",
    ]);
    for r in &rows {
        t.row(vec![
            r.venues.to_string(),
            r.mode.to_string(),
            f3(r.completeness),
            f3(r.learn_ms),
            f3(r.suggest_ms),
            f3(r.amortized_ms),
            if r.program.is_empty() { "-".into() } else { r.program.clone() },
        ]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

/// `harness -- transforms-json`: the T1 sweep as machine-readable JSON
/// on stdout (consumed by `scripts/bench_json.sh` into
/// `BENCH_transform.json`).
fn transforms_json() -> String {
    transform_sweep::rows_to_json(&transform_sweep::run(TRANSFORM_SIZES)).to_string()
}

fn section_a1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== A1: conjunction-of-all-predicates default vs single predicate ==\n"
    )
    .unwrap();
    let r = ablations::run_a1();
    let mut t = TextTable::new(&["join strategy", "result rows", "precision"]);
    t.row(vec![
        "conjunction (default)".into(),
        r.conjunction.0.to_string(),
        f3(r.conjunction.1),
    ]);
    t.row(vec![
        "worst single predicate".into(),
        r.single.0.to_string(),
        f3(r.single.1),
    ]);
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn section_a2() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== A2: structure-learner expert ablation (1 example, hard tiers) ==\n"
    )
    .unwrap();
    let rows = ablations::run_a2(3);
    let mut t = TextTable::new(&["disabled expert", "mean F1"]);
    for r in &rows {
        t.row(vec![r.disabled.clone(), f3(r.f1)]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn section_a3() -> String {
    let mut out = String::new();
    writeln!(out, "== A3: SPCSH prune-quantile sweep ==\n").unwrap();
    let mut t = TextTable::new(&["nodes", "prune quantile", "mean time", "mean cost ratio"]);
    for nodes in [80, 240] {
        for r in ablations::run_a3(&[0.3, 0.5, 0.7, 0.9, 1.0], 5, nodes) {
            t.row(vec![
                r.nodes.to_string(),
                format!("{:.1}", r.quantile),
                dur(r.time),
                f3(r.cost_ratio),
            ]);
        }
    }
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    if which.iter().any(|w| w == "e3-json") {
        println!("{}", e3_json());
        return;
    }
    if which.iter().any(|w| w == "serve-json") {
        println!("{}", serve_json());
        return;
    }
    if which.iter().any(|w| w == "faults-json") {
        println!("{}", faults_json());
        return;
    }
    if which.iter().any(|w| w == "transforms-json") {
        println!("{}", transforms_json());
        return;
    }
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    const SECTIONS: &[(&str, fn() -> String)] = &[
        ("e1", section_e1),
        ("e2", section_e2),
        ("e3", section_e3),
        ("e4", section_e4),
        ("e5", section_e5),
        ("e6", section_e6),
        ("e7", section_e7),
        ("e8", section_e8),
        ("serve", section_serve),
        ("faults", section_faults),
        ("transforms", section_transforms),
        ("a1", section_a1),
        ("a2", section_a2),
        ("a3", section_a3),
    ];
    let selected: Vec<&(&str, fn() -> String)> =
        SECTIONS.iter().filter(|(name, _)| want(name)).collect();

    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = selected.iter().map(|(_, f)| scope.spawn(f)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment section panicked"))
            .collect()
    });
    for out in outputs {
        print!("{out}");
    }
}
