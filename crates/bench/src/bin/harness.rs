//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p copycat-bench --bin harness [e1|e2|…|a3|all]`

use copycat_bench::table::{dur, f1, f3, TextTable};
use copycat_bench::{
    ablations, e1_keystrokes, e2_feedback, e3_steiner, e4_structure, e5_column, e6_semantic,
    e7_linkage, e8_figure4,
};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);

    if want("e1") {
        println!("== E1: keystroke savings (paper: Karma saved ~75%) ==\n");
        let rows = e1_keystrokes::run(20);
        let mut t = TextTable::new(&["task", "manual", "scp", "savings %"]);
        for r in &rows {
            t.row(vec![r.task.clone(), f1(r.manual), f1(r.scp), f1(r.savings_pct)]);
        }
        println!("{}", t.render());
        println!(
            "mean savings: {:.1}%  (paper: ~75%)\n",
            e1_keystrokes::mean_savings(&rows)
        );
    }

    if want("e2") {
        println!("== E2a: feedback items until the preferred query ranks first ==");
        println!("   (paper: \"as little as one item of feedback for a single query\")\n");
        let a = e2_feedback::run_e2a(30);
        let mut t = TextTable::new(&["converged/trials", "mean feedback", "% <=1 item", "max"]);
        t.row(vec![
            format!("{}/{}", a.converged, a.trials),
            f3(a.mean_feedback),
            f1(a.pct_one),
            a.max_feedback.to_string(),
        ]);
        println!("{}", t.render());

        println!("== E2b: query-family generalization vs training queries ==");
        println!("   (paper: \"feedback on 10 queries to learn rankings for an entire family\")\n");
        let b = e2_feedback::run_e2b(&[0, 1, 2, 5, 10, 15], 10);
        let mut t = TextTable::new(&["queries trained on", "held-out top-1 accuracy %"]);
        for (k, acc) in &b.curve {
            t.row(vec![k.to_string(), f1(*acc)]);
        }
        println!("{}", t.render());
    }

    if want("e3") {
        println!("== E3: Steiner search scale-up (exact vs SPCSH) ==\n");
        let (sizes, terms) = e3_steiner::run(&[10, 20, 40, 80, 160, 300], &[2, 4, 6, 8, 10, 12]);
        let mut t = TextTable::new(&["nodes", "terminals", "exact time", "spcsh time", "cost ratio"]);
        for r in sizes.iter().chain(terms.iter()) {
            t.row(vec![
                r.nodes.to_string(),
                r.terminals.to_string(),
                r.exact_time.map(dur).unwrap_or_else(|| "-".into()),
                dur(r.spcsh_time),
                r.cost_ratio.map(f3).unwrap_or_else(|| "-".into()),
            ]);
        }
        println!("{}", t.render());
    }

    if want("e4") {
        println!("== E4: row auto-completion quality vs pasted examples ==");
        println!("   (paper: well-structured pages need one example; complex pages more)\n");
        let rows = e4_structure::run(3, 5);
        let mut t = TextTable::new(&["setting", "examples", "precision", "recall", "F1"]);
        for r in &rows {
            t.row(vec![
                r.setting.clone(),
                r.examples.to_string(),
                f3(r.precision),
                f3(r.recall),
                f3(r.f1),
            ]);
        }
        println!("{}", t.render());
    }

    if want("e5") {
        println!("== E5: column-completion ranking vs distractor sources ==\n");
        let rows = e5_column::run(&[0, 5, 10, 20]);
        let mut t = TextTable::new(&["distractors", "hit@1", "hit@3", "MRR", "zip value accuracy"]);
        for r in &rows {
            t.row(vec![
                r.distractors.to_string(),
                r.hit_at_1.to_string(),
                r.hit_at_3.to_string(),
                f3(r.reciprocal_rank),
                f3(r.value_accuracy),
            ]);
        }
        println!("{}", t.render());
    }

    if want("e6") {
        println!("== E6: semantic-type recognition vs training size ==\n");
        let rows = e6_semantic::run(&[1, 2, 5, 10, 20, 50], 6);
        let mut t = TextTable::new(&["training values/type", "cross-source top-1 accuracy %"]);
        for r in &rows {
            t.row(vec![r.train_size.to_string(), f1(r.accuracy)]);
        }
        println!("{}", t.render());
        println!(
            "same-session transfer (user-defined type, source A -> B): {:.1}%\n",
            e6_semantic::same_session_transfer(20)
        );
    }

    if want("e7") {
        println!("== E7: record-linkage F1, learned combination vs single heuristics ==\n");
        let rows = e7_linkage::run(&[1, 2, 3], 5);
        let mut t = TextTable::new(&["matcher", "edits=1", "edits=2", "edits=3"]);
        let matchers: Vec<String> = {
            let mut m: Vec<String> = rows.iter().map(|r| r.matcher.clone()).collect();
            m.dedup();
            m.truncate(8);
            m
        };
        for m in matchers {
            let f1_at = |e: usize| {
                rows.iter()
                    .find(|r| r.matcher == m && r.edits == e)
                    .map(|r| f3(r.f1))
                    .unwrap_or_else(|| "-".into())
            };
            t.row(vec![m.clone(), f1_at(1), f1_at(2), f1_at(3)]);
        }
        println!("{}", t.render());
    }

    if want("e8") {
        println!("== E8: Figure 4 reconstruction ==\n");
        let r = e8_figure4::run();
        println!("{}", r.graph);
        println!("chosen query: {}", r.plan);
        println!("rows: {}   zip accuracy: {:.3}", r.rows, r.zip_accuracy);
        println!("\nsample explanation:\n{}", r.explanation);
    }

    if want("a1") {
        println!("== A1: conjunction-of-all-predicates default vs single predicate ==\n");
        let r = ablations::run_a1();
        let mut t = TextTable::new(&["join strategy", "result rows", "precision"]);
        t.row(vec!["conjunction (default)".into(), r.conjunction.0.to_string(), f3(r.conjunction.1)]);
        t.row(vec!["worst single predicate".into(), r.single.0.to_string(), f3(r.single.1)]);
        println!("{}", t.render());
    }

    if want("a2") {
        println!("== A2: structure-learner expert ablation (1 example, hard tiers) ==\n");
        let rows = ablations::run_a2(3);
        let mut t = TextTable::new(&["disabled expert", "mean F1"]);
        for r in &rows {
            t.row(vec![r.disabled.clone(), f3(r.f1)]);
        }
        println!("{}", t.render());
    }

    if want("a3") {
        println!("== A3: SPCSH prune-quantile sweep ==\n");
        let rows = ablations::run_a3(&[0.3, 0.5, 0.7, 0.9, 1.0], 5);
        let mut t = TextTable::new(&["prune quantile", "mean time", "mean cost ratio"]);
        for r in &rows {
            t.row(vec![format!("{:.1}", r.quantile), dur(r.time), f3(r.cost_ratio)]);
        }
        println!("{}", t.render());
    }
}
