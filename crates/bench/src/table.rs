//! Minimal aligned-column table printing for the harness output.

/// A printable table: header + string rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }
}
