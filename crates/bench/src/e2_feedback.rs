//! E2 — feedback-learning convergence (§5's Q-system claims):
//!
//! * **E2a**: "learning of correct queries based on user feedback over
//!   answers converges very quickly … as little as one item of feedback
//!   for a single query". We count MIRA updates until the user's
//!   preferred query ranks first.
//! * **E2b**: "feedback on 10 queries to learn rankings for an entire
//!   family of queries". We train on k queries of a family and measure
//!   held-out top-1 accuracy.

use crate::gen::{random_graph, GraphSpec};
use copycat_graph::{top_k_steiner, Mira, NodeId, SourceGraph};
use copycat_util::rng::{Rng, SeedableRng, StdRng};

/// E2a outcome.
#[derive(Debug, Clone)]
pub struct E2aResult {
    /// Trials that converged.
    pub converged: usize,
    /// Total trials.
    pub trials: usize,
    /// Mean feedback items until the preferred query ranked first.
    pub mean_feedback: f64,
    /// Fraction of trials needing exactly one item.
    pub pct_one: f64,
    /// Worst case observed.
    pub max_feedback: usize,
}

/// Run E2a over `trials` random graphs.
pub fn run_e2a(trials: u64) -> E2aResult {
    let mut counts = Vec::new();
    let mut attempted = 0usize;
    for seed in 0..trials {
        let (mut g, terminals) =
            random_graph(&GraphSpec { nodes: 20, extra_edges: 16, seed }, 3);
        let candidates = top_k_steiner(&g, &terminals, 5);
        if candidates.len() < 2 {
            continue;
        }
        attempted += 1;
        // The user's true intent is the currently worst-ranked candidate.
        let preferred = candidates.last().expect("non-empty").edges.clone();
        let mira = Mira::default();
        let mut feedback = 0usize;
        for _ in 0..25 {
            let ranked = top_k_steiner(&g, &terminals, 5);
            if ranked.first().map(|t| &t.edges) == Some(&preferred) {
                break;
            }
            // One feedback item: the user accepts `preferred`'s answers
            // over the top-ranked alternative's.
            let top = ranked.first().expect("non-empty").edges.clone();
            mira.apply(&mut g, &preferred, &top);
            feedback += 1;
        }
        let converged =
            top_k_steiner(&g, &terminals, 1).first().map(|t| &t.edges) == Some(&preferred);
        if converged {
            counts.push(feedback);
        }
    }
    let n = counts.len().max(1);
    E2aResult {
        converged: counts.len(),
        trials: attempted,
        mean_feedback: counts.iter().sum::<usize>() as f64 / n as f64,
        pct_one: counts.iter().filter(|&&c| c <= 1).count() as f64 / n as f64 * 100.0,
        max_feedback: counts.iter().copied().max().unwrap_or(0),
    }
}

/// E2b outcome: held-out accuracy per training-set size.
#[derive(Debug, Clone)]
pub struct E2bResult {
    /// `(queries trained on, held-out top-1 accuracy %)`.
    pub curve: Vec<(usize, f64)>,
}

/// The hidden preference model: some associations are secretly bad (the
/// user always rejects queries through them).
struct Hidden {
    penalty: Vec<f64>,
}

impl Hidden {
    fn new(g: &SourceGraph, seed: u64) -> Hidden {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD);
        let penalty = g
            .edge_ids()
            .map(|_| if rng.gen_bool(0.3) { 2.5 } else { 0.0 })
            .collect();
        Hidden { penalty }
    }

    fn cost(&self, g: &SourceGraph, edges: &[copycat_graph::EdgeId]) -> f64 {
        edges
            .iter()
            .map(|e| g.cost(*e) + self.penalty[e.0 as usize])
            .sum()
    }

    /// Among candidate trees, the one the user would pick. `g` must be
    /// the *original* graph: the user's intrinsic preference does not
    /// drift as MIRA retunes the learned edge costs — judging against
    /// the trained graph would double-count every penalty the learner
    /// has already absorbed, punishing exactly the queries it got right.
    fn preferred<'a>(
        &self,
        g: &SourceGraph,
        candidates: &'a [copycat_graph::SteinerTree],
    ) -> &'a copycat_graph::SteinerTree {
        candidates
            .iter()
            .min_by(|a, b| {
                self.cost(g, &a.edges)
                    .partial_cmp(&self.cost(g, &b.edges))
                    .expect("finite")
            })
            .expect("non-empty")
    }
}

/// Run E2b: train on k queries, test on the rest of the family.
pub fn run_e2b(train_sizes: &[usize], trials: u64) -> E2bResult {
    let mut curve = Vec::new();
    for &k in train_sizes {
        let mut correct = 0usize;
        let mut total = 0usize;
        for seed in 0..trials {
            let (g0, _) = random_graph(&GraphSpec { nodes: 26, extra_edges: 24, seed }, 2);
            let hidden = Hidden::new(&g0, seed);
            // The query family: anchor node 0 joined with each other node.
            let anchor = NodeId(0);
            let family: Vec<Vec<NodeId>> = (1..g0.node_count() as u32)
                .map(|i| vec![anchor, NodeId(i)])
                .collect();
            // Every k is scored on the SAME held-out suffix. Early family
            // members sit near the anchor (short, easy paths), so letting
            // the test set slide with k would confound training benefit
            // with test difficulty.
            let holdout = family.len() - 10;
            let test = &family[holdout..];
            let train = &family[..k.min(holdout)];
            let mut g = g0.clone();
            let mira = Mira::default();
            for terminals in train {
                let candidates = top_k_steiner(&g, terminals, 4);
                if candidates.len() < 2 {
                    continue;
                }
                let preferred = hidden.preferred(&g0, &candidates).edges.clone();
                let rejected: Vec<Vec<copycat_graph::EdgeId>> = candidates
                    .iter()
                    .filter(|t| t.edges != preferred)
                    .map(|t| t.edges.clone())
                    .collect();
                mira.rank_above(&mut g, &preferred, &rejected);
            }
            for terminals in test.iter() {
                let candidates = top_k_steiner(&g, terminals, 4);
                if candidates.len() < 2 {
                    continue;
                }
                total += 1;
                let want = hidden.preferred(&g0, &candidates).edges.clone();
                if candidates[0].edges == want {
                    correct += 1;
                }
            }
        }
        let acc = if total == 0 { 0.0 } else { correct as f64 / total as f64 * 100.0 };
        curve.push((k, acc));
    }
    E2bResult { curve }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2a_converges_quickly() {
        let r = run_e2a(15);
        assert!(r.converged as f64 >= r.trials as f64 * 0.9, "{r:?}");
        assert!(r.mean_feedback <= 4.0, "mean {} too high", r.mean_feedback);
        assert!(r.pct_one >= 30.0, "{r:?}");
    }

    #[test]
    fn e2b_accuracy_improves_with_training() {
        // 30 worlds: the per-world margin is a few points, so small trial
        // counts drown the signal in test-set noise.
        let r = run_e2b(&[0, 10], 30);
        let base = r.curve[0].1;
        let trained = r.curve[1].1;
        assert!(
            trained >= base + 3.0,
            "training should help: {base:.1}% -> {trained:.1}%"
        );
        assert!(trained >= 60.0, "ten queries should teach the family: {trained:.1}%");
    }
}
