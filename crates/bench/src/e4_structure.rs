//! E4 — structure-learner generalization (Figure 1, §3.1, §8): row
//! auto-completion quality versus the number of pasted examples, across
//! page-complexity tiers and noise intensities. Reproduces the paper's
//! qualitative claim: "If these pages are well-structured, a single
//! example can be illustrative enough … the more complex the pages are,
//! the more examples may be necessary."

use copycat_document::corpus::{render_list, Faker, ListSpec, Tier};
use copycat_document::Document;
use copycat_extract::StructureLearner;
use copycat_semantic::TypeRegistry;

/// One measurement cell.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Tier name (with the noise multiplier for noisy tiers).
    pub setting: String,
    /// Examples pasted.
    pub examples: usize,
    /// Precision of the top hypothesis's rows.
    pub precision: f64,
    /// Recall against the true rows.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// Precision/recall of extracted rows against ground truth.
pub fn prf(truth: &[Vec<String>], got: &[Vec<String>]) -> (f64, f64, f64) {
    if got.is_empty() || truth.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let tp = got.iter().filter(|r| truth.contains(r)).count() as f64;
    let p = tp / got.len() as f64;
    let r = tp / truth.len() as f64;
    let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
    (p, r, f1)
}

/// Run the sweep: tiers at default noise, noisy tiers at higher
/// intensities, and a *sparse* tier with missing street cells (≈1 row in
/// 6), examples 1..=max_examples, averaged over `seeds` worlds. On the
/// sparse tier, example selection follows the paper's interaction: the
/// first paste is a complete row; a later paste (example 2) is a row with
/// the missing field, which teaches the wrapper to tolerate blanks.
pub fn run(max_examples: usize, seeds: u64) -> Vec<E4Row> {
    let settings: Vec<(String, Tier, f64, bool)> = vec![
        ("clean".into(), Tier::Clean, 1.0, false),
        ("noisy x1".into(), Tier::Noisy, 1.0, false),
        ("noisy x2".into(), Tier::Noisy, 2.0, false),
        ("noisy x3".into(), Tier::Noisy, 3.0, false),
        ("sparse".into(), Tier::Clean, 1.0, true),
        ("sparse+noise".into(), Tier::Noisy, 2.0, true),
        ("nested".into(), Tier::Nested, 1.0, false),
        ("multipage".into(), Tier::MultiPage, 1.0, false),
    ];
    let registry = TypeRegistry::with_builtins();
    let learner = StructureLearner::new();
    let mut out = Vec::new();
    for (setting, tier, noise, sparse) in settings {
        for examples in 1..=max_examples {
            let (mut sp, mut sr, mut sf) = (0.0, 0.0, 0.0);
            for seed in 0..seeds {
                let mut rows = Faker::new(1000 + seed).shelters(18);
                if sparse {
                    for (i, r) in rows.iter_mut().enumerate() {
                        if i % 6 == 3 {
                            r[1] = String::new(); // missing street
                        }
                    }
                }
                let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], tier, seed)
                    .with_noise(noise);
                let doc = Document::Site(render_list(&spec, &rows).site);
                let ex: Vec<Vec<String>> = if sparse {
                    // 1st: complete row; 2nd: the sparse row; then more.
                    let mut ex = vec![rows[0].clone()];
                    if examples >= 2 {
                        ex.push(rows[3].clone());
                    }
                    for k in 2..examples {
                        ex.push(rows[k - 1].clone());
                    }
                    ex
                } else {
                    rows[..examples].to_vec()
                };
                let hyps = learner.learn(&doc, &ex, &registry);
                let (p, r, f1) = hyps
                    .first()
                    .map(|h| prf(&rows, &h.rows))
                    .unwrap_or((0.0, 0.0, 0.0));
                sp += p;
                sr += r;
                sf += f1;
            }
            let n = seeds as f64;
            out.push(E4Row {
                setting: setting.clone(),
                examples,
                precision: sp / n,
                recall: sr / n,
                f1: sf / n,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_tier_is_solved_with_one_example() {
        let rows = run(1, 3);
        let clean = rows.iter().find(|r| r.setting == "clean").unwrap();
        assert!(clean.f1 > 0.95, "clean F1 {}", clean.f1);
    }

    #[test]
    fn more_examples_never_hurt_much() {
        let rows = run(3, 3);
        for setting in ["clean", "noisy x2", "nested"] {
            let f1_at = |k: usize| {
                rows.iter()
                    .find(|r| r.setting == setting && r.examples == k)
                    .map(|r| r.f1)
                    .unwrap()
            };
            assert!(
                f1_at(3) + 0.15 >= f1_at(1),
                "{setting}: F1@3 {} vs F1@1 {}",
                f1_at(3),
                f1_at(1)
            );
        }
    }

    #[test]
    fn sparse_tier_needs_a_second_example() {
        let rows = run(2, 4);
        let f1 = |setting: &str, k: usize| {
            rows.iter()
                .find(|r| r.setting == setting && r.examples == k)
                .map(|r| r.f1)
                .unwrap()
        };
        // One example cannot license blank cells; the second (sparse)
        // example teaches tolerance — the paper's complexity gradient.
        assert!(f1("sparse", 1) < 0.99, "expected a gap at 1 example");
        assert!(f1("sparse", 2) > f1("sparse", 1) + 0.05);
        assert!(f1("sparse+noise", 2) > 0.9);
    }

    #[test]
    fn prf_math() {
        let truth = vec![vec!["a".to_string()], vec!["b".to_string()]];
        let got = vec![vec!["a".to_string()], vec!["x".to_string()]];
        let (p, r, f1) = prf(&truth, &got);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
        assert!((f1 - 0.5).abs() < 1e-9);
    }
}
