//! F1 — the fault-tolerance sweep: injected failure rate × resilience
//! mode, measuring answer completeness and virtual latency.
//!
//! Three modes per failure rate, all over the same seeded scenario:
//!
//! * `no-retry` — the zip resolver is wrapped in raw [`Flaky`]; a failed
//!   call simply loses its answer.
//! * `retry` — the flaky resolver sits behind [`Resilient`]'s bounded
//!   retry + circuit breaker; deterministic attempt rerolls recover most
//!   failures at the price of *virtual* backoff latency.
//! * `retry+failover` — additionally an equivalent replacement source
//!   (`zip_backup`, the same resolver under an alias) is registered, so
//!   a degraded or tripped primary is outranked by a healthy completion.
//!
//! Everything runs on virtual time: the latency column is accrued
//! counters (`Flaky::virtual_latency_ms` + breaker backoff), never wall
//! clock, so the numbers are machine-independent.

use copycat_core::scenario::{Scenario, ScenarioConfig};
use copycat_query::{Renamed, Service};
use copycat_services::{Flaky, RetryPolicy, ZipResolver};
use copycat_util::json::Json;
use std::sync::Arc;

/// One (failure rate, mode) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Injected per-call failure probability.
    pub rate: f64,
    /// `no-retry`, `retry`, or `retry+failover`.
    pub mode: &'static str,
    /// Fraction of rows whose accepted zip matches ground truth.
    pub completeness: f64,
    /// Whether the accepted completion carried a degraded annotation.
    pub degraded: bool,
    /// Virtual milliseconds accrued (probe latency + retry backoff).
    pub virtual_ms: u64,
    /// Retry attempts beyond the first (0 outside retry modes).
    pub retries: u64,
    /// Circuit-breaker trips (0 outside retry modes).
    pub trips: u64,
}

const LATENCY_MS: u64 = 10;
const SEED: u64 = 42;
const VENUES: usize = 12;

fn one_cell(rate: f64, mode: &'static str) -> ChaosRow {
    let mut s = Scenario::build(&ScenarioConfig { venues: VENUES, ..Default::default() });
    s.import_shelters(1);
    let flaky = Arc::new(Flaky::new(
        Arc::new(ZipResolver::new(Arc::clone(&s.world))),
        rate,
        LATENCY_MS,
        SEED,
    ));
    // Re-registering under the same name replaces the healthy resolver
    // the scenario installed.
    match mode {
        "no-retry" => {
            s.engine.register_service(Arc::clone(&flaky) as Arc<dyn Service>);
        }
        "retry" => {
            s.engine
                .register_resilient(Arc::clone(&flaky) as Arc<dyn Service>, RetryPolicy::default());
        }
        "retry+failover" => {
            s.engine
                .register_resilient(Arc::clone(&flaky) as Arc<dyn Service>, RetryPolicy::default());
            s.engine.register_service(Arc::new(Renamed::new(
                "zip_backup",
                Arc::new(ZipResolver::new(Arc::clone(&s.world))),
            )));
        }
        other => unreachable!("unknown mode {other}"),
    }
    let suggs = s.engine.column_suggestions();
    let zip = suggs
        .iter()
        .find(|c| c.new_fields.iter().any(|f| f.name == "Zip"));
    let (completeness, degraded) = match zip {
        Some(z) => {
            let correct = z
                .values
                .iter()
                .enumerate()
                .filter(|(i, v)| {
                    v.first().map(String::as_str)
                        == Some(s.world.venue_zip(&s.world.venues[*i]))
                })
                .count();
            (correct as f64 / VENUES as f64, z.degraded.is_some())
        }
        // At 100% failure with no retry/failover the completion can
        // vanish entirely: zero completeness, trivially degraded.
        None => (0.0, true),
    };
    let virtual_ms = flaky.virtual_latency_ms() + s.engine.health().backoff_virtual_ms();
    ChaosRow {
        rate,
        mode,
        completeness,
        degraded,
        virtual_ms,
        retries: s.engine.health().total_retries(),
        trips: s.engine.health().total_trips(),
    }
}

/// Run the full sweep: every mode at every failure rate.
pub fn run(rates: &[f64]) -> Vec<ChaosRow> {
    let mut out = Vec::new();
    for &rate in rates {
        for mode in ["no-retry", "retry", "retry+failover"] {
            out.push(one_cell(rate, mode));
        }
    }
    out
}

/// Machine-readable rows for `BENCH_faults.json`.
pub fn rows_to_json(rows: &[ChaosRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("rate".into(), Json::Num(r.rate)),
                    ("mode".into(), Json::str(r.mode)),
                    ("completeness".into(), Json::Num(r.completeness)),
                    ("degraded".into(), Json::Bool(r.degraded)),
                    ("virtual_ms".into(), Json::Num(r.virtual_ms as f64)),
                    ("retries".into(), Json::Num(r.retries as f64)),
                    ("trips".into(), Json::Num(r.trips as f64)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_dominates_no_retry_under_faults() {
        let rows = run(&[0.0, 0.5, 1.0]);
        assert_eq!(rows.len(), 9);
        let cell = |rate: f64, mode: &str| {
            rows.iter()
                .find(|r| r.rate == rate && r.mode == mode)
                .unwrap()
                .clone()
        };
        // Healthy baseline: everything complete everywhere, no retries.
        for mode in ["no-retry", "retry", "retry+failover"] {
            let r = cell(0.0, mode);
            assert!((r.completeness - 1.0).abs() < 1e-9, "{r:?}");
            assert!(!r.degraded, "{r:?}");
        }
        // Hard down: failover keeps the answer whole, no-retry loses it.
        let dead = cell(1.0, "no-retry");
        assert!(dead.completeness < 1.0, "{dead:?}");
        let saved = cell(1.0, "retry+failover");
        assert!((saved.completeness - 1.0).abs() < 1e-9, "{saved:?}");
        assert!(!saved.degraded, "failover answer is the healthy alias: {saved:?}");
        assert!(saved.trips >= 1, "the dead primary must trip: {saved:?}");
        // Retries cost virtual latency, never less than the raw probe.
        let retry = cell(0.5, "retry");
        assert!(retry.retries > 0, "{retry:?}");
        assert!(retry.virtual_ms >= cell(0.5, "no-retry").virtual_ms, "{retry:?}");
        // Retry at 50% beats or matches no-retry on completeness.
        assert!(
            retry.completeness >= cell(0.5, "no-retry").completeness,
            "{retry:?}"
        );
    }

    #[test]
    fn json_rows_are_well_formed() {
        let rows = run(&[0.3]);
        let json = rows_to_json(&rows).to_string();
        assert!(json.contains("retry+failover"));
        assert!(json.contains("completeness"));
    }
}
