//! Ablations of CopyCat's design defaults (§5 "Advanced interactions"
//! and the choices DESIGN.md calls out).
//!
//! * **A1** — §4.1's "conjunction of all possible join predicates"
//!   default versus one edge per shared attribute;
//! * **A2** — structure-learner expert subsets (each expert disabled);
//! * **A3** — SPCSH prune-quantile sweep: runtime versus cost ratio.

use crate::e4_structure::prf;
use crate::gen::{random_graph, GraphSpec};
use copycat_document::corpus::{render_list, Faker, ListSpec, Tier};
use copycat_document::Document;
use copycat_extract::learn::{ExpertToggles, LearnOptions};
use copycat_extract::StructureLearner;
use copycat_graph::{discover_associations, spcsh, steiner_exact, AssocOptions, SourceGraph};
use copycat_query::{execute, Catalog, Field, Plan, Relation, Schema};
use copycat_semantic::TypeRegistry;
use std::time::{Duration, Instant};

// --------------------------------------------------------------- A1 ---

/// A1 outcome: join quality with and without the conjunction default.
#[derive(Debug, Clone)]
pub struct A1Result {
    /// Result rows and precision with the conjunction of all predicates.
    pub conjunction: (usize, f64),
    /// Result rows and precision of the best single-predicate join.
    pub single: (usize, f64),
}

/// Two sources share (Name, City); joining on City alone explodes —
/// shelters in the same city cross-match. The conjunction pins the pair.
pub fn run_a1() -> A1Result {
    let catalog = Catalog::new();
    let mut f = Faker::new(77);
    let rows = f.shelters(24);
    let schema = Schema::new(vec![
        Field::new("Name"),
        Field::typed("Street", "PR-Street"),
        Field::typed("City", "PR-City"),
    ]);
    catalog.add_relation(Relation::from_strings("Shelters", schema.clone(), &rows));
    // A status table keyed by the same (Name, City).
    let status_schema = Schema::new(vec![
        Field::new("Name"),
        Field::typed("City", "PR-City"),
        Field::new("Status"),
    ]);
    let status_rows: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                r[0].clone(),
                r[2].clone(),
                if i % 3 == 0 { "OPEN" } else { "FULL" }.to_string(),
            ]
        })
        .collect();
    catalog.add_relation(Relation::from_strings("Status", status_schema.clone(), &status_rows));

    let truth = rows.len(); // each shelter matches exactly its own status row

    // Evaluate every join edge discovery produces under a setting; the
    // reported number is the *worst* edge — without the conjunction
    // default, nothing stops the system (or a hurried user) from picking
    // the City-only predicate, which cross-matches shelters in a city.
    let run_with = |conj: bool| -> (usize, f64) {
        let mut g = SourceGraph::new();
        g.add_relation("Shelters", schema.clone());
        g.add_relation("Status", status_schema.clone());
        let opts = AssocOptions { conjunction_of_all: conj, ..Default::default() };
        discover_associations(&mut g, &opts);
        let shelters = g.node_by_name("Shelters").expect("node");
        let mut worst: Option<(usize, f64)> = None;
        for edge in g.associations_from(&[shelters], 10.0) {
            let copycat_graph::EdgeKind::Join { pairs } = &g.edge(edge).kind else {
                continue;
            };
            let on: Vec<(&str, &str)> =
                pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let plan = Plan::scan("Shelters").join(Plan::scan("Status"), &on);
            let result = execute(&plan, &catalog).expect("executes");
            // Shelter names are unique, so a correct join yields exactly
            // one row per shelter; extra rows are spurious cross-matches.
            let precision = if result.is_empty() {
                0.0
            } else {
                (truth as f64 / result.len() as f64).min(1.0)
            };
            if worst.is_none_or(|(_, wp)| precision < wp) {
                worst = Some((result.len(), precision));
            }
        }
        worst.expect("discovery found at least one join edge")
    };

    A1Result { conjunction: run_with(true), single: run_with(false) }
}

// --------------------------------------------------------------- A2 ---

/// A2 outcome: E4 F1 with an expert disabled.
#[derive(Debug, Clone)]
pub struct A2Row {
    /// Which expert was disabled (`none` = full system).
    pub disabled: String,
    /// Mean F1 over the E4 noisy+nested workloads with 1 example.
    pub f1: f64,
}

/// Run the expert ablation.
pub fn run_a2(seeds: u64) -> Vec<A2Row> {
    let configs: Vec<(String, ExpertToggles)> = vec![
        ("none".into(), ExpertToggles::default()),
        ("list".into(), ExpertToggles { list: false, ..Default::default() }),
        ("template".into(), ExpertToggles { template: false, ..Default::default() }),
        ("types".into(), ExpertToggles { types: false, ..Default::default() }),
        ("layout".into(), ExpertToggles { layout: false, ..Default::default() }),
        ("url".into(), ExpertToggles { url: false, ..Default::default() }),
    ];
    let registry = TypeRegistry::with_builtins();
    let mut out = Vec::new();
    for (name, toggles) in configs {
        let learner = StructureLearner::with_options(LearnOptions {
            enabled_experts: toggles,
            ..Default::default()
        });
        let mut sum = 0.0;
        let mut n = 0usize;
        for seed in 0..seeds {
            for tier in [Tier::Noisy, Tier::Nested, Tier::MultiPage] {
                let rows = Faker::new(3000 + seed).shelters(16);
                let spec = ListSpec::new("S", &["Name", "Street", "City"], tier, seed)
                    .with_noise(2.0);
                let doc = Document::Site(render_list(&spec, &rows).site);
                let hyps = learner.learn(&doc, &rows[..1], &registry);
                let f1 = hyps.first().map(|h| prf(&rows, &h.rows).2).unwrap_or(0.0);
                sum += f1;
                n += 1;
            }
        }
        out.push(A2Row { disabled: name, f1: sum / n as f64 });
    }
    out
}

// --------------------------------------------------------------- A3 ---

/// A3 outcome row.
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Graph size the sweep ran at.
    pub nodes: usize,
    /// Prune quantile (1.0 = no pruning).
    pub quantile: f64,
    /// Mean SPCSH time.
    pub time: Duration,
    /// Mean cost ratio vs the exact optimum.
    pub cost_ratio: f64,
}

/// Sweep the SPCSH prune quantile on `nodes`-node graphs (edge density
/// fixed at 3× nodes, 5 terminals).
pub fn run_a3(quantiles: &[f64], seeds: u64, nodes: usize) -> Vec<A3Row> {
    let mut out = Vec::new();
    for &q in quantiles {
        let mut total_time = Duration::ZERO;
        let mut ratio_sum = 0.0;
        let mut n = 0usize;
        for seed in 0..seeds {
            let (g, t) =
                random_graph(&GraphSpec { nodes, extra_edges: nodes * 3, seed }, 5);
            let exact = steiner_exact(&g, &t).expect("connected").cost;
            let start = Instant::now();
            let approx = spcsh(&g, &t, q).expect("connected");
            total_time += start.elapsed();
            ratio_sum += approx.cost / exact;
            n += 1;
        }
        out.push(A3Row {
            nodes,
            quantile: q,
            time: total_time / seeds as u32,
            cost_ratio: ratio_sum / n as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_conjunction_is_precise_single_explodes() {
        let r = run_a1();
        assert!(r.conjunction.1 > 0.99, "{r:?}");
        assert!(
            r.single.0 > r.conjunction.0,
            "single-predicate join should produce more (spurious) rows: {r:?}"
        );
        assert!(r.single.1 < r.conjunction.1, "{r:?}");
    }

    #[test]
    fn a2_full_system_is_at_least_as_good() {
        let rows = run_a2(2);
        let full = rows.iter().find(|r| r.disabled == "none").unwrap().f1;
        for r in &rows {
            assert!(
                full + 1e-9 >= r.f1 - 0.05,
                "disabling {} should not beat the full system by much: {} vs {full}",
                r.disabled,
                r.f1
            );
        }
    }

    #[test]
    fn a3_ratios_within_guarantee() {
        for nodes in [40, 80] {
            let rows = run_a3(&[0.5, 1.0], 3, nodes);
            for r in &rows {
                assert_eq!(r.nodes, nodes);
                assert!(r.cost_ratio >= 1.0 - 1e-9, "{r:?}");
                assert!(r.cost_ratio <= 2.5, "{r:?}");
            }
        }
    }
}
