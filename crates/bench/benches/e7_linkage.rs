//! E7 timing bench: approximate-join throughput with blocking, and
//! matcher training cost.

use copycat_document::corpus::perturb_string;
use copycat_linkage::{approximate_join, LabeledPair, MatchLearner, TfIdfIndex};
use copycat_services::{World, WorldConfig};
use copycat_util::bench::Harness;
use copycat_util::rng::{SeedableRng, StdRng};

fn bench_linkage(c: &mut Harness) {
    let world = World::generate(&WorldConfig { venues: 100, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(1);
    let left: Vec<Vec<String>> = world.venues.iter().map(|v| vec![v.name.clone()]).collect();
    let right: Vec<Vec<String>> = world
        .venues
        .iter()
        .map(|v| vec![perturb_string(&mut rng, &v.name, 2)])
        .collect();
    let corpus: Vec<String> = left.iter().chain(right.iter()).map(|r| r[0].clone()).collect();
    let matcher = MatchLearner::new(1).train(&[], TfIdfIndex::build(&corpus));

    c.bench_function("e7/approximate_join_100x100", |b| {
        b.iter(|| approximate_join(&left, &right, &[0], &[0], &matcher).len())
    });

    let pairs: Vec<LabeledPair> = (0..10)
        .map(|i| LabeledPair {
            left: left[i].clone(),
            right: right[i].clone(),
            matched: true,
        })
        .collect();
    c.bench_function("e7/train_matcher_10_pairs", |b| {
        b.iter(|| {
            MatchLearner::new(1)
                .train(&pairs, TfIdfIndex::build(&corpus))
                .threshold()
        })
    });
}

copycat_util::bench_main!(bench_linkage);
