//! E8 timing bench: the Figure-4 pipeline end-to-end — scenario build,
//! one-example import, and the zip dependent-join completion.

use copycat_bench::e8_figure4::run;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("figure4_end_to_end", |b| b.iter(|| run().rows));
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
