//! E8 timing bench: the Figure-4 pipeline end-to-end — scenario build,
//! one-example import, and the zip dependent-join completion.

use copycat_bench::e8_figure4::run;
use copycat_util::bench::Harness;

fn bench_figure4(c: &mut Harness) {
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.bench_function("figure4_end_to_end", |b| b.iter(|| run().rows));
    group.finish();
}

copycat_util::bench_main!(bench_figure4);
