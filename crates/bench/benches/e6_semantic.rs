//! E6 timing bench: semantic-type recognition throughput (per-column
//! recognition is on the paste hot path).

use copycat_document::corpus::Faker;
use copycat_semantic::TypeRegistry;
use copycat_util::bench::Harness;

fn bench_recognition(c: &mut Harness) {
    let registry = TypeRegistry::with_builtins();
    let mut f = Faker::new(3);
    let streets: Vec<String> = (0..20).map(|_| f.street()).collect();
    let cities: Vec<String> = (0..20).map(|_| f.city()).collect();
    c.bench_function("e6/recognize_street_column", |b| {
        b.iter(|| registry.recognize_column(&streets).len())
    });
    c.bench_function("e6/recognize_city_column", |b| {
        b.iter(|| registry.recognize_column(&cities).len())
    });
    c.bench_function("e6/learn_type_20_values", |b| {
        b.iter(|| {
            let mut r = TypeRegistry::empty();
            r.learn_type("Street", &streets);
            r.len()
        })
    });
}

copycat_util::bench_main!(bench_recognition);
