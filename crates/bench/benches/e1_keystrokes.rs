//! E1 timing bench: the full five-task keystroke experiment end-to-end
//! (the table itself comes from the harness; this times its generation).

use copycat_bench::e1_keystrokes::{mean_savings, run};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1");
    group.sample_size(10);
    group.bench_function("five_tasks_20_rows", |b| {
        b.iter(|| mean_savings(&run(20)))
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
