//! E1 timing bench: the full five-task keystroke experiment end-to-end
//! (the table itself comes from the harness; this times its generation).

use copycat_bench::e1_keystrokes::{mean_savings, run};
use copycat_util::bench::Harness;

fn bench_e1(c: &mut Harness) {
    let mut group = c.benchmark_group("e1");
    group.sample_size(10);
    group.bench_function("five_tasks_20_rows", |b| {
        b.iter(|| mean_savings(&run(20)))
    });
    group.finish();
}

copycat_util::bench_main!(bench_e1);
