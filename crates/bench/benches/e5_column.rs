//! E5 timing bench: column auto-completion latency (the Figure-2
//! suggestion round trip, including executing the candidate queries).

use copycat_core::scenario::{Scenario, ScenarioConfig};
use copycat_util::bench::Harness;

fn bench_suggestions(c: &mut Harness) {
    let mut s = Scenario::build(&ScenarioConfig { venues: 20, ..Default::default() });
    s.import_shelters(1);
    let mut group = c.benchmark_group("e5");
    group.sample_size(20);
    group.bench_function("column_suggestions_20_rows", |b| {
        b.iter(|| s.engine.column_suggestions().len())
    });
    group.finish();
}

copycat_util::bench_main!(bench_suggestions);
