//! E4 timing bench: wrapper induction latency per page-complexity tier
//! (this is the "paste → suggestions appear" interactive latency).

use copycat_document::corpus::{render_list, Faker, ListSpec, Tier};
use copycat_document::Document;
use copycat_extract::StructureLearner;
use copycat_semantic::TypeRegistry;
use copycat_util::bench::Harness;

fn bench_learn(c: &mut Harness) {
    let registry = TypeRegistry::with_builtins();
    let learner = StructureLearner::new();
    let mut group = c.benchmark_group("e4/learn_latency");
    group.sample_size(20);
    for tier in Tier::ALL {
        let rows = Faker::new(42).shelters(18);
        let spec = ListSpec::new("Shelters", &["Name", "Street", "City"], tier, 7);
        let doc = Document::Site(render_list(&spec, &rows).site);
        let examples: Vec<Vec<String>> = rows[..2].to_vec();
        group.bench_function(tier.name(), |b| {
            b.iter(|| learner.learn(&doc, &examples, &registry).len())
        });
    }
    group.finish();
}

copycat_util::bench_main!(bench_learn);
