//! E3 timing bench: exact Dreyfus–Wagner vs SPCSH across graph sizes and
//! terminal counts (regenerates the scale-up table's timing columns),
//! plus the PR-level optimizations: scratch reuse across solves and
//! parallel vs sequential top-k branching.

use copycat_bench::gen::{random_graph, GraphSpec};
use copycat_graph::{
    spcsh, steiner_exact, steiner_exact_in, top_k_steiner, top_k_steiner_opts, SteinerScratch,
};
use copycat_util::bench::Harness;

fn bench_size_sweep(c: &mut Harness) {
    let mut group = c.benchmark_group("e3/size_sweep_k4");
    for nodes in [10usize, 40, 160, 600] {
        let (g, t) = random_graph(
            &GraphSpec { nodes, extra_edges: nodes * 2, seed: nodes as u64 },
            4,
        );
        group.bench_function(format!("exact/{nodes}"), |b| {
            b.iter(|| steiner_exact(&g, &t).expect("connected").cost)
        });
        group.bench_function(format!("spcsh/{nodes}"), |b| {
            b.iter(|| spcsh(&g, &t, 0.8).expect("connected").cost)
        });
    }
    group.finish();
}

fn bench_terminal_sweep(c: &mut Harness) {
    let mut group = c.benchmark_group("e3/terminal_sweep_n60");
    group.sample_size(10);
    for k in [2usize, 6, 10, 12] {
        let (g, t) = random_graph(&GraphSpec { nodes: 60, extra_edges: 120, seed: k as u64 }, k);
        group.bench_function(format!("exact/{k}"), |b| {
            b.iter(|| steiner_exact(&g, &t).expect("connected").cost)
        });
        group.bench_function(format!("spcsh/{k}"), |b| {
            b.iter(|| spcsh(&g, &t, 0.8).expect("connected").cost)
        });
    }
    group.finish();
}

fn bench_scratch_reuse(c: &mut Harness) {
    // Same solve with and without a session-held scratch: isolates the
    // allocation overhead a search session amortizes away.
    let (g, t) = random_graph(&GraphSpec { nodes: 60, extra_edges: 120, seed: 8 }, 8);
    let mut group = c.benchmark_group("e3/exact_n60_k8");
    group.sample_size(10);
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| steiner_exact(&g, &t).expect("connected").cost)
    });
    let mut scratch = SteinerScratch::new();
    group.bench_function("scratch_reuse", |b| {
        b.iter(|| steiner_exact_in(&g, &t, &mut scratch).expect("connected").cost)
    });
    group.finish();
}

fn bench_top_k(c: &mut Harness) {
    let (g, t) = random_graph(&GraphSpec { nodes: 30, extra_edges: 60, seed: 5 }, 3);
    c.bench_function("e3/top5_exact_n30", |b| {
        b.iter(|| top_k_steiner(&g, &t, 5).len())
    });
    // Parallel Lawler branching vs sequential on a subproblem large
    // enough to pay for worker threads.
    let (g2, t2) = random_graph(&GraphSpec { nodes: 60, extra_edges: 120, seed: 9 }, 8);
    let mut group = c.benchmark_group("e3/top5_n60_k8");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| top_k_steiner_opts(&g2, &t2, 5, false).len())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| top_k_steiner_opts(&g2, &t2, 5, true).len())
    });
    group.finish();
}

copycat_util::bench_main!(bench_size_sweep, bench_terminal_sweep, bench_scratch_reuse, bench_top_k);
