//! E3 timing bench: exact Dreyfus–Wagner vs SPCSH across graph sizes and
//! terminal counts (regenerates the scale-up table's timing columns).

use copycat_bench::gen::{random_graph, GraphSpec};
use copycat_graph::{spcsh, steiner_exact, top_k_steiner};
use copycat_util::bench::Harness;

fn bench_size_sweep(c: &mut Harness) {
    let mut group = c.benchmark_group("e3/size_sweep_k4");
    for nodes in [10usize, 40, 160] {
        let (g, t) = random_graph(
            &GraphSpec { nodes, extra_edges: nodes * 2, seed: nodes as u64 },
            4,
        );
        group.bench_function(format!("exact/{nodes}"), |b| {
            b.iter(|| steiner_exact(&g, &t).expect("connected").cost)
        });
        group.bench_function(format!("spcsh/{nodes}"), |b| {
            b.iter(|| spcsh(&g, &t, 0.8).expect("connected").cost)
        });
    }
    group.finish();
}

fn bench_terminal_sweep(c: &mut Harness) {
    let mut group = c.benchmark_group("e3/terminal_sweep_n60");
    group.sample_size(10);
    for k in [2usize, 6, 10] {
        let (g, t) = random_graph(&GraphSpec { nodes: 60, extra_edges: 120, seed: k as u64 }, k);
        group.bench_function(format!("exact/{k}"), |b| {
            b.iter(|| steiner_exact(&g, &t).expect("connected").cost)
        });
        group.bench_function(format!("spcsh/{k}"), |b| {
            b.iter(|| spcsh(&g, &t, 0.8).expect("connected").cost)
        });
    }
    group.finish();
}

fn bench_top_k(c: &mut Harness) {
    let (g, t) = random_graph(&GraphSpec { nodes: 30, extra_edges: 60, seed: 5 }, 3);
    c.bench_function("e3/top5_exact_n30", |b| {
        b.iter(|| top_k_steiner(&g, &t, 5).len())
    });
}

copycat_util::bench_main!(bench_size_sweep, bench_terminal_sweep, bench_top_k);
