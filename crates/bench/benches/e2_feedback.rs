//! E2 timing bench: MIRA update cost and the convergence loop.

use copycat_bench::e2_feedback::run_e2a;
use copycat_bench::gen::{random_graph, GraphSpec};
use copycat_graph::{top_k_steiner, Mira};
use copycat_util::bench::Harness;

fn bench_single_update(c: &mut Harness) {
    let (g, t) = random_graph(&GraphSpec { nodes: 24, extra_edges: 24, seed: 2 }, 3);
    let trees = top_k_steiner(&g, &t, 2);
    let (a, b_tree) = (trees[0].edges.clone(), trees[1].edges.clone());
    c.bench_function("e2/mira_single_update", |bch| {
        bch.iter(|| {
            let mut g2 = g.clone();
            Mira::default().apply(&mut g2, &b_tree, &a)
        })
    });
}

fn bench_convergence(c: &mut Harness) {
    let mut group = c.benchmark_group("e2/convergence");
    group.sample_size(10);
    group.bench_function("e2a_5_trials", |b| b.iter(|| run_e2a(5).mean_feedback));
    group.finish();
}

copycat_util::bench_main!(bench_single_update, bench_convergence);
